//! A self-contained stand-in for the subset of `rand` 0.8 this workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen`] / [`Rng::gen_bool`], the
//! [`SeedableRng`] seeding entry points, and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality, and identical across platforms, which is exactly what the
//! simulation and the property tests need. Streams differ numerically from
//! the real `rand` crate's ChaCha-based `StdRng`, so fixtures are pinned to
//! this generator (the workspace never depended on upstream streams for
//! correctness, only for determinism per seed).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface: every generator can be constructed from a `u64`.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Seeds a new generator from another one.
    ///
    /// The `Result<_, ()>` mirrors upstream `rand`'s fallible signature;
    /// this implementation never fails.
    #[allow(clippy::result_unit_err)] // mirrors the upstream rand signature
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, ()> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard (uniform) distribution.
pub trait Standard {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
fn bounded_u64<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = bounded_u64(width, rng);
                ((self.start as $u).wrapping_add(off as $u)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as $u).wrapping_sub(start as $u) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(width + 1, rng);
                ((start as $u).wrapping_add(off as $u)) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating-point rounding can land exactly on `end`;
                // half-open semantics require strictly below it.
                if v < self.end {
                    v
                } else {
                    <$t>::from_bits(self.end.to_bits() - 1).max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    ///
    /// Deterministic per seed and identical on every platform. Not
    /// cryptographically secure — simulation and testing only.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// `rand::thread_rng` stand-in: a fresh generator seeded from the system
/// clock and a per-thread counter. Deterministic code should prefer
/// explicit seeds.
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let e = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample(&mut rng);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
