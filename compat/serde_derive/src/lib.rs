//! No-op replacements for serde's `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses the derives as forward-compatible annotations —
//! nothing serializes through serde at runtime (CSV/DOT output is
//! hand-rolled) — so in the hermetic offline build the derives expand to
//! nothing. The `serde(...)` helper attribute is accepted and ignored.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
