//! A minimal wall-clock benchmarking harness exposing the subset of the
//! `criterion` API this workspace uses: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Unlike the real criterion there is no statistical outlier analysis or
//! HTML report: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints the median, mean, and min per-iteration time.
//! That is enough to compare implementations in CI logs and to fill
//! EXPERIMENTS.md tables, while keeping the build hermetic.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time for one sample (iterations are batched up to it).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Warm-up budget per benchmark.
const WARM_UP_TIME: Duration = Duration::from_millis(100);

/// Measurement types (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, batching iterations into samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP_TIME {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / u32::try_from(warm_iters.max(1)).unwrap_or(u32::MAX);
        let batch: u64 = if per_iter.is_zero() {
            1024
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.to_string(), DEFAULT_SAMPLE_SIZE, |b| routine(b));
        self
    }
}

fn run_one(name: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / u32::try_from(bencher.samples.len()).unwrap_or(1);
    println!(
        "{name:<56} median {:>12} mean {:>12} min {:>12}",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions as a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` as running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_input", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
