//! Marker-trait stand-in for `serde`, used for hermetic offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data model as a
//! forward-compatible annotation but never serializes through serde at
//! runtime, so the traits here are empty markers and the derives (from the
//! sibling `serde_derive` stub) expand to nothing. Swapping the real serde
//! back in is a one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
