//! A self-contained mini property-testing harness exposing the subset of
//! the `proptest` API this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`any`], `prop_oneof!`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic replay
//!   seed (test name + attempt index) instead of a minimized input.
//! * **Deterministic by default.** Case `i` of a test always sees the same
//!   input stream, so CI failures reproduce locally without a seed file.
//! * `PROPTEST_CASES` in the environment overrides every config's case
//!   count (useful for quick smoke runs and deep soak runs alike).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// How many input resamples a filtering strategy attempts before giving up.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a dependent strategy and samples from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, resampling otherwise.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Keeps only values satisfying `f`, resampling otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {MAX_FILTER_RETRIES} retries: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {MAX_FILTER_RETRIES} retries: {}",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`] and [`Union`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for [`any`]: the full value domain of `T`.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Samples from the full domain of `T` (full-width integers, fair bools,
/// unit-interval floats).
#[must_use]
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Weighted choice among type-erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from weighted boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or every weight is zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let arms: Vec<(u32, Box<dyn DynStrategy<T>>)> =
            arms.into_iter().map(|(w, s)| (w, s.inner)).collect();
        let total: u32 = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample_dyn(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total");
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the input does not apply.
    Reject,
}

impl TestCaseError {
    /// Builds a failure from a formatted message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for attempt `attempt` of the named test.
#[must_use]
pub fn test_rng(test_name: &str, attempt: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the attempt index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(attempt) << 32 | u64::from(attempt)))
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each test runs its configured number of cases with deterministically
/// seeded inputs; `prop_assert*` failures report the case and attempt
/// indices for replay. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    // Without one: default config.
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    // Munch one test fn at a time.
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut attempt: u32 = 0;
            while passed < cases {
                let mut proptest_rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), attempt);
                let ($($pat,)+) = {
                    use $crate::Strategy as _;
                    ($($strat,)+).sample(&mut proptest_rng)
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "proptest: too many prop_assume rejections in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  test: {}\n  replay: attempt {} (case {})",
                            msg,
                            stringify!($name),
                            attempt,
                            passed,
                        );
                    }
                }
                attempt += 1;
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case when its input does not apply.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted (`w => strat`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        use $crate::Strategy as _;
        $crate::Union::new_weighted(vec![
            $(($weight, $strat.boxed())),+
        ])
    }};
    ($($strat:expr),+ $(,)?) => {{
        use $crate::Strategy as _;
        $crate::Union::new_weighted(vec![
            $((1u32, $strat.boxed())),+
        ])
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_rng("self", 0);
        for _ in 0..500 {
            let (a, b, c) = (0usize..10, 1.0f64..2.0, 5u64..=6).sample(&mut rng);
            assert!(a < 10);
            assert!((1.0..2.0).contains(&b));
            assert!((5..=6).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_rng("self-vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0..100usize, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(0..100usize, 3).sample(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = crate::test_rng("self-union", 0);
        let s = prop_oneof![
            3 => Just(1usize),
            1 => Just(2usize),
        ];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn filter_map_resamples() {
        let mut rng = crate::test_rng("self-filter", 0);
        let s = (0usize..100).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x));
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0usize..5, 0usize..5), c in any::<u64>()) {
            prop_assert!(a < 5 && b < 5);
            let _ = c;
        }

        #[test]
        fn assume_skips_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
