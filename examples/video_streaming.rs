//! Live video streaming over GÉANT: a sequence of multicast streaming
//! sessions (source studio → subscriber cities) arrives online; every
//! stream must pass a transcoder + firewall chain. Compares the paper's
//! `Online_CP` against the load-oblivious `SP` baseline on the same
//! request sequence.
//!
//! ```sh
//! cargo run -p nfv-examples --bin video_streaming
//! ```

use nfv_online::{run_online, OnlineCp, ShortestPathBaseline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdn::{MulticastRequest, NfvType, RequestId, ServiceChain};
use topology::{annotate, place_servers_spread, AnnotationParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = topology::geant();
    let servers = place_servers_spread(&topo.graph, 9);
    let mut rng = StdRng::seed_from_u64(2026);
    let mut sdn = annotate(
        &topo.graph,
        &servers,
        &AnnotationParams::default(),
        &mut rng,
    )?;

    println!(
        "GÉANT: {} PoPs, {} links",
        sdn.node_count(),
        sdn.link_count()
    );
    println!(
        "transcoding servers at: {}",
        sdn.servers()
            .iter()
            .map(|&v| topo.node_names[v.index()].as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 200 streaming sessions: a random studio city multicasts an HD
    // stream (5-25 Mbps per subscriber region) to 2-8 subscriber cities.
    let n = sdn.node_count();
    let chain = ServiceChain::new(vec![NfvType::Firewall, NfvType::Proxy]);
    let sessions: Vec<MulticastRequest> = (0..200)
        .map(|i| {
            let source = netgraph::NodeId::new(rng.gen_range(0..n));
            let dest_count = rng.gen_range(2..=8);
            let mut dests = Vec::new();
            while dests.len() < dest_count {
                let d = netgraph::NodeId::new(rng.gen_range(0..n));
                if d != source && !dests.contains(&d) {
                    dests.push(d);
                }
            }
            MulticastRequest::new(
                RequestId(i),
                source,
                dests,
                rng.gen_range(50.0..200.0),
                chain.clone(),
            )
        })
        .collect();

    let cp = run_online(&mut sdn, &mut OnlineCp::new(), &sessions);
    let cp_gini = nfv_online::link_utilization_gini(&sdn);
    sdn.reset();
    let sp = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &sessions);
    let sp_gini = nfv_online::link_utilization_gini(&sdn);

    println!("\n{:>22}  {:>10}  {:>10}", "", "Online_CP", "SP");
    println!(
        "{:>22}  {:>10}  {:>10}",
        "sessions admitted", cp.admitted, sp.admitted
    );
    println!(
        "{:>22}  {:>9.1}%  {:>9.1}%",
        "admission ratio",
        100.0 * cp.admission_ratio(),
        100.0 * sp.admission_ratio()
    );
    println!(
        "{:>22}  {:>10.0}  {:>10.0}",
        "avg cost per session",
        cp.total_cost / cp.admitted.max(1) as f64,
        sp.total_cost / sp.admitted.max(1) as f64
    );
    println!(
        "{:>22}  {:>9.1}%  {:>9.1}%",
        "mean link utilization",
        100.0 * cp.mean_link_utilization,
        100.0 * sp.mean_link_utilization
    );
    println!(
        "{:>22}  {:>10.3}  {:>10.3}",
        "load imbalance (Gini)", cp_gini, sp_gini
    );

    // Show one admitted session's routing in city names.
    if let Some(nfv_online::RequestOutcome::Admitted { id, .. }) = cp
        .outcomes
        .iter()
        .find(|o| matches!(o, nfv_online::RequestOutcome::Admitted { .. }))
    {
        let session = sessions.iter().find(|r| r.id == *id).expect("recorded id");
        println!(
            "\nexample admitted session {}: {} -> [{}]",
            id,
            topo.node_names[session.source.index()],
            session
                .destinations
                .iter()
                .map(|d| topo.node_names[d.index()].as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(())
}
