//! Full offline algorithm comparison on the AS1755-scale ISP topology:
//! `Appro_Multi` (K = 1..3), the literal reference implementation, the
//! `Alg_One_Server` baseline, and — on a reduced instance — the exact
//! optimum, with per-algorithm running times.
//!
//! ```sh
//! cargo run -p nfv-examples --bin isp_comparison
//! ```

use nfv_multicast::{appro_multi, appro_multi_reference, exact_pseudo_multicast, one_server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use topology::{annotate, place_servers_spread, AnnotationParams};
use workload::RequestGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = topology::as1755();
    let servers = place_servers_spread(&topo.graph, 9);
    let mut rng = StdRng::seed_from_u64(1755);
    let sdn = annotate(
        &topo.graph,
        &servers,
        &AnnotationParams::default(),
        &mut rng,
    )?;
    println!(
        "AS1755-scale ISP: {} PoPs, {} links, {} NFV servers",
        sdn.node_count(),
        sdn.link_count(),
        sdn.servers().len()
    );

    // 40 requests at the paper's default workload.
    let mut gen = RequestGenerator::new(sdn.node_count());
    let requests = gen.generate_batch(40, &mut rng);

    let mut sums = [0.0f64; 5];
    let mut times = [0.0f64; 5];
    let mut samples = 0usize;
    for req in &requests {
        let t0 = Instant::now();
        let Some(base) = one_server(&sdn, req) else {
            continue;
        };
        times[0] += t0.elapsed().as_secs_f64() * 1e3;

        let mut costs = [0.0f64; 3];
        for (i, k) in (1..=3).enumerate() {
            let t = Instant::now();
            let tree = appro_multi(&sdn, req, k).expect("baseline was feasible");
            times[1 + i] += t.elapsed().as_secs_f64() * 1e3;
            costs[i] = tree.total_cost();
        }

        let t4 = Instant::now();
        let lit = appro_multi_reference(&sdn, req, 2).expect("feasible");
        times[4] += t4.elapsed().as_secs_f64() * 1e3;

        sums[0] += base.total_cost();
        sums[1] += costs[0];
        sums[2] += costs[1];
        sums[3] += costs[2];
        sums[4] += lit.total_cost();
        samples += 1;
    }

    let labels = [
        "Alg_One_Server",
        "Appro_Multi K=1",
        "Appro_Multi K=2",
        "Appro_Multi K=3",
        "Appro_Multi (literal, K=2)",
    ];
    println!("\naverages over {samples} requests:");
    println!("{:>28}  {:>10}  {:>10}", "algorithm", "cost", "ms/request");
    for i in 0..5 {
        println!(
            "{:>28}  {:>10.1}  {:>10.2}",
            labels[i],
            sums[i] / samples as f64,
            times[i] / samples as f64
        );
    }

    // Exact optimum on a reduced instance (few destinations — the DP is
    // exponential in the terminal count).
    let mut small_gen = RequestGenerator::new(sdn.node_count()).with_dmax_ratio(0.05);
    let small = small_gen.generate(&mut rng);
    println!(
        "\nreduced instance ({} destinations) for the exact oracle:",
        small.destination_count()
    );
    let approx = appro_multi(&sdn, &small, 2).expect("feasible");
    let exact = exact_pseudo_multicast(&sdn, &small, 2).expect("feasible");
    println!("  Appro_Multi K=2 : {:.1}", approx.total_cost());
    println!("  exact optimum   : {:.1}", exact.total_cost());
    println!(
        "  empirical ratio : {:.3} (proven bound: 2K = 4)",
        approx.total_cost() / exact.total_cost()
    );
    Ok(())
}
