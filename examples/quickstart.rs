//! Quickstart: build a small SDN, submit one NFV-enabled multicast
//! request, and inspect the pseudo-multicast tree `Appro_Multi` returns.
//!
//! ```sh
//! cargo run -p nfv-examples --bin quickstart
//! ```

use nfv_multicast::{appro_multi, exact_pseudo_multicast, one_server};
use sdn::{MulticastRequest, NfvType, RequestId, SdnBuilder, ServiceChain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy SDN: six switches in the shape of the paper's Fig. 1, with
    // servers at v1, v2, v6.
    //
    //      v1 -- v2 -- v3
    //       |     |     |
    //      v4 -- v5 -- v6
    let mut b = SdnBuilder::new();
    let v1 = b.add_server(8_000.0, 0.1);
    let v2 = b.add_server(8_000.0, 0.15);
    let v3 = b.add_switch();
    let v4 = b.add_switch();
    let v5 = b.add_switch();
    let v6 = b.add_server(8_000.0, 0.1);
    for (u, v, cost) in [
        (v1, v2, 1.0),
        (v2, v3, 1.2),
        (v1, v4, 0.8),
        (v2, v5, 1.0),
        (v3, v6, 0.9),
        (v4, v5, 1.1),
        (v5, v6, 1.0),
    ] {
        b.add_link(u, v, 10_000.0, cost)?;
    }
    let sdn = b.build()?;
    println!(
        "network: {} switches, {} links, servers at {:?}",
        sdn.node_count(),
        sdn.link_count(),
        sdn.servers()
    );

    // One multicast request: v4 streams 150 Mbps to v3 and v5, and every
    // packet must traverse <NAT, Firewall, IDS> first.
    let request = MulticastRequest::new(
        RequestId(0),
        v4,
        vec![v3, v5],
        150.0,
        ServiceChain::new(vec![NfvType::Nat, NfvType::Firewall, NfvType::Ids]),
    );
    println!("request: {request}");
    println!(
        "  chain computing demand: {:.0} MHz",
        request.computing_demand()
    );

    // The paper's 2K-approximation with up to K = 2 chain instances.
    let tree = appro_multi(&sdn, &request, 2).expect("the network is connected");
    tree.validate(&sdn, &request).expect("valid pseudo tree");
    println!("\nAppro_Multi (K = 2):");
    println!("  total cost     : {:.1}", tree.total_cost());
    println!("  bandwidth cost : {:.1}", tree.bandwidth_cost);
    println!("  computing cost : {:.1}", tree.computing_cost);
    for su in &tree.servers {
        println!(
            "  chain instance at {} (ingress {} links, cost {:.1})",
            su.server,
            su.ingress_edges.len(),
            su.ingress_cost
        );
    }
    println!(
        "  distribution over {} links: {:?}",
        tree.distribution_edges.len(),
        tree.distribution_edges
    );

    // Compare against the single-server baseline and the exact optimum.
    let baseline = one_server(&sdn, &request).expect("feasible");
    let exact = exact_pseudo_multicast(&sdn, &request, 2).expect("feasible");
    println!("\ncomparison:");
    println!("  Alg_One_Server : {:.1}", baseline.total_cost());
    println!("  Appro_Multi    : {:.1}", tree.total_cost());
    println!("  exact optimum  : {:.1}", exact.total_cost());
    assert!(tree.total_cost() <= 2.0 * 2.0 * exact.total_cost() + 1e-9);
    println!("  (within the proven 2K bound)");

    // Admitting the request actually reserves resources.
    let mut network = sdn;
    let allocation = tree.allocation(&request);
    network.allocate(&allocation)?;
    println!(
        "\nafter admission: {:.0} Mbps reserved across {} links, {:.0} MHz on servers",
        allocation.total_bandwidth(),
        allocation.links().count(),
        allocation.total_computing()
    );

    // Data-plane check: compile forwarding rules and execute them.
    let rules =
        nfv_multicast::compile_rules(&network, &request, &tree).expect("tree compiles to rules");
    let report =
        nfv_multicast::simulate_delivery(&network, &request, &rules).expect("rules execute");
    println!(
        "forwarding rules installed: {} ({} switches); delivered to {:?}",
        rules.len(),
        report.link_traversals.len() + 1,
        report.delivered
    );

    // Export a Graphviz rendering of the routing structure.
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/quickstart.dot",
        nfv_multicast::tree_to_dot(&network, &request, &tree),
    )?;
    println!("wrote results/quickstart.dot (render with: dot -Tpdf -O results/quickstart.dot)");
    Ok(())
}
