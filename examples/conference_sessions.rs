//! Online conferencing with session churn: conference calls arrive as a
//! Poisson process, hold resources for their duration, and depart —
//! exercising the arrival/departure extension (`run_dynamic`) on an
//! AS1755-scale ISP, comparing `Online_CP`, the multi-instance extension,
//! and `SP` at increasing offered load.
//!
//! ```sh
//! cargo run -p nfv-examples --release --bin conference_sessions
//! ```

use nfv_online::{
    run_dynamic, OnlineAlgorithm, OnlineCp, OnlineCpMulti, ShortestPathBaseline, TimedRequest,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{annotate, place_servers_spread, AnnotationParams};
use workload::{PoissonWorkload, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = topology::as1755();
    let servers = place_servers_spread(&topo.graph, 9);
    let mut rng = StdRng::seed_from_u64(11);
    let base_sdn = annotate(
        &topo.graph,
        &servers,
        &AnnotationParams::default(),
        &mut rng,
    )?;
    println!(
        "ISP backbone: {} PoPs, {} links, {} NFV servers",
        base_sdn.node_count(),
        base_sdn.link_count(),
        base_sdn.servers().len()
    );
    println!("\nconference sessions: Poisson arrivals, exponential holding (mean 10 time units)");
    println!(
        "\n{:>12}  {:>12}  {:>17}  {:>8}  {:>15}",
        "load [Erl]", "Online_CP", "Online_CP_Multi", "SP", "peak concurrent"
    );

    for load in [10.0, 30.0, 60.0, 120.0] {
        let mut rng = StdRng::seed_from_u64(load as u64);
        let mut gen = RequestGenerator::new(base_sdn.node_count());
        let workload = PoissonWorkload::new(load / 10.0, 10.0);
        let sessions: Vec<TimedRequest> = workload
            .generate(&mut gen, 400, &mut rng)
            .into_iter()
            .map(|(req, arrival, duration)| TimedRequest::new(req, arrival, duration))
            .collect();

        let mut ratios = Vec::new();
        let mut peak = 0usize;
        let algos: [&mut dyn OnlineAlgorithm; 3] = [
            &mut OnlineCp::new(),
            &mut OnlineCpMulti::new(2),
            &mut ShortestPathBaseline::new(),
        ];
        for algo in algos {
            let mut sdn = base_sdn.clone();
            let r = run_dynamic(&mut sdn, algo, &sessions);
            ratios.push(r.admission_ratio());
            peak = peak.max(r.peak_concurrent);
        }
        println!(
            "{:>12}  {:>11.1}%  {:>16.1}%  {:>7.1}%  {:>15}",
            load,
            100.0 * ratios[0],
            100.0 * ratios[1],
            100.0 * ratios[2],
            peak
        );
    }

    println!(
        "\nWith churn, load-aware admission (Online_CP) protects capacity for\n\
         future sessions and sustains a higher steady-state admission ratio\n\
         than the load-oblivious SP as the offered load grows."
    );
    Ok(())
}
