//! System monitoring in a data center: every rack's edge switch
//! subscribes to telemetry multicast groups, and each group's stream must
//! pass an IDS + load-balancer chain before fan-out. The fabric is a
//! k = 8 fat-tree of switches; admissions use the capacity-aware
//! `Appro_Multi_Cap`, so later groups route around links saturated by
//! earlier ones.
//!
//! ```sh
//! cargo run -p nfv-examples --bin datacenter_monitoring
//! ```

use nfv_multicast::{appro_multi_cap, Admission};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdn::{MulticastRequest, NfvType, RequestId, SdnBuilder, ServiceChain};
use topology::fat_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph, layout) = fat_tree(8);
    println!(
        "fat-tree fabric: {} switches ({} core, {} pods), {} links",
        graph.node_count(),
        layout.core.len(),
        layout.aggregation.len(),
        graph.edge_count()
    );

    // NFV servers sit next to one aggregation switch per pod; links are
    // 10/40 GbE (edge/core) with a uniform unit cost.
    let mut b = SdnBuilder::new();
    for _ in graph.nodes() {
        b.add_switch();
    }
    for pod in &layout.aggregation {
        b.attach_server(pod[0], 24_000.0, 0.1)?;
    }
    for e in graph.edges() {
        let core_link = e.u.index() < layout.core.len() || e.v.index() < layout.core.len();
        let capacity = if core_link { 40_000.0 } else { 10_000.0 };
        b.add_link(e.u, e.v, capacity, 1.0)?;
    }
    let mut sdn = b.build()?;

    // Telemetry groups: a random edge switch publishes 200-800 Mbps of
    // monitoring data to the analytics collectors in 3 other pods.
    let mut rng = StdRng::seed_from_u64(7);
    let edge_switches: Vec<_> = layout.edge.iter().flatten().copied().collect();
    let chain = ServiceChain::new(vec![NfvType::Ids, NfvType::LoadBalancer]);
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut total_cost = 0.0;
    let mut multi_instance = 0usize;
    let groups = 120;
    for i in 0..groups {
        let source = edge_switches[rng.gen_range(0..edge_switches.len())];
        let mut dests = Vec::new();
        while dests.len() < 3 {
            let d = edge_switches[rng.gen_range(0..edge_switches.len())];
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }
        let group = MulticastRequest::new(
            RequestId(i),
            source,
            dests,
            rng.gen_range(200.0..800.0),
            chain.clone(),
        );
        match appro_multi_cap(&sdn, &group, 2) {
            Admission::Admitted(tree) => {
                sdn.allocate(&tree.allocation(&group))?;
                admitted += 1;
                total_cost += tree.total_cost();
                if tree.servers_used().len() > 1 {
                    multi_instance += 1;
                }
            }
            Admission::Rejected => rejected += 1,
        }
    }

    println!("\n{groups} telemetry groups submitted (IDS + LB chain, K = 2):");
    println!("  admitted          : {admitted}");
    println!("  rejected          : {rejected}");
    println!(
        "  avg group cost    : {:.0}",
        total_cost / admitted.max(1) as f64
    );
    println!("  multi-instance    : {multi_instance} groups used 2 chain instances");

    // Fabric state after the monitoring period.
    let mut worst = 0.0f64;
    let mut mean = 0.0;
    for e in sdn.graph().edges() {
        let u = sdn.bandwidth_utilization(e.id);
        worst = worst.max(u);
        mean += u;
    }
    mean /= sdn.link_count() as f64;
    println!(
        "\nfabric utilization: mean {:.1}%, worst link {:.1}%",
        100.0 * mean,
        100.0 * worst
    );
    for (pod, aggs) in layout.aggregation.iter().enumerate() {
        let server = aggs[0];
        println!(
            "  pod {pod} NFV server: {:.1}% of {:.0} MHz used",
            100.0 * sdn.computing_utilization(server).unwrap_or(0.0),
            sdn.computing_capacity(server).unwrap_or(0.0)
        );
    }
    Ok(())
}
