//! End-to-end fixture tests: each seeded fixture must produce exactly the
//! expected (rule, line) set when classified as planner code, the negative
//! fixtures must stay silent, and the CLI must exit non-zero on a dirty
//! workspace.

use nfv_lint::{lint_source, Config, Severity};
use std::path::Path;
use std::process::Command;

/// Lints a fixture as if it lived in a planner crate and returns the
/// (rule, line, severity) triples.
fn lint_fixture(name: &str, src: &str) -> Vec<(String, u32, Severity)> {
    let rel = format!("crates/core/src/{name}");
    lint_source(&rel, src, &Config::default())
        .into_iter()
        .map(|v| (v.rule, v.line, v.severity))
        .collect()
}

fn deny(rule: &str, line: u32) -> (String, u32, Severity) {
    (rule.to_string(), line, Severity::Deny)
}

fn warn(rule: &str, line: u32) -> (String, u32, Severity) {
    (rule.to_string(), line, Severity::Warn)
}

#[test]
fn d1_flags_unordered_containers_outside_tests() {
    let got = lint_fixture("d1.rs", include_str!("fixtures/d1_unordered.rs"));
    assert_eq!(
        got,
        vec![
            deny("D1", 3),  // use HashMap
            deny("D1", 4),  // use HashSet
            deny("D1", 7),  // HashSet type annotation
            deny("D1", 7),  // HashSet::new()
            deny("D1", 13), // local HashMap
        ]
    );
}

#[test]
fn d2_flags_ambient_inputs() {
    let got = lint_fixture("d2.rs", include_str!("fixtures/d2_ambient.rs"));
    assert_eq!(
        got,
        vec![
            deny("D2", 4),  // Instant::now()
            deny("D2", 9),  // SystemTime::now()
            deny("D2", 13), // thread_rng()
            deny("D2", 18), // std::env::var
        ]
    );
}

#[test]
fn p1_flags_panic_sites_and_warns_on_indexing() {
    let got = lint_fixture("p1.rs", include_str!("fixtures/p1_panics.rs"));
    assert_eq!(
        got,
        vec![
            deny("P1", 4),      // .unwrap()
            deny("P1", 8),      // .expect()
            deny("P1", 13),     // panic!
            warn("P1-idx", 15), // xs[2]
            deny("P1", 19),     // unreachable!
            deny("P1", 23),     // todo!
        ]
    );
}

#[test]
fn u1_requires_safety_comments() {
    let got = lint_fixture("u1.rs", include_str!("fixtures/u1_unsafe.rs"));
    assert_eq!(got, vec![deny("U1", 4)]);
}

#[test]
fn o1_requires_reasons_and_rejects_doc_comments() {
    let got = lint_fixture("o1.rs", include_str!("fixtures/o1_allows.rs"));
    assert_eq!(got, vec![deny("O1", 3), deny("O1", 14)]);
}

#[test]
fn a1_flags_malformed_escapes() {
    let got = lint_fixture("a1.rs", include_str!("fixtures/a1_malformed.rs"));
    assert_eq!(got, vec![deny("A1", 5), deny("A1", 8), deny("A1", 11)]);
}

#[test]
fn strings_comments_and_raw_strings_do_not_trip_rules() {
    let got = lint_fixture("neg.rs", include_str!("fixtures/negatives.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn lint_allow_escapes_suppress_each_form() {
    let got = lint_fixture("sup.rs", include_str!("fixtures/suppressed.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn rules_are_individually_toggleable() {
    let src = include_str!("fixtures/p1_panics.rs");
    let mut cfg = Config::default();
    cfg.set("P1", None);
    cfg.set("P1-idx", Some(Severity::Deny));
    let got: Vec<_> = lint_source("crates/core/src/p1.rs", src, &cfg)
        .into_iter()
        .map(|v| (v.rule, v.line, v.severity))
        .collect();
    assert_eq!(got, vec![deny("P1-idx", 15)]);
}

#[test]
fn test_like_paths_are_exempt_from_planner_rules() {
    let src = include_str!("fixtures/d1_unordered.rs");
    let got = lint_source("crates/core/tests/d1.rs", src, &Config::default());
    assert_eq!(got, vec![]);
}

#[test]
fn cli_exits_nonzero_on_a_dirty_workspace() {
    let badws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badws");
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("badws-lint.json");
    let out = Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--workspace-root")
        .arg(&badws)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn nfv-lint");
    assert_eq!(out.status.code(), Some(1), "stdout: {:?}", out.stdout);
    let report = std::fs::read_to_string(&json).expect("JSON report written");
    for rule in ["D1", "P1", "U1"] {
        assert!(
            report.contains(&format!("\"rule\": \"{rule}\"")),
            "{report}"
        );
    }
}
