//! End-to-end fixture tests: each seeded fixture must produce exactly the
//! expected (rule, line) set when classified as planner code, the negative
//! fixtures must stay silent, and the CLI must exit non-zero on a dirty
//! workspace.

use nfv_lint::{lint_source, Config, Severity};
use std::path::Path;
use std::process::Command;

/// Lints a fixture as if it lived in a planner crate and returns the
/// (rule, line, severity) triples.
fn lint_fixture(name: &str, src: &str) -> Vec<(String, u32, Severity)> {
    let rel = format!("crates/core/src/{name}");
    lint_source(&rel, src, &Config::default())
        .into_iter()
        .map(|v| (v.rule, v.line, v.severity))
        .collect()
}

fn deny(rule: &str, line: u32) -> (String, u32, Severity) {
    (rule.to_string(), line, Severity::Deny)
}

fn warn(rule: &str, line: u32) -> (String, u32, Severity) {
    (rule.to_string(), line, Severity::Warn)
}

#[test]
fn d1_flags_unordered_containers_outside_tests() {
    let got = lint_fixture("d1.rs", include_str!("fixtures/d1_unordered.rs"));
    assert_eq!(
        got,
        vec![
            deny("D1", 3),  // use HashMap
            deny("D1", 4),  // use HashSet
            deny("D1", 7),  // HashSet type annotation
            deny("D1", 7),  // HashSet::new()
            deny("D1", 13), // local HashMap
        ]
    );
}

#[test]
fn d2_flags_ambient_inputs() {
    let got = lint_fixture("d2.rs", include_str!("fixtures/d2_ambient.rs"));
    assert_eq!(
        got,
        vec![
            deny("D2", 4),  // Instant::now()
            deny("D2", 9),  // SystemTime::now()
            deny("D2", 13), // thread_rng()
            deny("D2", 18), // std::env::var
        ]
    );
}

#[test]
fn p1_flags_panic_sites_and_warns_on_indexing() {
    let got = lint_fixture("p1.rs", include_str!("fixtures/p1_panics.rs"));
    assert_eq!(
        got,
        vec![
            deny("P1", 4),      // .unwrap()
            deny("P1", 8),      // .expect()
            deny("P1", 13),     // panic!
            warn("P1-idx", 15), // xs[2]
            deny("P1", 19),     // unreachable!
            deny("P1", 23),     // todo!
        ]
    );
}

#[test]
fn u1_requires_safety_comments() {
    let got = lint_fixture("u1.rs", include_str!("fixtures/u1_unsafe.rs"));
    assert_eq!(got, vec![deny("U1", 4)]);
}

#[test]
fn o1_requires_reasons_and_rejects_doc_comments() {
    let got = lint_fixture("o1.rs", include_str!("fixtures/o1_allows.rs"));
    assert_eq!(got, vec![deny("O1", 3), deny("O1", 14)]);
}

#[test]
fn a1_flags_malformed_escapes() {
    let got = lint_fixture("a1.rs", include_str!("fixtures/a1_malformed.rs"));
    assert_eq!(got, vec![deny("A1", 5), deny("A1", 8), deny("A1", 11)]);
}

#[test]
fn strings_comments_and_raw_strings_do_not_trip_rules() {
    let got = lint_fixture("neg.rs", include_str!("fixtures/negatives.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn lint_allow_escapes_suppress_each_form() {
    let got = lint_fixture("sup.rs", include_str!("fixtures/suppressed.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn rules_are_individually_toggleable() {
    let src = include_str!("fixtures/p1_panics.rs");
    let mut cfg = Config::default();
    cfg.set("P1", None);
    cfg.set("P1-idx", Some(Severity::Deny));
    let got: Vec<_> = lint_source("crates/core/src/p1.rs", src, &cfg)
        .into_iter()
        .map(|v| (v.rule, v.line, v.severity))
        .collect();
    assert_eq!(got, vec![deny("P1-idx", 15)]);
}

#[test]
fn test_like_paths_are_exempt_from_planner_rules() {
    let src = include_str!("fixtures/d1_unordered.rs");
    let got = lint_source("crates/core/tests/d1.rs", src, &Config::default());
    assert_eq!(got, vec![]);
}

#[test]
fn cli_exits_nonzero_on_a_dirty_workspace() {
    let badws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badws");
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("badws-lint.json");
    let out = Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--workspace-root")
        .arg(&badws)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn nfv-lint");
    assert_eq!(out.status.code(), Some(1), "stdout: {:?}", out.stdout);
    let report = std::fs::read_to_string(&json).expect("JSON report written");
    for rule in ["D1", "P1", "U1"] {
        assert!(
            report.contains(&format!("\"rule\": \"{rule}\"")),
            "{report}"
        );
    }
}

// ---- semantic pass fixtures (PR 9) --------------------------------------

#[test]
fn t1_flags_raw_money_comparisons_and_magic_literals() {
    let got = lint_fixture("t1.rs", include_str!("fixtures/t1_tolerance.rs"));
    assert_eq!(
        got,
        vec![
            deny("T1", 6),  // residual >= demand, no guard
            deny("T1", 10), // magic 1e-9 tolerance literal
        ]
    );
}

/// Lints the semantic mini-workspace with the token-level panic rules off,
/// isolating the call-graph families.
fn lint_semws() -> nfv_lint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semws");
    let mut cfg = Config::default();
    cfg.set("P1", None);
    cfg.set("P1-idx", None);
    nfv_lint::lint_workspace(&root, &cfg).expect("lint semws")
}

#[test]
fn semantic_workspace_pins_every_family() {
    let report = lint_semws();
    let got: Vec<(String, String, u32, Severity)> = report
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.path.clone(), v.line, v.severity))
        .collect();
    let engine = "crates/engine/src/lib.rs".to_string();
    let telemetry = "crates/telemetry/src/lib.rs".to_string();
    assert_eq!(
        got,
        vec![
            ("C1".to_string(), engine.clone(), 17, Severity::Deny),
            ("P2".to_string(), engine.clone(), 27, Severity::Deny),
            ("P2-cold".to_string(), engine.clone(), 39, Severity::Warn),
            ("C2".to_string(), engine.clone(), 44, Severity::Deny),
            ("C2".to_string(), engine, 61, Severity::Deny),
            ("TL1".to_string(), telemetry, 7, Severity::Deny),
        ]
    );
}

#[test]
fn semantic_workspace_reachability_and_allow_budget() {
    let report = lint_semws();
    let r = report.reachability.expect("worker entry root present");
    assert_eq!(r.entries, 1);
    assert_eq!(r.total_fns, 12);
    assert_eq!(r.reachable_fns, 5);
    assert_eq!(r.reachable_allowed_panics, 1);
    assert_eq!(r.cold_allowed_panics, 1);
    assert_eq!(report.allow_counts.get("P1"), Some(&2));
    assert_eq!(report.allow_counts.get("C1"), Some(&1));
    assert_eq!(report.allow_counts.get("C2"), Some(&1));
    assert_eq!(report.allow_counts.get("TL1"), Some(&1));
    assert_eq!(
        report.cold_sites,
        vec![("crates/engine/src/lib.rs".to_string(), 39)]
    );
}

#[test]
fn semantic_rules_are_individually_toggleable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semws");
    let mut cfg = Config::default();
    for rule in ["P1", "P1-idx", "P2", "P2-cold", "C1", "C2", "TL1"] {
        cfg.set(rule, None);
    }
    let report = nfv_lint::lint_workspace(&root, &cfg).expect("lint semws");
    assert_eq!(report.violations, vec![]);
}

#[test]
fn schema_v2_round_trips_from_workspace_report() {
    let report = lint_semws();
    let parsed = nfv_lint::ReportSummary::from_json(&report.to_json()).expect("parse v2");
    assert_eq!(parsed.version, 2);
    assert_eq!(parsed.files_scanned, report.files_scanned);
    assert_eq!(parsed.denied, report.denied());
    assert_eq!(parsed.counts, report.counts());
    assert_eq!(parsed.allow_counts, report.allow_counts);
    assert_eq!(parsed.reachability, report.reachability);
}

#[test]
fn cli_exits_nonzero_on_a_dirty_semantic_workspace() {
    let semws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semws");
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("semws-lint.json");
    let out = Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--workspace-root")
        .arg(&semws)
        .arg("--json")
        .arg(&json)
        .arg("--cold-report")
        .output()
        .expect("spawn nfv-lint");
    assert_eq!(out.status.code(), Some(1), "stdout: {:?}", out.stdout);
    let report = std::fs::read_to_string(&json).expect("JSON report written");
    for rule in ["P2", "C1", "C2", "TL1"] {
        assert!(
            report.contains(&format!("\"rule\": \"{rule}\"")),
            "{report}"
        );
    }
    assert!(report.contains("\"version\": 2"), "{report}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reachability: 1 entry roots"), "{stdout}");
}

#[test]
fn cli_max_allow_ratchet_fails_when_exceeded() {
    let semws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semws");
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("semws-ratchet.json");
    // The fixture carries two justified P1 escapes; a budget of 1 must
    // fail even with every deny rule disabled.
    let out = Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--workspace-root")
        .arg(&semws)
        .arg("--json")
        .arg(&json)
        .args([
            "--off", "P1", "--off", "P1-idx", "--off", "P2", "--off", "P2-cold",
        ])
        .args(["--off", "C1", "--off", "C2", "--off", "TL1"])
        .args(["--max-allow", "P1:1"])
        .output()
        .expect("spawn nfv-lint");
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("P1 allow count 2 exceeds"), "{stderr}");
}
