//! P1 fixture: panic sites and slice-index expressions.

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    xs.get(1).copied().expect("len checked")
}

pub fn third(xs: &[u32]) -> u32 {
    if xs.len() < 3 {
        panic!("too short");
    }
    xs[2]
}

pub fn fourth() -> u32 {
    unreachable!("never");
}

pub fn fifth() -> u32 {
    todo!()
}

pub fn guarded(xs: &[u32]) {
    debug_assert!(xs.iter().copied().max().unwrap() < 100);
}

pub struct Wrapper {
    pub unwrap: u32,
}

pub fn not_a_call(w: &Wrapper) -> u32 {
    w.unwrap
}
