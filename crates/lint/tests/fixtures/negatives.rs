//! Negative fixture: mentions that must NOT trip any rule.

pub fn tricky() -> String {
    let s = "call .unwrap() and panic!() and HashMap::new()";
    // .unwrap() here is commentary, as is Instant::now().
    let r = r#"thread_rng() and std::env::var("X") and xs[0]"#;
    let raw2 = r##"more "#"# unwrap() text"##;
    let c = 'x';
    let lifetime: &'static str = "ok";
    format!("{s}{r}{raw2}{c}{lifetime}")
}
