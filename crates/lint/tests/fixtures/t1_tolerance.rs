//! T1 fixture: raw comparisons on ledger quantities trip the rule; named
//! guards, justifications, sign checks, integral identifiers, and
//! turbofish stay silent.

fn raw_money(residual: f64, demand: f64) -> bool {
    residual >= demand
}

fn magic_literal(x: f64, y: f64) -> bool {
    x + 1e-9 >= y
}

fn guarded(residual: f64, demand: f64) -> bool {
    residual + CAPACITY_EPS >= demand
}

fn justified(residual: f64, demand: f64) -> bool {
    // lint:allow(T1): exact equality is intended in this fixture
    residual == demand
}

fn sign_check(bandwidth: f64) -> bool {
    bandwidth > 0.0
}

fn integral(capacity_hint: usize, len: usize) -> bool {
    capacity_hint > len
}

fn cache_key(bandwidth_bits: u64, other_bits: u64) -> bool {
    bandwidth_bits == other_bits
}

fn turbofish(residuals: &[f64]) -> f64 {
    residuals.iter().copied().sum::<f64>()
}

fn generic_ty(residual_log: Vec<f64>) -> usize {
    residual_log.len()
}
