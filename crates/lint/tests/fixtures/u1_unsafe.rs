//! U1 fixture: unsafe hygiene.

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees p is valid and aligned.
    unsafe { *p }
}
