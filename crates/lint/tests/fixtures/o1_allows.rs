//! O1 fixture: allow attributes need reasons.

#[allow(dead_code)]
fn bare() {}

#[allow(dead_code)] // kept for API symmetry with the paper's naming
fn trailing_reason() {}

// retained while the container migration lands
#[allow(dead_code)]
fn reason_above() {}

/// A documented item: the doc comment is not a reason.
#[allow(dead_code)]
fn doc_comment_does_not_count() {}
