//! D1 fixture: unordered containers in a planner crate.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

pub fn histogram(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    let _m = HashMap::<u32, u32>::new();
    seen.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_is_fine_in_tests() {
        let _ = HashMap::<u8, u8>::new();
    }
}
