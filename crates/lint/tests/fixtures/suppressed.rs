//! Suppression fixture: every seeded violation carries an escape.
// lint:allow-file(D2): this fixture exercises the file-wide escape

use std::collections::HashMap; // lint:allow(D1): exercising the trailing escape

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn count() -> usize {
    HashMap::<u8, u8>::new().len() // lint:allow(D1): trailing escape again
}

pub fn one() -> u32 {
    // lint:allow(P1): the invariant is trivially true in this fixture,
    // and the second line of this run must still be covered.
    Some(1).unwrap()
}
