//! A deliberately dirty crate root: missing `#![forbid(unsafe_code)]`,
//! using an unordered container, and panicking on the failure path.

use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> u32 {
    m.get(&k).copied().unwrap()
}
