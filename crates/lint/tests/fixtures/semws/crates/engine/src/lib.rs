//! Dirty semantic fixture: each call-graph rule family trips exactly once
//! and has a justified twin that stays silent.
#![forbid(unsafe_code)]

use telemetry::Counter;

// lint:entry(worker)
fn worker_loop(sdn: &mut Sdn) {
    stage(sdn);
    staged_allowed(sdn);
    helper();
    justified_helper();
    record(Counter::Used);
}

fn stage(sdn: &mut Sdn) {
    sdn.allocate(1, 2.0);
}

fn staged_allowed(sdn: &mut Sdn) {
    // lint:allow(C1): fixture twin — pretend this is committer-delegated
    sdn.allocate(3, 4.0);
}

fn helper() {
    let x: Option<u32> = None;
    x.unwrap();
}

fn justified_helper() {
    let x: Option<u32> = Some(1);
    // lint:allow(P1): the fixture constructs Some on the line above
    x.unwrap();
}

fn cold_helper() {
    let x: Option<u32> = Some(2);
    // lint:allow(P1): justified but unreachable — P2-cold flags it
    x.unwrap();
}

fn nested_locks(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock();
    let second = b.lock();
    *first + *second
}

fn nested_locks_allowed(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock();
    // lint:allow(C2): fixture twin — a before b everywhere by convention
    let second = b.lock();
    *first + *second
}

fn locks_inside(m: &Mutex<u32>) -> u32 {
    *m.lock()
}

fn transitive_hold(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock();
    *first + locks_inside(b)
}

fn scoped_guard_ok(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let v = { *a.lock() };
    v + locks_inside(b)
}
