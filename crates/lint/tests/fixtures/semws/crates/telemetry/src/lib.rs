//! Fixture telemetry registry: `Used` is recorded by the engine fixture,
//! `Dead` is not (TL1), `Reserved` is justified.
#![forbid(unsafe_code)]

pub enum Counter {
    Used,
    Dead,
    Reserved, // lint:allow(TL1): reserved for the next fixture milestone
}

impl Counter {
    pub const ALL: [Counter; 3] = [Counter::Used, Counter::Dead, Counter::Reserved];

    pub fn name(&self) -> &'static str {
        match self {
            Counter::Used => "used",
            Counter::Dead => "dead",
            Counter::Reserved => "reserved",
        }
    }
}
