//! D2 fixture: ambient nondeterminism in planning code.

pub fn elapsed_ms() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis() as u64
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn seeded() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn from_env() -> bool {
    std::env::var("NFV_FLAG").is_ok()
}

pub fn negative_mentions() {
    // Instant::now() in a comment is fine; so is "std::env" in a string.
    let _s = "std::env::var";
    let _instant = 5;
}
