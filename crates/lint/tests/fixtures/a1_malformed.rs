//! A1 fixture: syntactically malformed escapes.

pub fn noop() {}

// lint:allow(P1)
pub fn missing_reason() {}

// lint:allow(): empty rule list
pub fn missing_rule() {}

// lint:allow(D1) trailing prose without the colon
pub fn missing_colon() {}
