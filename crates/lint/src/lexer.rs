//! A minimal hand-rolled Rust lexer: just enough to strip comments and
//! string/char literals and hand the rule pass a token stream with line
//! numbers, plus the comments themselves (the allow-escape and `SAFETY:`
//! conventions live in comments).
//!
//! This is *not* a full Rust lexer — it only needs to be sound for the
//! constructs the rules inspect: identifiers, `::`, single-character
//! punctuation, and correct skipping of every literal form that could
//! otherwise fake a token (`"unwrap()"` in a string, `// panic!` in a
//! comment, raw strings, byte strings, char literals vs lifetimes).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `unsafe`, `mod`, …).
    Ident(String),
    /// The path separator `::`.
    PathSep,
    /// A numeric literal, raw text preserved (`1e-9`, `0x2f`, `3.5f64`).
    /// The exponent sign is folded in so `1e-9` is one token.
    Num(String),
    /// Any other single punctuation character (`.`, `!`, `[`, `#`, …).
    Punct(char),
}

impl Tok {
    /// The literal's numeric value, when this is a [`Tok::Num`] that
    /// parses as a decimal/float literal (type suffixes stripped,
    /// underscores removed). Hex/octal/binary literals return `None`.
    #[must_use]
    pub fn num_value(&self) -> Option<f64> {
        let Tok::Num(text) = self else { return None };
        let cleaned: String = text.chars().filter(|&c| c != '_').collect();
        let cleaned = cleaned
            .strip_suffix("f64")
            .or_else(|| cleaned.strip_suffix("f32"))
            .unwrap_or(&cleaned);
        if cleaned.starts_with("0x") || cleaned.starts_with("0o") || cleaned.starts_with("0b") {
            return None;
        }
        cleaned.parse::<f64>().ok()
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block) with its location and raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// 1-based line the comment *ends* on (differs for block comments).
    pub end_line: u32,
    /// The comment body, delimiters stripped.
    pub text: String,
    /// Whether only whitespace precedes the comment on its starting line.
    pub own_line: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order, literals and comments removed.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`, separating code tokens from comments and dropping
/// string/char/numeric literal contents.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    /// Whether a code token has already appeared on the current line
    /// (used for `Comment::own_line`).
    line_has_code: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                ':' if self.peek(1) == Some(':') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.push(Tok::PathSep, line);
                }
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Token { tok, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.line_has_code;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let own_line = !self.line_has_code;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            own_line,
        });
    }

    /// A plain `"…"` string with escapes; multi-line allowed.
    fn string_literal(&mut self) {
        self.line_has_code = true;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` leading `#`s; the
    /// caller has consumed the prefix identifier but not the hashes/quote.
    fn raw_string_literal(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        self.line_has_code = true;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // the escaped char (enough for \n, \', \\, \u{…} handled below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if (c == '_' || c.is_alphanumeric()) && self.peek(1) != Some('\'') => {
                // A lifetime: consume the identifier, no closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            Some(_) => {
                // Single-char literal 'x'.
                self.bump();
                self.bump(); // closing quote
            }
            None => {}
        }
    }

    /// Numbers lex into a single [`Tok::Num`] carrying the raw text;
    /// consumes digits, `_`, type suffixes, hex/bin digits, a fractional
    /// part, and a signed exponent (`1e-9` is one token), but leaves `..`
    /// alone so ranges still lex as punctuation.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fractional_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            let exponent_sign = (c == '+' || c == '-')
                && matches!(text.bytes().last(), Some(b'e') | Some(b'E'))
                && !text.starts_with("0x")
                && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c == '_' || c.is_ascii_alphanumeric() || fractional_dot || exponent_sign {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Num(text), line);
    }

    /// An identifier — unless it is a literal prefix (`r"…"`, `b'x'`,
    /// `br#"…"#`, `c"…"`) or a raw identifier (`r#ident`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut ident = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                ident.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let is_literal_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
        match (is_literal_prefix, self.peek(0)) {
            (true, Some('"')) => self.raw_or_plain_after_prefix(&ident, 0),
            (true, Some('\'')) if ident == "b" => self.char_or_lifetime(),
            (true, Some('#')) => {
                // Count hashes: raw string (`r#"`/`br##"`…) or raw ident (`r#foo`).
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.raw_string_literal(hashes);
                } else if ident == "r" {
                    // Raw identifier: consume `#` and lex the name.
                    self.bump();
                    self.ident_or_prefixed_literal();
                } else {
                    self.push(Tok::Ident(ident), line);
                }
            }
            _ => self.push(Tok::Ident(ident), line),
        }
    }

    fn raw_or_plain_after_prefix(&mut self, prefix: &str, hashes: usize) {
        if prefix.contains('r') {
            self.raw_string_literal(hashes);
        } else {
            self.string_literal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            let s = "unwrap() inside a string";
            // unwrap() in a line comment
            /* panic! in a /* nested */ block */
            let r = r#"raw with "quotes" and unwrap()"#;
            let b = b"bytes with unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_skipped() {
        let ids = idents("let c = 'x'; let n = '\\n'; y.unwrap()");
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn comments_captured_with_lines() {
        let l = lex("let a = 1;\n// lint:allow(P1): reason\nlet b = 2;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].own_line);
        assert!(l.comments[0].text.contains("lint:allow(P1)"));
    }

    #[test]
    fn trailing_comment_is_not_own_line() {
        let l = lex("let a = 1; // trailing\n");
        assert!(!l.comments[0].own_line);
    }

    #[test]
    fn path_sep_lexed() {
        let l = lex("std::env::var");
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::PathSep).count(), 2);
    }

    #[test]
    fn raw_identifier_is_ident() {
        let ids = idents("let r#type = 3; r#type.unwrap()");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let l = lex("for i in 0..n { x[i] = 1.0; t.0.unwrap() }");
        let ids: Vec<String> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"n".to_string()));
    }
}
