//! Item-level parsing on top of the token stream: function and impl
//! extraction, `use`-based crate visibility, and `lint:entry` annotations.
//!
//! This is *not* a Rust grammar. It recognises exactly the item shapes the
//! semantic pass needs — `fn` signatures and their brace-matched bodies,
//! `impl`/`trait` blocks for method qualification, and the first segment
//! of `use` paths for crate-level call resolution — and deliberately
//! ignores everything else (macros, generics beyond balancing, closures,
//! type aliases). The resulting approximations are documented in
//! DESIGN.md §16; every consumer of this module must tolerate both missed
//! and spurious items.

use crate::lexer::{lex, Lexed, Tok, Token};
use crate::rules::{self, FileInfo};
use crate::{Severity, Violation};

/// Role of a `lint:entry(...)` annotated function in the semantic pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Pipeline worker-thread entry: panic- and ledger-mutation-sensitive.
    Worker,
    /// Committer-thread entry: the only role allowed to mutate the ledger.
    Committer,
    /// Planner public API: panic-reachability root.
    Api,
}

impl Role {
    fn parse(s: &str) -> Option<Role> {
        match s {
            "worker" => Some(Role::Worker),
            "committer" => Some(Role::Committer),
            "api" => Some(Role::Api),
            _ => None,
        }
    }
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body including both braces (`[start, end)`)
    /// when the function has one; bodiless trait/extern declarations have
    /// `None`.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[test]`/`#[cfg(test)]` item range.
    pub is_test: bool,
}

/// One parsed source file with its extracted items.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path classification.
    pub info: FileInfo,
    /// The underlying token stream and comments.
    pub lexed: Lexed,
    /// Extracted functions in source order.
    pub fns: Vec<FnItem>,
    /// Crate directories visible to calls in this file: the file's own
    /// crate plus every crate named as the first segment of a `use` path.
    pub visible: Vec<String>,
    /// `lint:entry` annotations: (index into `fns`, role).
    pub entries: Vec<(usize, Role)>,
    /// Malformed `lint:entry` annotations (reported as `A1`).
    pub malformed: Vec<Violation>,
    /// Token ranges of test-ish items (shared with the token rules).
    pub test_ranges: Vec<(usize, usize)>,
    /// Token ranges of `debug_assert*!` interiors.
    pub dbg_ranges: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Index of the innermost function whose body contains token `i`.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span, fn idx)
        for (f, item) in self.fns.iter().enumerate() {
            if let Some((a, b)) = item.body {
                if i >= a && i < b {
                    let span = b - a;
                    if best.is_none_or(|(s, _)| span < s) {
                        best = Some((span, f));
                    }
                }
            }
        }
        best.map(|(_, f)| f)
    }

    /// Indices of every function whose body contains token `i` (innermost
    /// and all enclosing outers).
    #[must_use]
    pub fn enclosing_fns(&self, i: usize) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, item)| item.body.is_some_and(|(a, b)| i >= a && i < b))
            .map(|(f, _)| f)
            .collect()
    }
}

/// Maps a `use`-path first segment to the crate directory it names.
/// Package `[lib]` names differ from directory names for the renamed
/// crates; `crate`/`self`/`super` paths stay within the file's own crate
/// and need no mapping.
const CRATE_NAME_MAP: &[(&str, &str)] = &[
    ("netgraph", "netgraph"),
    ("steiner", "steiner"),
    ("sdn", "sdn"),
    ("nfv_multicast", "core"),
    ("nfv_online", "online"),
    ("nfv_engine", "engine"),
    ("telemetry", "telemetry"),
    ("topology", "topology"),
    ("workload", "workload"),
    ("sim", "sim"),
    ("nfv_lint", "lint"),
];

/// Parses one file. `rel` is the workspace-relative path.
#[must_use]
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let info = FileInfo::classify(rel);
    let lexed = lex(src);
    let test_ranges = rules::test_item_ranges(&lexed.tokens);
    let dbg_ranges = rules::debug_assert_ranges(&lexed.tokens);
    let toks = &lexed.tokens;

    let mut fns: Vec<FnItem> = Vec::new();
    let mut visible: Vec<String> = vec![info.crate_dir.clone()];
    // Stack of (type name, exclusive token index the block closes at).
    let mut ctx: Vec<(String, usize)> = Vec::new();

    let in_test =
        |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);

    let mut i = 0;
    while i < toks.len() {
        while let Some(&(_, close)) = ctx.last() {
            if i >= close {
                ctx.pop();
            } else {
                break;
            }
        }
        match &toks[i].tok {
            Tok::Ident(id) if id == "use" => {
                if let Some(Tok::Ident(seg)) = toks.get(i + 1).map(|t| &t.tok) {
                    if let Some(&(_, dir)) = CRATE_NAME_MAP.iter().find(|&&(n, _)| n == seg) {
                        if !visible.iter().any(|v| v == dir) {
                            visible.push(dir.to_string());
                        }
                    }
                }
                i += 1;
            }
            Tok::Ident(id) if id == "impl" || id == "trait" => {
                if let Some((name, body_open)) = parse_impl_header(toks, i, id == "trait") {
                    let close = rules::item_end(toks, body_open);
                    ctx.push((name, close));
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(id) if id == "fn" => {
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let body = parse_fn_body(toks, i + 2);
                fns.push(FnItem {
                    name,
                    impl_type: ctx.last().map(|(n, _)| n.clone()),
                    line: toks[i].line,
                    body,
                    is_test: in_test(&test_ranges, i),
                });
                // Step past `fn name` only, so nested fns and impls inside
                // the body are still discovered by the linear scan.
                i += 2;
            }
            _ => i += 1,
        }
    }

    let (entries, malformed) = parse_entries(&lexed, &fns, &info);

    ParsedFile {
        info,
        lexed,
        fns,
        visible,
        entries,
        malformed,
        test_ranges,
        dbg_ranges,
    }
}

/// Parses an `impl`/`trait` header starting at the keyword index; returns
/// the implemented type's (or trait's) name and the index of the opening
/// body brace. `impl Trait for Type` yields `Type`; path types yield
/// their last segment; generic parameters and arguments are skipped.
fn parse_impl_header(toks: &[Token], kw: usize, is_trait: bool) -> Option<(String, usize)> {
    let j = skip_generics(toks, kw + 1);
    let (mut name, after) = parse_type_path(toks, j)?;
    let mut j = skip_generics(toks, after);
    if !is_trait {
        if let Some(Tok::Ident(id)) = toks.get(j).map(|t| &t.tok) {
            if id == "for" {
                let (second, after) = parse_type_path(toks, j + 1)?;
                name = second;
                j = skip_generics(toks, after);
            }
        }
    }
    // Find the opening brace (skipping where clauses); bail on `;`
    // (e.g. `trait X: Y;` forms or parse confusion).
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => return Some((name, j)),
            Tok::Punct(';') => return None,
            _ => j += 1,
        }
    }
    None
}

/// Skips a balanced `<...>` generic group starting at `j`, tolerating the
/// `->` arrows that may appear inside (`impl<F: Fn() -> u8>`); returns the
/// index after the closing `>`, or `j` unchanged when no group starts here.
fn skip_generics(toks: &[Token], j: usize) -> usize {
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        return j;
    }
    let mut depth = 0usize;
    let mut k = j;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                // `->` return-type arrows inside generic bounds do not
                // close a generic group.
                let arrow = k > 0 && matches!(toks[k - 1].tok, Tok::Punct('-'));
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k + 1;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Parses a possibly path-qualified type name (`fmt::Display`, `Foo`),
/// returning its last segment and the index after the path (generic
/// arguments not yet consumed).
fn parse_type_path(toks: &[Token], mut j: usize) -> Option<(String, usize)> {
    let mut name = match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.clone(),
        _ => return None,
    };
    j += 1;
    loop {
        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::PathSep)) {
            if let Some(Tok::Ident(n)) = toks.get(j + 1).map(|t| &t.tok) {
                name = n.clone();
                j += 2;
                continue;
            }
        }
        return Some((name, j));
    }
}

/// Finds a function's body starting the search after its name: skips the
/// generic parameter list and the parenthesised argument list, then takes
/// the first `{` at paren depth 0 as the body opener (a `;` there instead
/// means a bodiless declaration). Returns the body's token range including
/// both braces.
fn parse_fn_body(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = skip_generics(toks, from);
    let mut paren = 0usize;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren = paren.saturating_sub(1),
            Tok::Punct('{') if paren == 0 => {
                let end = rules::item_end(toks, j);
                return Some((j, end));
            }
            Tok::Punct(';') if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses `lint:entry(role)` annotations out of the comments and binds
/// each to the first function declared on the comment's line or within
/// the next four lines (leaving room for attributes). Unknown roles and
/// unbound annotations are reported as `A1`.
fn parse_entries(
    lexed: &Lexed,
    fns: &[FnItem],
    info: &FileInfo,
) -> (Vec<(usize, Role)>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for c in &lexed.comments {
        // Doc comments only mention the syntax; annotations are plain `//`.
        if rules::is_doc_comment(&c.text) {
            continue;
        }
        let Some(start) = c.text.find("lint:entry(") else {
            continue;
        };
        let rest = &c.text[start + "lint:entry(".len()..];
        let role = rest
            .find(')')
            .and_then(|close| Role::parse(rest[..close].trim()));
        let Some(role) = role else {
            malformed.push(Violation {
                rule: "A1".into(),
                severity: Severity::Deny,
                path: info.rel.clone(),
                line: c.line,
                message: "malformed lint:entry(...): role must be worker, committer, or api".into(),
            });
            continue;
        };
        let bound = fns
            .iter()
            .position(|f| f.line >= c.line && f.line <= c.end_line + 4 && !f.is_test);
        match bound {
            Some(f) => entries.push((f, role)),
            None => malformed.push(Violation {
                rule: "A1".into(),
                severity: Severity::Deny,
                path: info.rel.clone(),
                line: c.line,
                message: "lint:entry(...) does not annotate a function (none declared within 4 \
                          lines)"
                    .into(),
            }),
        }
    }
    (entries, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/core/src/x.rs", src)
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let p = parse(
            "fn alpha() { beta(); }\n\
             struct S;\n\
             impl S {\n    fn beta(&self) -> u8 { 7 }\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self) -> bool { true }\n}\n",
        );
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("alpha", None), ("beta", Some("S")), ("fmt", Some("S"))]
        );
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn trait_decls_without_bodies_and_nested_fns() {
        let p = parse(
            "trait T {\n    fn required(&self);\n    fn provided(&self) -> u8 { 1 }\n}\n\
             fn outer() {\n    fn inner() {}\n    inner();\n}\n",
        );
        let req = p.fns.iter().find(|f| f.name == "required").unwrap();
        assert!(req.body.is_none());
        assert_eq!(req.impl_type.as_deref(), Some("T"));
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let (oa, ob) = outer.body.unwrap();
        let (ia, ib) = inner.body.unwrap();
        assert!(ia > oa && ib <= ob, "inner body nests inside outer");
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        let p = parse(
            "fn g<F: Fn() -> u8, const N: usize>(f: F, xs: [u8; N]) -> Box<dyn Fn() -> u8> {\n\
                 Box::new(move || f() + xs[0])\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn use_paths_extend_visibility() {
        let p = parse("use steiner::kmb;\nuse nfv_multicast::PathCache;\nuse std::fmt;\n");
        assert!(p.visible.iter().any(|v| v == "core"));
        assert!(p.visible.iter().any(|v| v == "steiner"));
        assert!(p.visible.iter().any(|v| v == "core"));
        assert!(!p.visible.iter().any(|v| v == "std"));
    }

    #[test]
    fn entry_annotations_bind_to_next_fn() {
        let p = parse(
            "// lint:entry(worker)\nfn work() {}\n\
             // lint:entry(api)\n#[must_use]\npub fn plan() -> u8 { 0 }\n\
             // lint:entry(bogus)\nfn other() {}\n",
        );
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.entries[0], (0, Role::Worker));
        assert_eq!(p.entries[1], (1, Role::Api));
        assert_eq!(p.malformed.len(), 1);
        assert!(p.malformed[0].message.contains("role"));
    }

    #[test]
    fn impl_header_with_path_and_generics() {
        let p = parse("impl<T: Ord> Wrapper<T> {\n    fn get(&self) -> &T { &self.0 }\n}\n");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }
}
