//! The cross-file semantic pass: workspace module map, approximate call
//! graph, and the rule families that need them.
//!
//! | Rule      | Default | What it catches |
//! |-----------|---------|-----------------|
//! | `P2`      | deny    | panic site reachable from a `lint:entry` root without a `lint:allow(P1)`/`lint:allow(P2)` justification |
//! | `P2-cold` | warn    | justified panic site *not* reachable from any root — candidate for downgrading out of the allow budget |
//! | `C1`      | deny    | ledger-mutating `Sdn` call reachable from a `lint:entry(worker)` root (committer-only APIs) |
//! | `C2`      | deny    | lock acquired while another lock is held, directly or through a callee that may lock |
//! | `TL1`     | deny    | telemetry registry variant never recorded anywhere outside its own declaration |
//!
//! # Call-graph approximation
//!
//! Resolution is name-based, not type-based (the linter has no type
//! checker). A call site resolves to *every* function of the matching
//! name/kind in the caller's visible crates — the file's own crate plus
//! each crate named by a `use` declaration. Method calls are the coarsest
//! (any method of that name anywhere visible); `Type::method` paths are
//! narrowed to the named impl block when one exists. This over-approximates
//! reachability — safe for P2/C1 (no false "unreachable") and a source of
//! possible false positives, which is why every rule keeps the
//! `lint:allow(RULE): reason` escape. Known unsoundness: calls through
//! function pointers, closures passed across functions, trait-object
//! dispatch on names that don't appear verbatim, and macro-generated
//! calls are all invisible. See DESIGN.md §16.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::parser::{parse_file, ParsedFile, Role};
use crate::rules::{self, Allow, P1_CRATES};
use crate::{Config, Severity, Violation};

/// Ledger-mutating `Sdn` APIs: committer-only by the pipeline's design
/// (DESIGN.md §13). `reset` is deliberately absent — the planner's
/// `Graph::reset` scratch-clearing shares the name.
const C1_LEDGER_MUTATORS: &[&str] = &[
    "allocate",
    "release",
    "fail_link",
    "recover_link",
    "fail_server",
    "recover_server",
    "recover_all",
];

/// The telemetry registry enums TL1 audits, in the crate's lib root.
const TL1_REGISTRY_ENUMS: &[&str] = &["Counter", "Gauge", "Hist"];

/// P2 reachability summary, carried into the JSON report for the
/// scheduled CI trend line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    /// Number of bound `lint:entry` roots.
    pub entries: usize,
    /// Functions in the call graph (non-test, analyzed crates).
    pub total_fns: usize,
    /// Functions reachable from any root.
    pub reachable_fns: usize,
    /// Justified panic sites on reachable paths (the live allow budget).
    pub reachable_allowed_panics: usize,
    /// Justified panic sites no root reaches — downgrade candidates.
    pub cold_allowed_panics: usize,
}

/// Outcome of the semantic pass over a whole workspace.
#[derive(Debug)]
pub struct SemReport {
    /// Violations from the semantic rule families, unsorted.
    pub violations: Vec<Violation>,
    /// P2 reachability summary (`None` when no entry roots exist).
    pub reachability: Option<Reachability>,
    /// Workspace-wide `lint:allow` escape counts per rule (the
    /// `--max-allow` ratchet input), counted across *all* scanned files.
    pub allow_counts: BTreeMap<String, usize>,
    /// Cold justified panic sites as `(path, line)`, for `--cold-report`.
    pub cold_sites: Vec<(String, u32)>,
}

/// A call site's resolution kind.
enum CallKind {
    /// `name(...)` — a free-function call.
    Free(String),
    /// `.name(...)` — a method call.
    Method(String),
    /// `Qual::name(...)` — a qualified call.
    Qualified(String, String),
}

/// One file prepared for graph construction.
struct SemFile {
    parsed: ParsedFile,
    allows: Vec<Allow>,
    /// Participates in the call graph and the semantic rules (crates/
    /// sources that are not test-like; compat and tests only contribute
    /// allow counts).
    analyzed: bool,
}

/// Runs the semantic pass over `(rel_path, source)` pairs.
#[must_use]
pub fn analyze(files: &[(String, String)], cfg: &Config) -> SemReport {
    let sem_files: Vec<SemFile> = files
        .iter()
        .map(|(rel, src)| {
            let parsed = parse_file(rel, src);
            let (allows, _) = rules::parse_allows(&parsed.lexed.comments);
            let analyzed = rel.starts_with("crates/") && !parsed.info.is_test_like;
            SemFile {
                parsed,
                allows,
                analyzed,
            }
        })
        .collect();

    let mut allow_counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in &sem_files {
        for a in &f.allows {
            for r in &a.rules {
                *allow_counts.entry(r.clone()).or_insert(0) += 1;
            }
        }
    }

    let graph = Graph::build(&sem_files);
    let mut violations: Vec<Violation> = Vec::new();

    // Malformed lint:entry annotations (parser-detected A1s).
    for f in &sem_files {
        if f.analyzed {
            violations.extend(f.parsed.malformed.iter().cloned());
        }
    }

    let (reachability, cold_sites) = p2_reachability(&sem_files, &graph, &mut violations);
    c1_ledger(&sem_files, &graph, &mut violations);
    c2_lock_order(&sem_files, &graph, &mut violations);
    tl1_dead_telemetry(&sem_files, &mut violations);

    // Apply per-site escapes, then config severities (same pipeline as
    // the token rules in `rules::lint_source`).
    let by_rel: BTreeMap<&str, &SemFile> = sem_files
        .iter()
        .map(|f| (f.parsed.info.rel.as_str(), f))
        .collect();
    violations.retain(|v| {
        by_rel
            .get(v.path.as_str())
            .is_none_or(|f| !rules::suppressed(&f.allows, &v.rule, v.line))
    });
    violations.retain_mut(|v| match cfg.severity(&v.rule) {
        None => false,
        Some(s) => {
            v.severity = s;
            true
        }
    });

    SemReport {
        violations,
        reachability,
        allow_counts,
        cold_sites,
    }
}

/// A function's global identity in the call graph.
type FnId = usize;

struct GraphFn {
    file: usize,
    local: usize,
}

/// The workspace call graph over all analyzed files.
struct Graph {
    fns: Vec<GraphFn>,
    /// Adjacency: caller -> resolved callees.
    calls: Vec<Vec<FnId>>,
    /// `(file index, local fn index)` -> global id.
    by_local: BTreeMap<(usize, usize), FnId>,
}

impl Graph {
    fn build(files: &[SemFile]) -> Graph {
        let mut fns: Vec<GraphFn> = Vec::new();
        let mut by_local: BTreeMap<(usize, usize), FnId> = BTreeMap::new();
        // Name indexes over non-test functions with bodies or trait decls.
        let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();

        for (fi, f) in files.iter().enumerate() {
            if !f.analyzed {
                continue;
            }
            for (li, item) in f.parsed.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let id = fns.len();
                fns.push(GraphFn {
                    file: fi,
                    local: li,
                });
                by_local.insert((fi, li), id);
                match &item.impl_type {
                    None => free_by_name.entry(&item.name).or_default().push(id),
                    Some(ty) => {
                        method_by_name.entry(&item.name).or_default().push(id);
                        typed
                            .entry((ty.as_str(), item.name.as_str()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }

        let crate_of = |id: FnId| files[fns[id].file].parsed.info.crate_dir.as_str();
        let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];

        for (fi, f) in files.iter().enumerate() {
            if !f.analyzed {
                continue;
            }
            let visible = &f.parsed.visible;
            let vis_ok = |id: FnId| visible.iter().any(|v| v == crate_of(id));
            let toks = &f.parsed.lexed.tokens;
            for (i, kind) in call_sites(toks) {
                let Some(caller_local) = f.parsed.enclosing_fn(i) else {
                    continue;
                };
                let Some(&caller) = by_local.get(&(fi, caller_local)) else {
                    continue; // test fn — not a graph node
                };
                let mut targets: Vec<FnId> = Vec::new();
                match &kind {
                    CallKind::Free(name) => {
                        if let Some(ids) = free_by_name.get(name.as_str()) {
                            targets.extend(ids.iter().copied().filter(|&id| vis_ok(id)));
                        }
                    }
                    CallKind::Method(name) => {
                        if let Some(ids) = method_by_name.get(name.as_str()) {
                            targets.extend(ids.iter().copied().filter(|&id| vis_ok(id)));
                        }
                    }
                    CallKind::Qualified(qual, name) => {
                        let qual: &str = match qual.as_str() {
                            // `Self::helper()` — substitute the caller's
                            // own impl type when known.
                            "Self" => f.parsed.fns[caller_local]
                                .impl_type
                                .as_deref()
                                .unwrap_or("Self"),
                            "self" | "crate" | "super" => "",
                            q => q,
                        };
                        if qual.is_empty() {
                            // Crate-relative path: free fns in this crate.
                            if let Some(ids) = free_by_name.get(name.as_str()) {
                                targets.extend(
                                    ids.iter()
                                        .copied()
                                        .filter(|&id| crate_of(id) == f.parsed.info.crate_dir),
                                );
                            }
                        } else if let Some(ids) = typed.get(&(qual, name.as_str())) {
                            targets.extend(ids.iter().copied().filter(|&id| vis_ok(id)));
                        } else {
                            // `module::fn` or a cross-crate path with no
                            // matching impl: fall back to visible free fns.
                            if let Some(ids) = free_by_name.get(name.as_str()) {
                                targets.extend(ids.iter().copied().filter(|&id| vis_ok(id)));
                            }
                        }
                    }
                }
                calls[caller].extend(targets);
            }
        }
        for c in &mut calls {
            c.sort_unstable();
            c.dedup();
        }
        Graph {
            fns,
            calls,
            by_local,
        }
    }

    /// BFS closure over the call graph from `roots`.
    fn reach(&self, roots: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: Vec<FnId> = roots.to_vec();
        while let Some(id) = queue.pop() {
            for &next in &self.calls[id] {
                if seen.insert(next) {
                    queue.push(next);
                }
            }
        }
        seen
    }
}

/// Extracts call sites from a token stream: `(token index of the name,
/// kind)`. Macro invocations (`name!`), declarations (`fn name`), and
/// control keywords never match because of the adjacency requirements.
fn call_sites(toks: &[crate::lexer::Token]) -> Vec<(usize, CallKind)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        let kind = match i.checked_sub(1).map(|p| &toks[p].tok) {
            Some(Tok::Punct('.')) => CallKind::Method(name.clone()),
            Some(Tok::PathSep) => {
                let Some(Tok::Ident(qual)) = i.checked_sub(2).map(|p| &toks[p].tok) else {
                    continue; // `<T as Trait>::f()` and friends — skip
                };
                CallKind::Qualified(qual.clone(), name.clone())
            }
            Some(Tok::Ident(kw)) if kw == "fn" => continue,
            _ => CallKind::Free(name.clone()),
        };
        out.push((i, kind));
    }
    out
}

/// Collects the global ids of every `lint:entry` root, optionally
/// restricted to one role.
fn entry_roots(files: &[SemFile], graph: &Graph, role: Option<Role>) -> Vec<FnId> {
    let mut roots = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed {
            continue;
        }
        for &(local, r) in &f.parsed.entries {
            if role.is_none_or(|want| want == r) {
                if let Some(&id) = graph.by_local.get(&(fi, local)) {
                    roots.push(id);
                }
            }
        }
    }
    roots
}

/// Panic-site token indexes in one file, mirroring the `P1` site set:
/// `.unwrap()`/`.expect(` method calls and the aborting macros, outside
/// test and `debug_assert` ranges.
fn panic_sites(f: &SemFile) -> Vec<usize> {
    let toks = &f.parsed.lexed.tokens;
    let in_any = |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let hit = match &t.tok {
            Tok::Ident(id) if id == "unwrap" || id == "expect" => {
                i > 0
                    && toks[i - 1].tok == Tok::Punct('.')
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            }
            Tok::Ident(id)
                if matches!(
                    id.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
            }
            _ => false,
        };
        if hit && !in_any(&f.parsed.test_ranges, i) && !in_any(&f.parsed.dbg_ranges, i) {
            out.push(i);
        }
    }
    out
}

/// P2: panic sites reachable from any entry root must carry a
/// justification; justified sites nothing reaches are downgrade
/// candidates (`P2-cold`, warn).
fn p2_reachability(
    files: &[SemFile],
    graph: &Graph,
    out: &mut Vec<Violation>,
) -> (Option<Reachability>, Vec<(String, u32)>) {
    let roots = entry_roots(files, graph, None);
    if roots.is_empty() {
        return (None, Vec::new());
    }
    let reachable = graph.reach(&roots);

    let mut reachable_allowed = 0usize;
    let mut cold_allowed = 0usize;
    let mut cold_sites: Vec<(String, u32)> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed || !P1_CRATES.contains(&f.parsed.info.crate_dir.as_str()) {
            continue;
        }
        for i in panic_sites(f) {
            let line = f.parsed.lexed.tokens[i].line;
            let enclosing = f.parsed.enclosing_fns(i);
            if enclosing.is_empty() {
                continue; // top-level const/static context — P1 covers it
            }
            let site_reachable = enclosing.iter().any(|&local| {
                graph
                    .by_local
                    .get(&(fi, local))
                    .is_some_and(|id| reachable.contains(id))
            });
            let allowed = rules::suppressed(&f.allows, "P1", line)
                || rules::suppressed(&f.allows, "P2", line);
            match (site_reachable, allowed) {
                (true, true) => reachable_allowed += 1,
                (true, false) => out.push(Violation {
                    rule: "P2".into(),
                    severity: Severity::Deny,
                    path: f.parsed.info.rel.clone(),
                    line,
                    message: "panic site reachable from a lint:entry root; justify the invariant \
                              with lint:allow(P1) or lint:allow(P2), or return SdnError"
                        .into(),
                }),
                (false, true) => {
                    cold_allowed += 1;
                    cold_sites.push((f.parsed.info.rel.clone(), line));
                    out.push(Violation {
                        rule: "P2-cold".into(),
                        severity: Severity::Warn,
                        path: f.parsed.info.rel.clone(),
                        line,
                        message: "justified panic site not reachable from any lint:entry root; \
                                  candidate for dropping from the allow budget"
                            .into(),
                    });
                }
                (false, false) => {}
            }
        }
    }

    let total_fns = graph.fns.len();
    (
        Some(Reachability {
            entries: roots.len(),
            total_fns,
            reachable_fns: reachable.len(),
            reachable_allowed_panics: reachable_allowed,
            cold_allowed_panics: cold_allowed,
        }),
        cold_sites,
    )
}

/// C1: ledger-mutating `Sdn` calls must not be reachable from worker
/// entry roots — the pipeline's committer owns the ledger.
fn c1_ledger(files: &[SemFile], graph: &Graph, out: &mut Vec<Violation>) {
    let roots = entry_roots(files, graph, Some(Role::Worker));
    if roots.is_empty() {
        return;
    }
    let reachable = graph.reach(&roots);
    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed {
            continue;
        }
        let toks = &f.parsed.lexed.tokens;
        for (i, kind) in call_sites(toks) {
            let name = match &kind {
                CallKind::Method(n) => n,
                CallKind::Qualified(q, n) if q == "Sdn" => n,
                _ => continue,
            };
            if !C1_LEDGER_MUTATORS.contains(&name.as_str()) {
                continue;
            }
            let in_worker = f.parsed.enclosing_fns(i).iter().any(|&local| {
                graph
                    .by_local
                    .get(&(fi, local))
                    .is_some_and(|id| reachable.contains(id))
            });
            if in_worker {
                out.push(Violation {
                    rule: "C1".into(),
                    severity: Severity::Deny,
                    path: f.parsed.info.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        ".{name}() mutates the ledger but is reachable from a \
                         lint:entry(worker) root; ledger mutation is committer-only \
                         (lint:allow(C1) to justify)"
                    ),
                });
            }
        }
    }
}

/// Direct lock acquisitions in one file: token indexes of `.lock()`,
/// `.read()`, `.write()` with *empty* argument lists (the empty parens
/// discriminate `Mutex`/`RwLock` guards from `io::Read`/`Write` calls,
/// which always take a buffer).
fn lock_sites(f: &SemFile) -> Vec<usize> {
    let toks = &f.parsed.lexed.tokens;
    let in_any = |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !matches!(name.as_str(), "lock" | "read" | "write") {
            continue;
        }
        let method = i > 0 && toks[i - 1].tok == Tok::Punct('.');
        let empty_args = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')));
        if method && empty_args && !in_any(&f.parsed.test_ranges, i) {
            out.push(i);
        }
    }
    out
}

/// C2: no second lock while one is held. A guard is held from its
/// acquisition until the innermost enclosing block closes; within that
/// hold region, another direct acquisition or a call into a function
/// that may (transitively) lock is a violation.
fn c2_lock_order(files: &[SemFile], graph: &Graph, out: &mut Vec<Violation>) {
    // Fixpoint: which graph fns may acquire a lock, transitively.
    let mut may_lock: Vec<bool> = vec![false; graph.fns.len()];
    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed {
            continue;
        }
        for i in lock_sites(f) {
            if let Some(local) = f.parsed.enclosing_fn(i) {
                if let Some(&id) = graph.by_local.get(&(fi, local)) {
                    may_lock[id] = true;
                }
            }
        }
    }
    // Reverse edges, then propagate.
    let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); graph.fns.len()];
    for (caller, callees) in graph.calls.iter().enumerate() {
        for &callee in callees {
            callers[callee].push(caller);
        }
    }
    let mut queue: Vec<FnId> = (0..graph.fns.len()).filter(|&i| may_lock[i]).collect();
    while let Some(id) = queue.pop() {
        for &caller in &callers[id] {
            if !may_lock[caller] {
                may_lock[caller] = true;
                queue.push(caller);
            }
        }
    }

    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed {
            continue;
        }
        let toks = &f.parsed.lexed.tokens;
        let sites = lock_sites(f);
        let calls = call_sites(toks);
        for &acq in &sites {
            // Hold region: until the innermost enclosing block closes.
            let mut depth = 0usize;
            let mut end = toks.len();
            for (k, t) in toks.iter().enumerate().skip(acq + 1) {
                match t.tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        if depth == 0 {
                            end = k;
                            break;
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
            // (a) a second direct acquisition inside the hold region;
            for &other in &sites {
                if other > acq + 2 && other < end {
                    out.push(Violation {
                        rule: "C2".into(),
                        severity: Severity::Deny,
                        path: f.parsed.info.rel.clone(),
                        line: toks[other].line,
                        message: format!(
                            "second lock acquired while the guard from line {} is still held; \
                             drop the first guard or justify the ordering with lint:allow(C2)",
                            toks[acq].line
                        ),
                    });
                }
            }
            // (b) a call into a function that may itself lock.
            for (ci, kind) in &calls {
                if *ci <= acq + 2 || *ci >= end {
                    continue;
                }
                let locks_inside = resolved_targets(graph, files, fi, *ci, kind)
                    .into_iter()
                    .any(|id| may_lock[id]);
                if locks_inside {
                    let name = match kind {
                        CallKind::Free(n) | CallKind::Method(n) | CallKind::Qualified(_, n) => n,
                    };
                    out.push(Violation {
                        rule: "C2".into(),
                        severity: Severity::Deny,
                        path: f.parsed.info.rel.clone(),
                        line: toks[*ci].line,
                        message: format!(
                            "{name}() may acquire a lock while the guard from line {} is still \
                             held; drop the guard first or justify with lint:allow(C2)",
                            toks[acq].line
                        ),
                    });
                }
            }
        }
    }
    // A nested acquisition is flagged once per enclosing guard; collapse
    // duplicates from overlapping hold regions.
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
}

/// Re-resolves one call site (used by C2's hold-region scan, which needs
/// per-site targets rather than the aggregated adjacency).
fn resolved_targets(
    graph: &Graph,
    files: &[SemFile],
    fi: usize,
    site: usize,
    kind: &CallKind,
) -> Vec<FnId> {
    let f = &files[fi];
    let Some(caller_local) = f.parsed.enclosing_fn(site) else {
        return Vec::new();
    };
    let Some(&caller) = graph.by_local.get(&(fi, caller_local)) else {
        return Vec::new();
    };
    let name = match kind {
        CallKind::Free(n) | CallKind::Method(n) | CallKind::Qualified(_, n) => n.as_str(),
    };
    // The aggregated adjacency already holds this site's targets (merged
    // with the caller's other sites); filter back down by callee name.
    graph.calls[caller]
        .iter()
        .copied()
        .filter(|&id| {
            let gf = &graph.fns[id];
            files[gf.file].parsed.fns[gf.local].name == name
        })
        .collect()
}

/// TL1: every variant of the telemetry registry enums must be recorded
/// somewhere outside its own declaration/impl blocks and outside tests.
fn tl1_dead_telemetry(files: &[SemFile], out: &mut Vec<Violation>) {
    // Locate the registry: the telemetry crate's lib root.
    let Some((reg_fi, reg)) = files.iter().enumerate().find(|(_, f)| {
        f.analyzed && f.parsed.info.crate_dir == "telemetry" && f.parsed.info.is_lib_root
    }) else {
        return;
    };
    let toks = &reg.parsed.lexed.tokens;

    // Token ranges to exclude from liveness inside the registry file:
    // the enum declarations themselves and `impl Counter`-style blocks
    // (whose `ALL` tables and `name()` matches mention every variant).
    let mut excluded: Vec<(usize, usize)> = Vec::new();
    // Variants: (enum name, variant name, declaration line).
    let mut variants: Vec<(String, String, u32)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(kw) if kw == "enum" => {
                let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
                    i += 1;
                    continue;
                };
                if !TL1_REGISTRY_ENUMS.contains(&name.as_str()) {
                    i += 1;
                    continue;
                }
                let Some(open) = (i..toks.len()).find(|&k| toks[k].tok == Tok::Punct('{')) else {
                    break;
                };
                let close = rules::item_end(toks, open);
                excluded.push((i, close));
                // Variants: identifiers at brace depth 1 that start a
                // field (previous significant token is `{` or `,`),
                // skipping attribute groups.
                let mut k = open + 1;
                let mut expect_variant = true;
                while k < close.saturating_sub(1) {
                    match &toks[k].tok {
                        Tok::Punct('#') => {
                            // Skip `#[...]` attribute.
                            if let Some(Tok::Punct('[')) = toks.get(k + 1).map(|t| &t.tok) {
                                let mut d = 0usize;
                                k += 1;
                                while k < close {
                                    match toks[k].tok {
                                        Tok::Punct('[') => d += 1,
                                        Tok::Punct(']') => {
                                            d -= 1;
                                            if d == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                    k += 1;
                                }
                            }
                        }
                        Tok::Ident(v) if expect_variant => {
                            variants.push((name.clone(), v.clone(), toks[k].line));
                            expect_variant = false;
                        }
                        Tok::Punct(',') => expect_variant = true,
                        _ => {}
                    }
                    k += 1;
                }
                i = close;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // Exclude `impl Counter { ... }` for the registry enums.
                let mentions_registry = (i + 1..(i + 6).min(toks.len())).any(|k| {
                    matches!(&toks[k].tok, Tok::Ident(n) if TL1_REGISTRY_ENUMS.contains(&n.as_str()))
                });
                if mentions_registry {
                    if let Some(open) = (i..toks.len()).find(|&k| toks[k].tok == Tok::Punct('{')) {
                        let close = rules::item_end(toks, open);
                        excluded.push((i, close));
                        i = close;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Liveness: `Enum::Variant` occurrences in analyzed non-test code,
    // outside the excluded declaration ranges.
    let mut live: BTreeSet<(String, String)> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.analyzed {
            continue;
        }
        let ftoks = &f.parsed.lexed.tokens;
        let in_any =
            |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);
        for k in 0..ftoks.len() {
            let Tok::Ident(en) = &ftoks[k].tok else {
                continue;
            };
            if !TL1_REGISTRY_ENUMS.contains(&en.as_str()) {
                continue;
            }
            if !matches!(ftoks.get(k + 1).map(|t| &t.tok), Some(Tok::PathSep)) {
                continue;
            }
            let Some(Tok::Ident(var)) = ftoks.get(k + 2).map(|t| &t.tok) else {
                continue;
            };
            if in_any(&f.parsed.test_ranges, k) {
                continue;
            }
            if fi == reg_fi && excluded.iter().any(|&(a, b)| k >= a && k < b) {
                continue;
            }
            live.insert((en.clone(), var.clone()));
        }
    }

    for (en, var, line) in variants {
        if !live.contains(&(en.clone(), var.clone())) {
            out.push(Violation {
                rule: "TL1".into(),
                severity: Severity::Deny,
                path: reg.parsed.info.rel.clone(),
                line,
                message: format!(
                    "{en}::{var} is declared in the telemetry registry but never recorded; \
                     remove it or justify with lint:allow(TL1)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn p2_flags_reachable_unjustified_panic() {
        let files = ws(&[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint:entry(api)\npub fn plan() { helper(); }\n\
             fn helper() { inner.unwrap(); }\n\
             fn dead() { other.unwrap(); }\n",
        )]);
        let rep = analyze(&files, &Config::default());
        let p2: Vec<u32> = rep
            .violations
            .iter()
            .filter(|v| v.rule == "P2")
            .map(|v| v.line)
            .collect();
        assert_eq!(p2, vec![4], "only the reachable site is P2");
        let r = rep.reachability.unwrap();
        assert_eq!(r.entries, 1);
        assert_eq!(r.reachable_fns, 2);
        assert_eq!(r.total_fns, 3);
    }

    #[test]
    fn p2_cold_flags_unreachable_allowed_panic() {
        let files = ws(&[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint:entry(api)\npub fn plan() {}\n\
             fn dead() {\n\
                 // lint:allow(P1): invariant holds by construction\n\
                 inner.unwrap();\n\
             }\n",
        )]);
        let rep = analyze(&files, &Config::default());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.rule == "P2-cold" && v.line == 6));
        assert_eq!(rep.reachability.unwrap().cold_allowed_panics, 1);
        assert_eq!(
            rep.cold_sites,
            vec![("crates/core/src/lib.rs".to_string(), 6)]
        );
    }

    #[test]
    fn c1_flags_worker_reachable_ledger_mutation() {
        let files = ws(&[(
            "crates/engine/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint:entry(worker)\nfn work(sdn: &mut Sdn) { stage(sdn); }\n\
             fn stage(sdn: &mut Sdn) { sdn.allocate(1, 2.0); }\n\
             // lint:entry(committer)\nfn commit(sdn: &mut Sdn) { sdn.release(1); }\n",
        )]);
        let rep = analyze(&files, &Config::default());
        let c1: Vec<u32> = rep
            .violations
            .iter()
            .filter(|v| v.rule == "C1")
            .map(|v| v.line)
            .collect();
        assert_eq!(
            c1,
            vec![4],
            "committer-side release is fine; worker-side allocate is not"
        );
    }

    #[test]
    fn c2_flags_nested_lock_and_transitive_lock() {
        let files = ws(&[(
            "crates/engine/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             fn deep() { let _g = M2.lock(); }\n\
             fn nested() {\n\
                 let a = M1.lock();\n\
                 let b = M2.lock();\n\
             }\n\
             fn transitive() {\n\
                 let a = M1.lock();\n\
                 deep();\n\
             }\n\
             fn scoped_ok() {\n\
                 let v = { M1.lock().pop() };\n\
                 deep();\n\
             }\n",
        )]);
        let rep = analyze(&files, &Config::default());
        let c2: Vec<u32> = rep
            .violations
            .iter()
            .filter(|v| v.rule == "C2")
            .map(|v| v.line)
            .collect();
        assert_eq!(
            c2,
            vec![5, 9],
            "scoped guard released before deep() is fine"
        );
    }

    #[test]
    fn tl1_flags_unrecorded_variant() {
        let files = ws(&[
            (
                "crates/telemetry/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub enum Counter { Used, Dead }\n\
                 impl Counter {\n\
                     pub const ALL: [Counter; 2] = [Counter::Used, Counter::Dead];\n\
                 }\n",
            ),
            (
                "crates/engine/src/lib.rs",
                "#![forbid(unsafe_code)]\nuse telemetry::Counter;\n\
                 fn f() { hit(Counter::Used); }\n",
            ),
        ]);
        let rep = analyze(&files, &Config::default());
        let tl1: Vec<(u32, &str)> = rep
            .violations
            .iter()
            .filter(|v| v.rule == "TL1")
            .map(|v| (v.line, v.message.as_str()))
            .collect();
        assert_eq!(tl1.len(), 1);
        assert_eq!(tl1[0].0, 2);
        assert!(tl1[0].1.contains("Counter::Dead"));
    }

    #[test]
    fn allow_counts_cover_all_files() {
        let files = ws(&[
            (
                "crates/core/src/lib.rs",
                "#![forbid(unsafe_code)]\n// lint:allow(P1): fine\nx.unwrap();\n",
            ),
            (
                "compat/vendored.rs",
                "// lint:allow(P1): vendored\ny.unwrap();\n",
            ),
        ]);
        let rep = analyze(&files, &Config::default());
        assert_eq!(rep.allow_counts.get("P1"), Some(&2));
    }
}
