//! Command-line driver for [`nfv_lint`].
//!
//! ```text
//! cargo run -p nfv-lint --release -- --workspace-root . [--json results/lint.json]
//!     [--deny RULE] [--warn RULE] [--off RULE] [--max-warn RULE:N]
//!     [--max-allow RULE:N] [--cold-report] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` deny-severity violations found, `2` usage
//! or I/O error.

#![forbid(unsafe_code)]

use nfv_lint::{lint_workspace, Config, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: PathBuf,
    quiet: bool,
    cfg: Config,
    /// Per-rule warn-count ceilings (`--max-warn RULE:N`): exceeding one
    /// fails the run even though the individual findings stay warnings.
    /// This is the regression ratchet for burndown rules like `P1-idx`.
    max_warn: Vec<(String, usize)>,
    /// Per-rule `lint:allow` escape-count ceilings (`--max-allow RULE:N`):
    /// the allow-budget ratchet. New escapes beyond the budget fail the
    /// run even when every individual escape is well-formed.
    max_allow: Vec<(String, usize)>,
    /// Print the P2 reachability summary and the cold justified panic
    /// sites (the allow-budget downgrade candidates).
    cold_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: PathBuf::from("results/lint.json"),
        quiet: false,
        cfg: Config::default(),
        max_warn: Vec::new(),
        max_allow: Vec::new(),
        cold_report: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut rule_override = |sev: Option<Severity>| -> Result<(), String> {
            let rule = it
                .next()
                .ok_or_else(|| format!("{arg} needs a rule name"))?;
            if !args.cfg.knows(&rule) {
                return Err(format!("unknown rule {rule}"));
            }
            args.cfg.set(&rule, sev);
            Ok(())
        };
        match arg.as_str() {
            "--workspace-root" => {
                args.root = PathBuf::from(it.next().ok_or("--workspace-root needs a path")?);
            }
            "--json" => args.json = PathBuf::from(it.next().ok_or("--json needs a path")?),
            "--deny" => rule_override(Some(Severity::Deny))?,
            "--warn" => rule_override(Some(Severity::Warn))?,
            "--off" => rule_override(None)?,
            "--max-warn" => {
                let spec = it.next().ok_or("--max-warn needs RULE:N")?;
                let (rule, limit) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--max-warn {spec}: expected RULE:N"))?;
                if !args.cfg.knows(rule) {
                    return Err(format!("unknown rule {rule}"));
                }
                let limit: usize = limit
                    .parse()
                    .map_err(|_| format!("--max-warn {spec}: N must be a non-negative integer"))?;
                args.max_warn.push((rule.to_string(), limit));
            }
            "--max-allow" => {
                let spec = it.next().ok_or("--max-allow needs RULE:N")?;
                let (rule, limit) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--max-allow {spec}: expected RULE:N"))?;
                if !args.cfg.knows(rule) {
                    return Err(format!("unknown rule {rule}"));
                }
                let limit: usize = limit
                    .parse()
                    .map_err(|_| format!("--max-allow {spec}: N must be a non-negative integer"))?;
                args.max_allow.push((rule.to_string(), limit));
            }
            "--cold-report" => args.cold_report = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "nfv-lint: determinism & panic-freedom linter\n\
                     \n\
                     USAGE: nfv-lint [--workspace-root PATH] [--json PATH]\n\
                     \x20                [--deny RULE] [--warn RULE] [--off RULE]\n\
                     \x20                [--max-warn RULE:N] [--max-allow RULE:N]\n\
                     \x20                [--cold-report] [--quiet]\n\
                     \n\
                     Rules: D1 (unordered containers), D2 (ambient nondeterminism),\n\
                     \x20      P1 (panic sites), P1-idx (slice indexing, warn by default),\n\
                     \x20      P2/P2-cold (call-graph panic reachability), T1 (tolerance\n\
                     \x20      guards), C1 (committer-only ledger), C2 (lock order),\n\
                     \x20      TL1 (dead telemetry), U1 (unsafe hygiene), O1 (#[allow]\n\
                     \x20      reasons), A1 (escape syntax).\n\
                     See DESIGN.md §11 and §16 for the full policy."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("nfv-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&args.root, &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nfv-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !args.quiet {
        for v in &report.violations {
            println!(
                "{}:{}: [{}/{}] {}",
                v.path, v.line, v.rule, v.severity, v.message
            );
        }
    }

    // The JSON report goes next to the other experiment artifacts; keep
    // the path relative to the workspace root so CI finds it.
    let json_path = if args.json.is_absolute() {
        args.json.clone()
    } else {
        args.root.join(&args.json)
    };
    if let Some(dir) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("nfv-lint: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("nfv-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    let denied = report.denied();
    let warned = report.violations.len() - denied;
    println!(
        "nfv-lint: {} files scanned, {denied} denied, {warned} warned (report: {})",
        report.files_scanned,
        relative_display(&json_path, &args.root)
    );

    if args.cold_report {
        match &report.reachability {
            None => println!("nfv-lint: no lint:entry roots; reachability not computed"),
            Some(r) => {
                println!(
                    "nfv-lint: reachability: {} entry roots, {}/{} fns reachable, \
                     {} justified panic sites on reachable paths, {} cold",
                    r.entries,
                    r.reachable_fns,
                    r.total_fns,
                    r.reachable_allowed_panics,
                    r.cold_allowed_panics
                );
                for (path, line) in &report.cold_sites {
                    println!("  cold allow: {path}:{line}");
                }
            }
        }
    }

    let mut over_budget = false;
    for (rule, limit) in &args.max_warn {
        let count = report
            .violations
            .iter()
            .filter(|v| v.severity == Severity::Warn && v.rule == *rule)
            .count();
        if count > *limit {
            eprintln!("nfv-lint: {rule} warn count {count} exceeds --max-warn budget {limit}");
            over_budget = true;
        }
    }

    for (rule, limit) in &args.max_allow {
        let count = report.allow_counts.get(rule).copied().unwrap_or(0);
        if count > *limit {
            eprintln!(
                "nfv-lint: {rule} allow count {count} exceeds --max-allow budget {limit}; \
                 remove an escape or raise the ratchet deliberately"
            );
            over_budget = true;
        }
    }

    if denied > 0 || over_budget {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn relative_display(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}
