//! The repo-specific ruleset, evaluated over the lexed token stream.
//!
//! | Rule     | What it enforces                                              |
//! |----------|---------------------------------------------------------------|
//! | `D1`     | no `HashMap`/`HashSet` in result-affecting crates             |
//! | `D2`     | no wall-clock / ambient-entropy / env reads in planning code  |
//! | `P1`     | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in       |
//! |          | library crates' non-test code                                 |
//! | `P1-idx` | no slice-index expressions in the same scope (warn-level)     |
//! | `U1`     | `unsafe` needs a `// SAFETY:` comment; library crate roots    |
//! |          | must `#![forbid(unsafe_code)]`                                |
//! | `O1`     | `#[allow(...)]` needs a trailing reason comment               |
//! | `A1`     | `lint:allow` escapes themselves must carry a reason           |
//! | `T1`     | capacity/residual comparisons must reference a named          |
//! |          | `sdn::cost` tolerance constant (no raw epsilons)              |
//!
//! The cross-file families (`P2` panic reachability, `C1`/`C2`
//! concurrency, `TL1` dead telemetry) live in [`crate::semantic`]; they
//! share this module's escape machinery.
//!
//! Escapes: `// lint:allow(RULE): reason` suppresses `RULE` on the same
//! line and the line directly below; `// lint:allow-file(RULE): reason`
//! suppresses `RULE` for the whole file. Reasons are mandatory (`A1`).

use crate::lexer::{lex, Comment, Tok, Token};
use crate::{Config, Severity};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`D1`, `P1`, …).
    pub rule: String,
    /// Effective severity under the active [`Config`].
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates whose iteration order reaches planner output: rule `D1` bans
/// unordered containers here.
pub const D1_CRATES: &[&str] = &[
    "netgraph",
    "steiner",
    "core",
    "online",
    "engine",
    "telemetry",
];
/// Crates where ambient nondeterminism (`D2`) is banned; `sim`/`bench`
/// and the linter itself may read clocks and the environment.
pub const D2_CRATES: &[&str] = &[
    "netgraph",
    "steiner",
    "sdn",
    "core",
    "online",
    "engine",
    "topology",
    "workload",
    "telemetry",
];
/// Library crates whose non-test code must be panic-free (`P1`).
pub const P1_CRATES: &[&str] = &[
    "netgraph",
    "steiner",
    "sdn",
    "core",
    "online",
    "engine",
    "telemetry",
];
/// Crates whose capacity/residual/bandwidth comparisons must go through
/// the named `sdn::cost` tolerance constants (`T1`). `netgraph`/`steiner`
/// stay out: their float comparisons are pure graph-weight orderings whose
/// exactness the pruned==unpruned equivalences depend on.
pub const T1_CRATES: &[&str] = &["sdn", "core", "online", "engine"];
/// The one file exempt from `T1`: where the constants themselves live.
pub const T1_EXEMPT_FILE: &str = "crates/sdn/src/cost.rs";
/// Identifier stems marking a comparison as touching ledger quantities.
const T1_STEMS: &[&str] = &["residual", "bandwidth", "capacity", "usable", "demand"];
/// Identifiers that satisfy `T1` when they appear in the same statement:
/// the named tolerance constants of `sdn::cost` plus the shared ledger
/// predicate that encapsulates them.
const T1_GUARDS: &[&str] = &[
    "CAPACITY_EPS",
    "RELEASE_EPS",
    "COST_TIEBREAK_REL",
    "COST_FLOOR",
    "VALIDATE_REL_TOL",
    "PRUNE_GUARD_REL",
    "PRUNE_GUARD_ABS",
    "can_allocate",
];
/// Float literal values that duplicate a named tolerance constant: writing
/// them out is a `T1` violation anywhere in a comparison, whether or not a
/// ledger identifier is nearby (a raw `1e-9` slack *is* the regression
/// PR 5 unified away).
const T1_MAGIC: &[f64] = &[1e-9, 1e-6, 1e-12];
/// Identifiers hinting a statement compares integers (cache sizes, counts)
/// rather than `f64` ledger quantities; such statements are skipped.
const T1_INT_HINTS: &[&str] = &[
    "len",
    "count",
    "idx",
    "index",
    "usize",
    "bits",
    "capacity_hint",
];

/// How a file is classified before rules run.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate directory name (`netgraph`, `core`, …), `compat` for the
    /// vendored stubs, or the top-level dir (`tests`, `examples`).
    pub crate_dir: String,
    /// Test/bench/bin/example code: exempt from `D1`/`D2`/`P1`.
    pub is_test_like: bool,
    /// A `src/lib.rs` crate root (gets the `forbid(unsafe_code)` check).
    pub is_lib_root: bool,
}

impl FileInfo {
    /// Classifies a workspace-relative path.
    #[must_use]
    pub fn classify(rel: &str) -> FileInfo {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_dir = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            ["compat", ..] => "compat".to_string(),
            [first, ..] => (*first).to_string(),
            [] => String::new(),
        };
        let is_test_like = parts.iter().any(|p| {
            matches!(
                *p,
                "tests" | "benches" | "bin" | "examples" | "fixtures" | "build.rs"
            )
        });
        let is_lib_root = rel.ends_with("src/lib.rs");
        FileInfo {
            rel: rel.to_string(),
            crate_dir,
            is_test_like,
            is_lib_root,
        }
    }
}

/// A parsed `lint:allow` escape.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) rules: Vec<String>,
    /// Lines the escape covers; `None` means the whole file.
    pub(crate) lines: Option<(u32, u32)>,
}

/// Lints one file's source text, returning violations in line order.
#[must_use]
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let info = FileInfo::classify(rel);
    let lexed = lex(src);
    let tokens = &lexed.tokens;

    let mut out: Vec<Violation> = Vec::new();
    let (allows, mut malformed) = parse_allows(&lexed.comments);
    for v in &mut malformed {
        v.path = info.rel.clone();
    }
    out.append(&mut malformed);

    let test_ranges = test_item_ranges(tokens);
    let dbg_ranges = debug_assert_ranges(tokens);
    let attr_ranges = attribute_ranges(tokens);
    let in_any = |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);

    let planning =
        |crates: &[&str]| crates.contains(&info.crate_dir.as_str()) && !info.is_test_like;

    for (i, t) in tokens.iter().enumerate() {
        let line = t.line;
        match &t.tok {
            // ---- D1: unordered containers in result-affecting crates.
            Tok::Ident(id)
                if (id == "HashMap" || id == "HashSet")
                    && planning(D1_CRATES)
                    && !in_any(&test_ranges, i) =>
            {
                out.push(Violation {
                    rule: "D1".into(),
                    severity: Severity::Deny,
                    path: info.rel.clone(),
                    line,
                    message: format!(
                        "{id} has nondeterministic iteration order; use BTreeMap/BTreeSet, an \
                         indexed structure, or justify with lint:allow(D1)"
                    ),
                });
            }
            // ---- D2: ambient nondeterminism in planning code.
            Tok::Ident(id)
                if id == "thread_rng" && planning(D2_CRATES) && !in_any(&test_ranges, i) =>
            {
                out.push(d2(&info, line, "thread_rng() draws ambient entropy"));
            }
            Tok::Ident(id)
                if (id == "SystemTime" || id == "Instant")
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::PathSep))
                    && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "now")
                    && planning(D2_CRATES)
                    && !in_any(&test_ranges, i) =>
            {
                out.push(d2(
                    &info,
                    line,
                    &format!("{id}::now() reads the wall clock"),
                ));
            }
            Tok::Ident(id)
                if id == "std"
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::PathSep))
                    && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "env")
                    && planning(D2_CRATES)
                    && !in_any(&test_ranges, i) =>
            {
                out.push(d2(
                    &info,
                    line,
                    "std::env makes behaviour depend on the environment",
                ));
            }
            // ---- P1: panic sites in library crates.
            Tok::Ident(id) if id == "unwrap" || id == "expect" => {
                let method_call = i > 0
                    && tokens[i - 1].tok == Tok::Punct('.')
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                if method_call
                    && planning(P1_CRATES)
                    && !in_any(&test_ranges, i)
                    && !in_any(&dbg_ranges, i)
                {
                    out.push(Violation {
                        rule: "P1".into(),
                        severity: Severity::Deny,
                        path: info.rel.clone(),
                        line,
                        message: format!(
                            ".{id}() panics on the failure path; return SdnError (or justify the \
                             invariant with lint:allow(P1))"
                        ),
                    });
                }
            }
            Tok::Ident(id)
                if matches!(
                    id.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                    && planning(P1_CRATES)
                    && !in_any(&test_ranges, i)
                    && !in_any(&dbg_ranges, i) =>
            {
                out.push(Violation {
                    rule: "P1".into(),
                    severity: Severity::Deny,
                    path: info.rel.clone(),
                    line,
                    message: format!(
                        "{id}! aborts a user-reachable path; return SdnError (or justify the \
                         invariant with lint:allow(P1))"
                    ),
                });
            }
            // ---- P1-idx: slice-index expressions (heuristic, warn-level).
            Tok::Punct('[')
                if i > 0
                    && matches!(
                        tokens[i - 1].tok,
                        Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?')
                    )
                    && planning(P1_CRATES)
                    && !in_any(&test_ranges, i)
                    && !in_any(&dbg_ranges, i)
                    && !in_any(&attr_ranges, i) =>
            {
                out.push(Violation {
                    rule: "P1-idx".into(),
                    severity: Severity::Deny, // remapped by config below
                    path: info.rel.clone(),
                    line,
                    message: "slice-index expression can panic; prefer .get() on untrusted indices"
                        .into(),
                });
            }
            // ---- U1: unsafe blocks need SAFETY comments.
            Tok::Ident(id) if id == "unsafe" && !in_any(&test_ranges, i) => {
                let documented = lexed.comments.iter().any(|c| {
                    c.text.contains("SAFETY:")
                        && (c.line == line || c.end_line == line || c.end_line + 1 == line)
                });
                if !documented {
                    out.push(Violation {
                        rule: "U1".into(),
                        severity: Severity::Deny,
                        path: info.rel.clone(),
                        line,
                        message: "unsafe without an immediately preceding // SAFETY: comment"
                            .into(),
                    });
                }
            }
            // ---- O1: #[allow(...)] needs a reason comment.
            Tok::Punct('#') => {
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    j += 1;
                }
                if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('[')))
                    && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "allow")
                {
                    // Doc comments (`///`, `//!`, `/**`) don't count: every
                    // documented item would satisfy O1 for free otherwise.
                    let has_reason = lexed.comments.iter().any(|c| {
                        !c.text.trim().is_empty()
                            && !is_doc_comment(&c.text)
                            && ((c.line == line && !c.own_line)
                                || (c.own_line && c.end_line + 1 == line))
                    });
                    if !has_reason {
                        out.push(Violation {
                            rule: "O1".into(),
                            severity: Severity::Deny,
                            path: info.rel.clone(),
                            line,
                            message: "#[allow(...)] without a reason comment on the same line or \
                                      the line above"
                                .into(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // ---- T1: tolerance-guarded capacity comparisons (statement level).
    if T1_CRATES.contains(&info.crate_dir.as_str())
        && !info.is_test_like
        && info.rel != T1_EXEMPT_FILE
    {
        t1_tolerance(
            &info,
            tokens,
            &test_ranges,
            &dbg_ranges,
            &attr_ranges,
            &mut out,
        );
    }

    // ---- U1 (crate roots): library crates must forbid unsafe code.
    if info.is_lib_root && !has_forbid_unsafe(tokens) {
        out.push(Violation {
            rule: "U1".into(),
            severity: Severity::Deny,
            path: info.rel.clone(),
            line: 1,
            message: "crate root missing #![forbid(unsafe_code)]".into(),
        });
    }

    // Apply escapes, then config severities (dropping Off, remapping Warn).
    out.retain(|v| !suppressed(&allows, &v.rule, v.line));
    out.retain_mut(|v| match cfg.severity(&v.rule) {
        None => false,
        Some(s) => {
            v.severity = s;
            true
        }
    });
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// The `T1` statement pass: within each `;`/`{`/`}`-delimited segment, a
/// raw comparison operator in ledger context (an identifier with a
/// residual/bandwidth/capacity/usable/demand stem, or a magic tolerance
/// literal) must be accompanied by one of the named `sdn::cost` constants
/// or the `can_allocate` predicate.
///
/// Known approximations (documented in DESIGN.md §16): generic argument
/// lists opened by an uppercase-initial identifier are skipped wholesale,
/// comparisons against a literal `0`/`0.0` are treated as sign checks and
/// exempted, and statements mentioning `len`/`count`/`idx`-style
/// identifiers are assumed integral and skipped.
fn t1_tolerance(
    info: &FileInfo,
    tokens: &[Token],
    test_ranges: &[(usize, usize)],
    dbg_ranges: &[(usize, usize)],
    attr_ranges: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let in_any = |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);
    let mut seg_start = 0usize;
    let mut i = 0;
    while i <= tokens.len() {
        let boundary = i == tokens.len()
            || matches!(
                tokens[i].tok,
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
            );
        if !boundary {
            i += 1;
            continue;
        }
        let seg = seg_start..i;
        seg_start = i + 1;
        i += 1;
        if seg.is_empty() {
            continue;
        }
        if let Some(v) = t1_segment(info, tokens, seg.start, seg.end) {
            // The whole segment is exempt when its first token sits in
            // test/debug_assert/attribute territory.
            if !in_any(test_ranges, seg.start)
                && !in_any(dbg_ranges, seg.start)
                && !in_any(attr_ranges, seg.start)
            {
                out.push(v);
            }
        }
    }
}

/// Evaluates one statement segment for `T1`; returns the violation to
/// report, if any.
fn t1_segment(info: &FileInfo, tokens: &[Token], start: usize, end: usize) -> Option<Violation> {
    let mut has_money = false;
    let mut has_guard = false;
    let mut has_int_hint = false;
    let mut has_magic = false;
    for t in &tokens[start..end] {
        match &t.tok {
            Tok::Ident(id) => {
                if T1_GUARDS.contains(&id.as_str()) {
                    has_guard = true;
                }
                let lower = id.to_ascii_lowercase();
                if T1_STEMS.iter().any(|s| lower.contains(s)) {
                    has_money = true;
                }
                if T1_INT_HINTS
                    .iter()
                    .any(|h| lower == *h || lower.ends_with(&format!("_{h}")))
                {
                    has_int_hint = true;
                }
            }
            t @ Tok::Num(_) => {
                if let Some(v) = t.num_value() {
                    if T1_MAGIC.contains(&v) {
                        has_magic = true;
                    }
                }
            }
            _ => {}
        }
    }
    if has_guard || has_int_hint || !(has_money || has_magic) {
        return None;
    }
    let cmp_line = t1_first_comparison(tokens, start, end)?;
    Some(Violation {
        rule: "T1".into(),
        severity: Severity::Deny,
        path: info.rel.clone(),
        line: cmp_line,
        message: if has_magic {
            "raw tolerance literal in a comparison; use the named sdn::cost constants \
             (CAPACITY_EPS, RELEASE_EPS, …) or justify with lint:allow(T1)"
                .into()
        } else {
            "raw float comparison on a capacity/residual quantity; compare through the named \
             sdn::cost tolerance constants or justify with lint:allow(T1)"
                .into()
        },
    })
}

/// Finds the first genuine comparison operator in `[start, end)`, skipping
/// shifts, arrows, turbofish, and generic argument groups opened by an
/// uppercase-initial identifier. Comparisons whose immediate operand is a
/// literal zero are treated as sign checks and skipped.
fn t1_first_comparison(tokens: &[Token], start: usize, end: usize) -> Option<u32> {
    let is_zero = |idx: usize| -> bool {
        tokens
            .get(idx)
            .and_then(|t| t.tok.num_value())
            .is_some_and(|v| v == 0.0)
    };
    let mut k = start;
    while k < end {
        match &tokens[k].tok {
            // `Vec<...>` generic arguments and `sum::<f64>` turbofish:
            // skip the balanced group so the closing `>` is consumed too.
            Tok::Punct('<')
                if k > start
                    && (matches!(tokens[k - 1].tok, Tok::PathSep)
                        || matches!(&tokens[k - 1].tok, Tok::Ident(id)
                            if id.chars().next().is_some_and(char::is_uppercase))) =>
            {
                let mut depth = 0usize;
                while k < end {
                    match &tokens[k].tok {
                        Tok::Punct('<') => depth += 1,
                        Tok::Punct('>') if !matches!(tokens[k - 1].tok, Tok::Punct('-')) => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            Tok::Punct(c @ ('<' | '>')) => {
                let prev = k.checked_sub(1).map(|p| &tokens[p].tok);
                let next = tokens.get(k + 1).map(|t| &t.tok);
                let shift = prev == Some(&Tok::Punct(*c)) || next == Some(&Tok::Punct(*c));
                let arrow =
                    *c == '>' && matches!(prev, Some(Tok::Punct('-')) | Some(Tok::Punct('=')));
                let turbofish = matches!(prev, Some(Tok::PathSep));
                if !shift && !arrow && !turbofish {
                    let two = next == Some(&Tok::Punct('='));
                    let rhs = if two { k + 2 } else { k + 1 };
                    let lhs = k.wrapping_sub(1);
                    if !is_zero(rhs) && !is_zero(lhs) {
                        return Some(tokens[k].line);
                    }
                }
            }
            Tok::Punct(c @ ('=' | '!')) => {
                // `==` / `!=`; plain `=` assignment and `!` negation skip.
                let prev = k.checked_sub(1).map(|p| &tokens[p].tok);
                let next = tokens.get(k + 1).map(|t| &t.tok);
                let eq = next == Some(&Tok::Punct('='))
                    && prev != Some(&Tok::Punct('='))
                    && (*c == '!' || !matches!(prev, Some(Tok::Punct('<' | '>' | '=' | '!'))));
                if eq {
                    let rhs = k + 2;
                    let lhs = k.wrapping_sub(1);
                    if !is_zero(rhs) && !is_zero(lhs) {
                        return Some(tokens[k].line);
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

fn d2(info: &FileInfo, line: u32, what: &str) -> Violation {
    Violation {
        rule: "D2".into(),
        severity: Severity::Deny,
        path: info.rel.clone(),
        line,
        message: format!(
            "{what}; planning code must be a pure function of its inputs (lint:allow(D2) to \
             justify)"
        ),
    }
}

/// `true` for `///`, `//!`, and `/**` comments (their text starts with
/// the extra marker character after the lexer strips `//`/`/*`).
pub(crate) fn is_doc_comment(text: &str) -> bool {
    text.starts_with('/') || text.starts_with('!') || text.starts_with('*')
}

pub(crate) fn suppressed(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows.iter().any(|a| {
        a.rules.iter().any(|r| r == rule)
            && match a.lines {
                None => true,
                Some((lo, hi)) => line >= lo && line <= hi,
            }
    })
}

/// Parses `lint:allow` / `lint:allow-file` escapes out of the comments;
/// malformed escapes (no rule list, empty reason) become `A1` violations.
///
/// A per-site escape covers its own comment run (consecutive own-line
/// comments form one run, so a justification may wrap) plus the first
/// code line after it; a trailing escape covers its own line.
pub(crate) fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    // End line of the comment run each comment belongs to.
    let mut run_end: Vec<u32> = comments.iter().map(|c| c.end_line).collect();
    for i in (0..comments.len().saturating_sub(1)).rev() {
        if comments[i].own_line
            && comments[i + 1].own_line
            && comments[i + 1].line == comments[i].end_line + 1
        {
            run_end[i] = run_end[i + 1];
        }
    }
    for (ci, c) in comments.iter().enumerate() {
        // Doc comments never carry escapes: rustdoc prose legitimately
        // *mentions* the marker syntax (this crate's own docs do).
        if is_doc_comment(&c.text) {
            continue;
        }
        for (marker, file_wide) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let Some(start) = c.text.find(marker) else {
                continue;
            };
            let rest = &c.text[start + marker.len()..];
            let parsed = rest.find(')').and_then(|close| {
                let rules: Vec<String> = rest[..close]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let after = rest[close + 1..].trim_start();
                let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
                if rules.is_empty() || reason.is_empty() {
                    None
                } else {
                    Some(rules)
                }
            });
            match parsed {
                Some(rules) => allows.push(Allow {
                    rules,
                    lines: if file_wide {
                        None
                    } else if c.own_line {
                        Some((c.line, run_end[ci] + 1))
                    } else {
                        Some((c.line, c.end_line))
                    },
                }),
                None => bad.push(Violation {
                    rule: "A1".into(),
                    severity: Severity::Deny,
                    path: String::new(), // filled in by lint_source
                    line: c.line,
                    message: format!("malformed {marker}...) escape: need `{marker}RULE): reason`"),
                }),
            }
            break; // allow-file match subsumes the allow( substring
        }
    }
    (allows, bad)
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    let mut saw_forbid = false;
    for t in tokens {
        match &t.tok {
            Tok::Ident(id) if id == "forbid" || id == "deny" => saw_forbid = true,
            Tok::Ident(id) if id == "unsafe_code" && saw_forbid => return true,
            _ => {}
        }
    }
    false
}

/// Token ranges of items guarded by a test-ish attribute: `#[test]`,
/// `#[cfg(test)] mod/fn/...`. An attribute counts as test-ish when it
/// mentions the `test` identifier and does not mention `not` (so
/// `#[cfg(not(test))]` code is still linted).
pub(crate) fn test_item_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, testish)) = parse_attribute(tokens, i) {
            if testish {
                // Skip any further attributes, then the guarded item.
                let mut j = attr_end;
                while let Some((next_end, _)) = parse_attribute(tokens, j) {
                    j = next_end;
                }
                let end = item_end(tokens, j);
                ranges.push((i, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    ranges
}

/// If an attribute starts at `i`, returns `(end_index, is_testish)`.
fn parse_attribute(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('#'))) {
        return None;
    }
    let mut j = i + 1;
    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
        j += 1;
    }
    if !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return None;
    }
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, has_test && !has_not));
                }
            }
            Tok::Ident(id) if id == "test" => has_test = true,
            Tok::Ident(id) if id == "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// End (exclusive) of the item starting at `i`: the matching `}` of its
/// first brace block, or the first top-level `;`.
pub(crate) fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token ranges of `debug_assert*!(...)` invocations (their interiors are
/// exempt from `P1`: they compile out of release builds).
pub(crate) fn debug_assert_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_dbg = matches!(&tokens[i].tok, Tok::Ident(id) if id.starts_with("debug_assert"))
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
        if is_dbg {
            let end = macro_end(tokens, i + 2);
            ranges.push((i, end));
            i = end;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Token ranges of attributes `#[...]` / `#![...]` (exempt from `P1-idx`).
fn attribute_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((end, _)) = parse_attribute(tokens, i) {
            ranges.push((i, end));
            i = end;
        } else {
            i += 1;
        }
    }
    ranges
}

/// End (exclusive) of a macro argument list starting at its opening
/// delimiter index.
fn macro_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
