//! `nfv-lint` — the workspace's in-tree determinism & panic-freedom
//! linter.
//!
//! Every reproducibility guarantee the workspace ships (byte-identical
//! parallel batch commits, pruned==unpruned `Appro_Multi` equivalence,
//! chaos replays with identical counts) rests on source-level invariants
//! the compiler does not check: no unordered iteration in result-affecting
//! code, no ambient entropy or wall-clock reads in planners, no panics on
//! user-reachable paths. This crate enforces them with a hand-rolled
//! token scanner (no external dependencies — the build container has no
//! crates.io access) and a repo-specific ruleset; see [`rules`] for the
//! rule table and the `lint:allow` escape convention.
//!
//! Run it locally with:
//!
//! ```text
//! cargo run -p nfv-lint --release -- --workspace-root .
//! ```
//!
//! The binary exits non-zero when any deny-severity violation survives
//! the escapes, and writes a machine-readable report to
//! `results/lint.json` (`--json` to redirect).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use rules::{lint_source, FileInfo, Violation};
pub use semantic::Reachability;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Effective severity of a reported violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported and fails the run.
    Deny,
    /// Reported but never fails the run.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        })
    }
}

/// All rule identifiers the linter knows, with their default severities.
/// `P1-idx` defaults to warn: indexing into internally-constructed,
/// length-checked buffers is pervasive in the hot paths and each site is
/// bounds-guarded by construction; the rule stays visible in the report
/// and can be escalated with `--deny P1-idx`.
pub const DEFAULT_SEVERITIES: &[(&str, Option<Severity>)] = &[
    ("D1", Some(Severity::Deny)),
    ("D2", Some(Severity::Deny)),
    ("P1", Some(Severity::Deny)),
    ("P1-idx", Some(Severity::Warn)),
    ("P2", Some(Severity::Deny)),
    ("P2-cold", Some(Severity::Warn)),
    ("T1", Some(Severity::Deny)),
    ("C1", Some(Severity::Deny)),
    ("C2", Some(Severity::Deny)),
    ("TL1", Some(Severity::Deny)),
    ("U1", Some(Severity::Deny)),
    ("O1", Some(Severity::Deny)),
    ("A1", Some(Severity::Deny)),
];

/// Per-rule severity configuration (`None` disables a rule).
#[derive(Debug, Clone)]
pub struct Config {
    severities: BTreeMap<String, Option<Severity>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            severities: DEFAULT_SEVERITIES
                .iter()
                .map(|&(r, s)| (r.to_string(), s))
                .collect(),
        }
    }
}

impl Config {
    /// The severity a rule runs at, or `None` when disabled/unknown.
    #[must_use]
    pub fn severity(&self, rule: &str) -> Option<Severity> {
        self.severities.get(rule).copied().flatten()
    }

    /// Returns `true` if `rule` is one the linter knows.
    #[must_use]
    pub fn knows(&self, rule: &str) -> bool {
        self.severities.contains_key(rule)
    }

    /// Overrides one rule's severity (`None` turns it off).
    pub fn set(&mut self, rule: &str, severity: Option<Severity>) {
        self.severities.insert(rule.to_string(), severity);
    }
}

/// Outcome of linting a whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Every violation, ordered by path then line.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Workspace-wide `lint:allow` escape counts per rule — the
    /// `--max-allow` ratchet input.
    pub allow_counts: BTreeMap<String, usize>,
    /// P2 call-graph reachability summary (`None` when no `lint:entry`
    /// roots exist, e.g. in fixture workspaces without annotations).
    pub reachability: Option<Reachability>,
    /// Cold justified panic sites (`path`, `line`) for `--cold-report`.
    pub cold_sites: Vec<(String, u32)>,
}

impl Report {
    /// Number of deny-severity violations (the exit-code driver).
    #[must_use]
    pub fn denied(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
            .count()
    }

    /// Per-rule violation counts.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Renders the machine-readable JSON report (schema v2: adds
    /// `allow_counts` and `reachability` over v1).
    #[must_use]
    pub fn to_json(&self) -> String {
        let map_obj = |m: &BTreeMap<String, usize>| -> String {
            let mut s = String::from("{");
            let mut first = true;
            for (k, n) in m {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\n    \"{}\": {n}", json_escape(k)));
            }
            s.push_str(if m.is_empty() { "}" } else { "\n  }" });
            s
        };
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"denied\": {},\n", self.denied()));
        out.push_str(&format!("  \"counts\": {},\n", map_obj(&self.counts())));
        out.push_str(&format!(
            "  \"allow_counts\": {},\n",
            map_obj(&self.allow_counts)
        ));
        match &self.reachability {
            None => out.push_str("  \"reachability\": null,\n"),
            Some(r) => out.push_str(&format!(
                "  \"reachability\": {{\"entries\": {}, \"total_fns\": {}, \
                 \"reachable_fns\": {}, \"reachable_allowed_panics\": {}, \
                 \"cold_allowed_panics\": {}}},\n",
                r.entries,
                r.total_fns,
                r.reachable_fns,
                r.reachable_allowed_panics,
                r.cold_allowed_panics
            )),
        }
        out.push_str("  \"violations\": [");
        let mut first = true;
        for v in &self.violations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&v.rule),
                v.severity,
                json_escape(&v.path),
                v.line,
                json_escape(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }
}

/// The schema-v2 report fields a consumer (CI trend script, round-trip
/// test) reads back out of `results/lint.json`.
#[derive(Debug, PartialEq, Eq)]
pub struct ReportSummary {
    /// Schema version (`2` for reports this crate writes).
    pub version: u64,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Deny-severity violation count.
    pub denied: usize,
    /// Per-rule violation counts.
    pub counts: BTreeMap<String, usize>,
    /// Per-rule `lint:allow` escape counts.
    pub allow_counts: BTreeMap<String, usize>,
    /// P2 reachability summary, when the workspace had entry roots.
    pub reachability: Option<Reachability>,
}

impl ReportSummary {
    /// Parses the summary fields back out of a schema-v2 report. This is
    /// a minimal hand-rolled reader (the container has no serde); it
    /// understands exactly the shapes `Report::to_json` emits.
    #[must_use]
    pub fn from_json(src: &str) -> Option<ReportSummary> {
        let int = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\":");
            let at = src.find(&pat)? + pat.len();
            let rest = src[at..].trim_start();
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let obj = |key: &str| -> Option<BTreeMap<String, usize>> {
            let pat = format!("\"{key}\": {{");
            let at = src.find(&pat)? + pat.len();
            let body = &src[at..src[at..].find('}')? + at];
            let mut m = BTreeMap::new();
            for pair in body.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once(':')?;
                let k = k.trim().trim_matches('"');
                m.insert(k.to_string(), v.trim().parse().ok()?);
            }
            Some(m)
        };
        let reachability = if src.contains("\"reachability\": null") {
            None
        } else {
            Some(Reachability {
                entries: int("entries")? as usize,
                total_fns: int("total_fns")? as usize,
                reachable_fns: int("reachable_fns")? as usize,
                reachable_allowed_panics: int("reachable_allowed_panics")? as usize,
                cold_allowed_panics: int("cold_allowed_panics")? as usize,
            })
        };
        Some(ReportSummary {
            version: int("version")?,
            files_scanned: int("files_scanned")? as usize,
            denied: int("denied")? as usize,
            counts: obj("counts")?,
            allow_counts: obj("allow_counts")?,
            reachability,
        })
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "compat", "tests", "examples"];
/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Lints every `.rs` file under the workspace `root`, in path order.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(path)?));
    }

    let mut violations = Vec::new();
    for (rel, src) in &sources {
        violations.extend(lint_source(rel, src, cfg));
    }
    let sem = semantic::analyze(&sources, cfg);
    violations.extend(sem.violations);
    violations.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(Report {
        violations,
        files_scanned: files.len(),
        allow_counts: sem.allow_counts,
        reachability: sem.reachability,
        cold_sites: sem.cold_sites,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_knows_all_rules() {
        let cfg = Config::default();
        for rule in [
            "D1", "D2", "P1", "P1-idx", "P2", "P2-cold", "T1", "C1", "C2", "TL1", "U1", "O1", "A1",
        ] {
            assert!(cfg.knows(rule), "missing {rule}");
        }
        assert_eq!(cfg.severity("P1-idx"), Some(Severity::Warn));
        assert_eq!(cfg.severity("P2-cold"), Some(Severity::Warn));
        assert_eq!(cfg.severity("P1"), Some(Severity::Deny));
        assert_eq!(cfg.severity("T1"), Some(Severity::Deny));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let report = Report {
            violations: vec![Violation {
                rule: "P1".into(),
                severity: Severity::Deny,
                path: "crates/x/src/a.rs".into(),
                line: 3,
                message: "a \"quoted\" message".into(),
            }],
            files_scanned: 1,
            allow_counts: BTreeMap::new(),
            reachability: None,
            cold_sites: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"P1\": 1"));
        assert!(json.contains("\"version\": 2"));
        assert_eq!(report.denied(), 1);
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let report = Report {
            violations: vec![],
            files_scanned: 0,
            allow_counts: BTreeMap::new(),
            reachability: None,
            cold_sites: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"reachability\": null"));
        assert_eq!(report.denied(), 0);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let report = Report {
            violations: vec![Violation {
                rule: "T1".into(),
                severity: Severity::Deny,
                path: "crates/x/src/a.rs".into(),
                line: 9,
                message: "raw comparison".into(),
            }],
            files_scanned: 7,
            allow_counts: [("P1".to_string(), 120), ("D1".to_string(), 3)]
                .into_iter()
                .collect(),
            reachability: Some(Reachability {
                entries: 8,
                total_fns: 400,
                reachable_fns: 250,
                reachable_allowed_panics: 90,
                cold_allowed_panics: 30,
            }),
            cold_sites: vec![],
        };
        let parsed = ReportSummary::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed.version, 2);
        assert_eq!(parsed.files_scanned, 7);
        assert_eq!(parsed.denied, 1);
        assert_eq!(parsed.counts.get("T1"), Some(&1));
        assert_eq!(parsed.allow_counts.get("P1"), Some(&120));
        assert_eq!(parsed.reachability, report.reachability);
    }
}
