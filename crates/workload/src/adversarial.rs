//! Adversarial request-sequence generators for the online-algorithm
//! arena.
//!
//! The Poisson/open-loop shapes in [`arrivals`](crate::PoissonWorkload)
//! are *friendly*: stationary rates, independent requests, uniform
//! destinations. Competitive analysis is motivated by exactly the
//! opposite — sequences crafted to make an online policy regret its
//! early admissions. This module provides four such regimes, all
//! deterministic given an RNG seed:
//!
//! * [`FlashCrowdWorkload`] — a stationary background punctured by a
//!   burst window at a multiplied arrival rate whose requests pile onto
//!   a small *hot* destination pool (a viral event).
//! * [`DiurnalWorkload`] — a sinusoidal arrival rate (day/night cycle)
//!   realized by thinning a peak-rate Poisson process.
//! * [`HeavyTailWorkload`] — Pareto-distributed group sizes: most
//!   requests are unicast-ish, a heavy tail spans most of the network.
//! * [`CapacityStarvedWorkload`] — fat bandwidth demands, long chains,
//!   wide groups, arrivals much faster than departures: admission under
//!   permanent scarcity, where threshold/price policies must say no.
//!
//! Every generator emits `(request, arrival, duration)` triples
//! ([`TimedSession`]) so the same sequence drives both the static
//! simulator (`run_online`, timing ignored) and the dynamic one
//! (`run_dynamic`).

use crate::arrivals::exponential;
use crate::{random_chain, RequestGenerator, TimedSession};
use netgraph::NodeId;
use rand::Rng;

/// Draws `count` distinct destinations from `0..n`, excluding `source`.
fn distinct_destinations<R: Rng + ?Sized>(
    n: usize,
    source: NodeId,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let want = count.clamp(1, n.saturating_sub(1));
    let mut dests = Vec::with_capacity(want);
    let mut guard = 0;
    while dests.len() < want && guard < 100 * n {
        guard += 1;
        let d = NodeId::new(rng.gen_range(0..n));
        if d != source && !dests.contains(&d) {
            dests.push(d);
        }
    }
    dests
}

/// A flash crowd: background Poisson arrivals with a burst window at a
/// multiplied rate, whose requests all target a small hot destination
/// pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowdWorkload {
    /// Background arrival rate λ (sessions per unit time).
    pub base_rate: f64,
    /// Rate multiplier inside the burst window (≥ 1).
    pub burst_multiplier: f64,
    /// Burst window start time.
    pub burst_start: f64,
    /// Burst window length.
    pub burst_len: f64,
    /// Size of the hot destination pool burst requests converge on.
    pub hot_pool: usize,
    /// Mean exponential holding time.
    pub mean_holding: f64,
}

impl FlashCrowdWorkload {
    /// Creates a flash-crowd description.
    ///
    /// # Panics
    ///
    /// Panics unless rates, times, and the pool size are positive and
    /// finite, and `burst_multiplier >= 1`.
    #[must_use]
    pub fn new(base_rate: f64, burst_multiplier: f64, burst_start: f64, burst_len: f64) -> Self {
        assert!(base_rate.is_finite() && base_rate > 0.0, "bad base rate");
        assert!(
            burst_multiplier.is_finite() && burst_multiplier >= 1.0,
            "burst multiplier must be >= 1"
        );
        assert!(
            burst_start.is_finite()
                && burst_start >= 0.0
                && burst_len.is_finite()
                && burst_len > 0.0,
            "bad burst window"
        );
        FlashCrowdWorkload {
            base_rate,
            burst_multiplier,
            burst_start,
            burst_len,
            hot_pool: 4,
            mean_holding: 20.0,
        }
    }

    /// Overrides the hot destination pool size (≥ 2; the pool must
    /// contain a destination distinct from any source).
    #[must_use]
    pub fn with_hot_pool(mut self, pool: usize) -> Self {
        assert!(pool >= 2, "hot pool needs at least two nodes");
        self.hot_pool = pool;
        self
    }

    /// Overrides the mean holding time.
    #[must_use]
    pub fn with_mean_holding(mut self, mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "bad mean holding");
        self.mean_holding = mean;
        self
    }

    /// Generates `count` sessions in arrival order. Inside the burst
    /// window arrivals accelerate by `burst_multiplier` and every
    /// request's destinations are redrawn from the first `hot_pool`
    /// nodes — the correlated pile-up that punishes policies which spent
    /// that neighborhood's capacity on the background load.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let n = gen.node_count();
        let pool = self.hot_pool.min(n);
        let burst_end = self.burst_start + self.burst_len;
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                let in_burst = t >= self.burst_start && t < burst_end;
                let rate = if in_burst {
                    self.base_rate * self.burst_multiplier
                } else {
                    self.base_rate
                };
                t += exponential(rate, rng);
                let mut req = gen.generate(rng);
                if t >= self.burst_start && t < burst_end {
                    let want = req.destination_count().min(pool.saturating_sub(1)).max(1);
                    let mut hot = Vec::with_capacity(want);
                    let mut guard = 0;
                    while hot.len() < want && guard < 100 * pool {
                        guard += 1;
                        let d = NodeId::new(rng.gen_range(0..pool));
                        if d != req.source && !hot.contains(&d) {
                            hot.push(d);
                        }
                    }
                    if !hot.is_empty() {
                        req.destinations = hot;
                    }
                }
                let duration = exponential(1.0 / self.mean_holding, rng);
                (req, t, duration)
            })
            .collect()
    }
}

/// A diurnal (day/night) arrival cycle: the instantaneous rate follows
/// `peak_rate · (trough + (1 − trough) · (1 + sin(2πt/period))/2)`,
/// realized by thinning a peak-rate Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalWorkload {
    /// Peak arrival rate.
    pub peak_rate: f64,
    /// Cycle period (time units per "day").
    pub period: f64,
    /// Trough rate as a fraction of the peak, in `[0, 1]`.
    pub trough_fraction: f64,
    /// Mean exponential holding time.
    pub mean_holding: f64,
}

impl DiurnalWorkload {
    /// Creates a diurnal-cycle description.
    ///
    /// # Panics
    ///
    /// Panics unless `peak_rate`, `period`, and `mean_holding` are
    /// positive and finite and `trough_fraction ∈ [0, 1]`.
    #[must_use]
    pub fn new(peak_rate: f64, period: f64, trough_fraction: f64, mean_holding: f64) -> Self {
        assert!(peak_rate.is_finite() && peak_rate > 0.0, "bad peak rate");
        assert!(period.is_finite() && period > 0.0, "bad period");
        assert!(
            (0.0..=1.0).contains(&trough_fraction),
            "trough fraction must be in [0, 1]"
        );
        assert!(
            mean_holding.is_finite() && mean_holding > 0.0,
            "bad mean holding"
        );
        DiurnalWorkload {
            peak_rate,
            period,
            trough_fraction,
            mean_holding,
        }
    }

    /// The instantaneous arrival rate at time `t`.
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        let phase = (1.0 + (2.0 * std::f64::consts::PI * t / self.period).sin()) / 2.0;
        self.peak_rate * (self.trough_fraction + (1.0 - self.trough_fraction) * phase)
    }

    /// Generates `count` sessions in arrival order by thinning: candidate
    /// arrivals come at the peak rate and survive with probability
    /// `rate_at(t) / peak_rate`, so load swells and recedes each period.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            t += exponential(self.peak_rate, rng);
            let keep: f64 = rng.gen_range(0.0..1.0);
            if keep * self.peak_rate <= self.rate_at(t) {
                let duration = exponential(1.0 / self.mean_holding, rng);
                out.push((gen.generate(rng), t, duration));
            }
        }
        out
    }
}

/// Heavy-tailed multicast group sizes: destination counts follow the
/// discrete Pareto `⌊1/u^(1/α)⌋` (clamped to `[1, |V| − 1]`), so most
/// requests are tiny but a persistent tail spans most of the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyTailWorkload {
    /// Pareto tail index α (> 0); smaller is heavier. α ≈ 1.1 gives
    /// infinite-variance group sizes.
    pub alpha: f64,
    /// Poisson arrival rate.
    pub arrival_rate: f64,
    /// Mean exponential holding time.
    pub mean_holding: f64,
}

impl HeavyTailWorkload {
    /// Creates a heavy-tail description.
    ///
    /// # Panics
    ///
    /// Panics unless all three parameters are positive and finite.
    #[must_use]
    pub fn new(alpha: f64, arrival_rate: f64, mean_holding: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "bad alpha");
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "bad arrival rate"
        );
        assert!(
            mean_holding.is_finite() && mean_holding > 0.0,
            "bad mean holding"
        );
        HeavyTailWorkload {
            alpha,
            arrival_rate,
            mean_holding,
        }
    }

    /// Generates `count` sessions in arrival order, with group sizes
    /// redrawn from the Pareto tail (bandwidth and chain keep `gen`'s
    /// configuration).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let n = gen.node_count();
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                t += exponential(self.arrival_rate, rng);
                let mut req = gen.generate(rng);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let size = (1.0 / u.powf(1.0 / self.alpha)).floor() as usize;
                let size = size.clamp(1, n.saturating_sub(1));
                req.destinations = distinct_destinations(n, req.source, size, rng);
                let duration = exponential(1.0 / self.mean_holding, rng);
                (req, t, duration)
            })
            .collect()
    }
}

/// Permanent scarcity: fat bandwidth demands (default 150–400 Mbps
/// against the generators' usual 50–200), long chains, wide groups, and
/// arrivals an order of magnitude faster than departures. Nothing close
/// to the whole sequence can fit, so the *choice* of what to reject is
/// the entire game — the regime where threshold and pricing policies
/// must diverge from greedy ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityStarvedWorkload {
    /// Poisson arrival rate.
    pub arrival_rate: f64,
    /// Mean exponential holding time (long relative to interarrivals).
    pub mean_holding: f64,
    /// Bandwidth demand range (Mbps), fatter than the friendly default.
    pub bandwidth: (f64, f64),
    /// Service-chain length range (long chains = big computing demand).
    pub chain_len: (usize, usize),
    /// `D_max/|V|` ratio for group sizes.
    pub dmax_ratio: f64,
}

impl CapacityStarvedWorkload {
    /// Creates a capacity-starved description with the default fat
    /// demand profile.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    #[must_use]
    pub fn new(arrival_rate: f64, mean_holding: f64) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "bad arrival rate"
        );
        assert!(
            mean_holding.is_finite() && mean_holding > 0.0,
            "bad mean holding"
        );
        CapacityStarvedWorkload {
            arrival_rate,
            mean_holding,
            bandwidth: (150.0, 400.0),
            chain_len: (3, 5),
            dmax_ratio: 0.3,
        }
    }

    /// Generates `count` sessions in arrival order. Requests draw their
    /// timing here and their identity from `gen`, with bandwidth, chain,
    /// and group size overridden to the starved profile.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let n = gen.node_count();
        let dmax = ((self.dmax_ratio * n as f64).floor() as usize).clamp(1, n.saturating_sub(1));
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                t += exponential(self.arrival_rate, rng);
                let mut req = gen.generate(rng);
                req.bandwidth = if self.bandwidth.0 >= self.bandwidth.1 {
                    self.bandwidth.0
                } else {
                    rng.gen_range(self.bandwidth.0..self.bandwidth.1)
                };
                let len = rng.gen_range(self.chain_len.0..=self.chain_len.1);
                req.chain = random_chain(len, rng);
                let size = rng.gen_range(1..=dmax);
                req.destinations = distinct_destinations(n, req.source, size, rng);
                let duration = exponential(1.0 / self.mean_holding, rng);
                (req, t, duration)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn well_formed(sessions: &[TimedSession]) {
        let mut prev = 0.0;
        for (req, arrival, duration) in sessions {
            assert!(*arrival > prev || (*arrival - prev).abs() < 1e-12);
            prev = *arrival;
            assert!(*duration > 0.0 && duration.is_finite());
            assert!(!req.destinations.is_empty());
            assert!(!req.destinations.contains(&req.source));
            let mut d = req.destinations.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), req.destination_count(), "duplicate destinations");
        }
    }

    #[test]
    fn flash_crowd_converges_on_hot_pool_during_burst() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = RequestGenerator::new(60);
        let w = FlashCrowdWorkload::new(1.0, 10.0, 20.0, 10.0).with_hot_pool(5);
        let sessions = w.generate(&mut gen, 300, &mut rng);
        well_formed(&sessions);
        let burst: Vec<_> = sessions
            .iter()
            .filter(|(_, t, _)| *t >= 20.0 && *t < 30.0)
            .collect();
        assert!(burst.len() > 50, "burst window too thin: {}", burst.len());
        for (req, _, _) in &burst {
            for d in &req.destinations {
                assert!(d.index() < 5, "burst destination outside hot pool");
            }
        }
        // Outside the burst the workload is the friendly background.
        let calm = sessions
            .iter()
            .any(|(req, t, _)| *t < 20.0 && req.destinations.iter().any(|d| d.index() >= 5));
        assert!(calm, "background traffic never left the hot pool");
    }

    #[test]
    fn diurnal_rate_cycles_between_trough_and_peak() {
        let w = DiurnalWorkload::new(8.0, 100.0, 0.25, 5.0);
        assert!((w.rate_at(25.0) - 8.0).abs() < 1e-9); // sin peak
        assert!((w.rate_at(75.0) - 2.0).abs() < 1e-9); // sin trough
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = RequestGenerator::new(60);
        let sessions = w.generate(&mut gen, 400, &mut rng);
        well_formed(&sessions);
        // Empirically, the peak half-cycle must out-arrive the trough
        // half-cycle within the first full period.
        let peak_half = sessions.iter().filter(|(_, t, _)| *t < 50.0).count();
        let trough_half = sessions
            .iter()
            .filter(|(_, t, _)| (50.0..100.0).contains(t))
            .count();
        assert!(
            peak_half > trough_half,
            "peak {peak_half} <= trough {trough_half}"
        );
    }

    #[test]
    fn heavy_tail_produces_both_tiny_and_huge_groups() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = RequestGenerator::new(100);
        let w = HeavyTailWorkload::new(1.1, 2.0, 5.0);
        let sessions = w.generate(&mut gen, 500, &mut rng);
        well_formed(&sessions);
        let sizes: Vec<usize> = sessions
            .iter()
            .map(|(r, _, _)| r.destination_count())
            .collect();
        let tiny = sizes.iter().filter(|&&s| s == 1).count();
        let huge = sizes.iter().filter(|&&s| s >= 20).count();
        assert!(tiny > 200, "tail not heavy toward 1: {tiny}");
        assert!(huge > 0, "no tail mass at >= 20 destinations");
        assert!(sizes.iter().all(|&s| s <= 99));
    }

    #[test]
    fn capacity_starved_demands_are_fat() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gen = RequestGenerator::new(50);
        let w = CapacityStarvedWorkload::new(5.0, 50.0);
        let sessions = w.generate(&mut gen, 200, &mut rng);
        well_formed(&sessions);
        for (req, _, _) in &sessions {
            assert!(req.bandwidth >= 150.0 && req.bandwidth < 400.0);
            assert!(req.chain.len() >= 3 && req.chain.len() <= 5);
            assert!(req.destination_count() <= 15); // 0.3 · 50
        }
        // Offered load far exceeds unity: arrivals outpace departures.
        assert!(w.arrival_rate * w.mean_holding > 100.0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let fc = FlashCrowdWorkload::new(1.0, 8.0, 10.0, 5.0);
        let a = fc.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(9),
        );
        let b = fc.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);

        let dw = DiurnalWorkload::new(4.0, 50.0, 0.2, 5.0);
        let a = dw.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(10),
        );
        let b = dw.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(10),
        );
        assert_eq!(a, b);

        let ht = HeavyTailWorkload::new(1.3, 2.0, 5.0);
        let a = ht.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(11),
        );
        let b = ht.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(a, b);

        let cs = CapacityStarvedWorkload::new(5.0, 50.0);
        let a = cs.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(12),
        );
        let b = cs.generate(
            &mut RequestGenerator::new(40),
            60,
            &mut StdRng::seed_from_u64(12),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "burst multiplier")]
    fn flash_crowd_rejects_shrinking_burst() {
        let _ = FlashCrowdWorkload::new(1.0, 0.5, 0.0, 1.0);
    }
}
