//! Membership churn: destinations joining and leaving *live* sessions.
//!
//! Poisson arrivals/departures model whole sessions appearing and
//! vanishing; IPTV-style multicast additionally has *viewers* tuning in
//! and out of sessions that stay up. This module generates that second
//! event stream: a Poisson process of churn events, each either a **join**
//! (a uniformly drawn switch subscribes to the multicast — the engine
//! grafts it onto the session tree) or a **leave** (an existing
//! destination, addressed by uniform index into whatever the session's
//! destination list is at that moment, unsubscribes — the engine prunes
//! it). Which live session an event lands on is the simulator's choice;
//! the generator deliberately stays session-agnostic so the same stream
//! can be replayed against different admission policies without the
//! membership workload shifting.
//!
//! Deterministic given the RNG seed, like every generator in this crate.

use netgraph::NodeId;
use rand::Rng;

/// One membership change, session-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The given switch subscribes to a live session (graft).
    Join(NodeId),
    /// The destination at this index — modulo the session's current
    /// destination count — unsubscribes (prune).
    Leave(usize),
}

/// A membership change at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Event time.
    pub time: f64,
    /// What happens.
    pub action: ChurnAction,
}

/// Parameters of a Poisson membership-churn workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipChurn {
    /// Churn event rate (events per unit time).
    pub rate: f64,
    /// Probability that an event is a join (the rest are leaves).
    pub join_fraction: f64,
}

impl MembershipChurn {
    /// Creates a churn description.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite and `join_fraction`
    /// lies in `[0, 1]`.
    #[must_use]
    pub fn new(rate: f64, join_fraction: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "bad churn rate {rate}");
        assert!(
            (0.0..=1.0).contains(&join_fraction),
            "join fraction {join_fraction} outside [0, 1]"
        );
        MembershipChurn {
            rate,
            join_fraction,
        }
    }

    /// Generates `count` churn events in increasing time order over a
    /// network of `node_count` switches. Join targets are drawn uniformly
    /// from the switches; leave indices uniformly from `0..node_count`
    /// (the simulator reduces them modulo the destination count of the
    /// session the event lands on).
    pub fn events_for<R: Rng + ?Sized>(
        &self,
        node_count: usize,
        count: usize,
        rng: &mut R,
    ) -> Vec<ChurnEvent> {
        assert!(node_count > 0, "empty network");
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                t += crate::arrivals::exponential(self.rate, rng);
                let action = if rng.gen_range(0.0..1.0) < self.join_fraction {
                    ChurnAction::Join(NodeId::new(rng.gen_range(0..node_count)))
                } else {
                    ChurnAction::Leave(rng.gen_range(0..node_count))
                };
                ChurnEvent { time: t, action }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn events_are_ordered_and_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let churn = MembershipChurn::new(2.0, 0.6);
        let events = churn.events_for(40, 200, &mut rng);
        assert_eq!(events.len(), 200);
        for pair in events.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
        let joins = events
            .iter()
            .filter(|e| matches!(e.action, ChurnAction::Join(_)))
            .count();
        // 60% joins with generous slack.
        assert!((80..=160).contains(&joins), "{joins} joins of 200");
    }

    #[test]
    fn extreme_fractions_are_pure() {
        let mut rng = StdRng::seed_from_u64(2);
        let all_joins = MembershipChurn::new(1.0, 1.0).events_for(10, 50, &mut rng);
        assert!(all_joins
            .iter()
            .all(|e| matches!(e.action, ChurnAction::Join(_))));
        let all_leaves = MembershipChurn::new(1.0, 0.0).events_for(10, 50, &mut rng);
        assert!(all_leaves
            .iter()
            .all(|e| matches!(e.action, ChurnAction::Leave(_))));
    }

    #[test]
    fn deterministic_given_seed() {
        let churn = MembershipChurn::new(3.0, 0.5);
        let a = churn.events_for(25, 100, &mut StdRng::seed_from_u64(9));
        let b = churn.events_for(25, 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "join fraction")]
    fn rejects_bad_fraction() {
        let _ = MembershipChurn::new(1.0, 1.5);
    }
}
