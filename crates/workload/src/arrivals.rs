//! Timed workloads: Poisson arrivals with exponential holding times.
//!
//! The paper's online model offers requests in a bare sequence; the
//! dynamics extension (`nfv_online::run_dynamic`) replays sessions that
//! also *depart*. This module generates the classic teletraffic workload
//! for it: arrivals as a Poisson process of rate `λ`, holding times
//! exponential with mean `1/μ`, giving an offered load of `λ/μ` Erlangs.

use crate::RequestGenerator;
use rand::Rng;
use sdn::MulticastRequest;

/// One generated session: the request plus its timing.
pub type TimedSession = (MulticastRequest, f64, f64);

/// Parameters of a Poisson session workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonWorkload {
    /// Arrival rate λ (sessions per unit time).
    pub arrival_rate: f64,
    /// Mean holding time `1/μ` (time units).
    pub mean_holding: f64,
}

impl PoissonWorkload {
    /// Creates a workload description.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    #[must_use]
    pub fn new(arrival_rate: f64, mean_holding: f64) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "bad arrival rate {arrival_rate}"
        );
        assert!(
            mean_holding.is_finite() && mean_holding > 0.0,
            "bad mean holding time {mean_holding}"
        );
        PoissonWorkload {
            arrival_rate,
            mean_holding,
        }
    }

    /// Offered load `λ/μ` in Erlangs (mean number of concurrent
    /// sessions if everything were admitted).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.mean_holding
    }

    /// Generates `count` sessions as `(request, arrival, duration)`
    /// triples in arrival order, drawing the requests from `gen`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                t += exponential(self.arrival_rate, rng);
                let duration = exponential(1.0 / self.mean_holding, rng);
                (gen.generate(rng), t, duration)
            })
            .collect()
    }
}

/// An open-loop constant-rate workload: arrivals at a fixed cadence.
///
/// Where [`PoissonWorkload`] models stochastic teletraffic, this is the
/// load-generator shape used to measure *sustained throughput*: requests
/// arrive every `1/rate` time units regardless of how fast the system
/// under test drains them (open loop — the generator never waits for
/// admission). Holding times stay exponential so departures interleave
/// with arrivals instead of expiring in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopWorkload {
    /// Arrival rate (sessions per unit time); interarrival is `1/rate`.
    pub rate: f64,
    /// Mean holding time (time units). Session durations are drawn from
    /// Exp(1/mean); `f64::INFINITY` pins every duration to `f64::MAX`
    /// (finite, so `TimedRequest` accepts it, but far past any simulated
    /// horizon) so a run never sees departures — the pure-arrival shape
    /// throughput benchmarks want.
    pub mean_holding: f64,
}

impl OpenLoopWorkload {
    /// Creates an open-loop workload description.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite and `mean_holding`
    /// is positive (`f64::INFINITY` allowed).
    #[must_use]
    pub fn new(rate: f64, mean_holding: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "bad arrival rate {rate}");
        assert!(
            mean_holding > 0.0 && !mean_holding.is_nan(),
            "bad mean holding time {mean_holding}"
        );
        OpenLoopWorkload { rate, mean_holding }
    }

    /// Generates `count` sessions as `(request, arrival, duration)`
    /// triples at the fixed cadence, drawing the requests from `gen`.
    /// Arrivals start at `1/rate` (not 0) so time 0 is request-free.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        gen: &mut RequestGenerator,
        count: usize,
        rng: &mut R,
    ) -> Vec<TimedSession> {
        let step = 1.0 / self.rate;
        (0..count)
            .map(|i| {
                let arrival = step * (i + 1) as f64;
                let duration = if self.mean_holding.is_infinite() {
                    f64::MAX
                } else {
                    exponential(1.0 / self.mean_holding, rng)
                };
                (gen.generate(rng), arrival, duration)
            })
            .collect()
    }
}

/// Draws from Exp(rate) via inverse transform.
pub(crate) fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_increasing_and_durations_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = RequestGenerator::new(50);
        let w = PoissonWorkload::new(2.0, 5.0);
        let sessions = w.generate(&mut gen, 100, &mut rng);
        assert_eq!(sessions.len(), 100);
        for pair in sessions.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
        for (_, _, d) in &sessions {
            assert!(*d > 0.0);
        }
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = RequestGenerator::new(50);
        let w = PoissonWorkload::new(4.0, 1.0);
        let sessions = w.generate(&mut gen, 4_000, &mut rng);
        let total_time = sessions.last().expect("non-empty").1;
        let rate = sessions.len() as f64 / total_time;
        assert!(
            (rate - 4.0).abs() < 0.3,
            "empirical rate {rate} far from lambda = 4"
        );
    }

    #[test]
    fn mean_holding_matches_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = RequestGenerator::new(50);
        let w = PoissonWorkload::new(1.0, 7.0);
        let sessions = w.generate(&mut gen, 4_000, &mut rng);
        let mean: f64 = sessions.iter().map(|(_, _, d)| *d).sum::<f64>() / sessions.len() as f64;
        assert!((mean - 7.0).abs() < 0.5, "empirical mean {mean} far from 7");
    }

    #[test]
    fn offered_load_is_lambda_over_mu() {
        assert_eq!(PoissonWorkload::new(3.0, 4.0).offered_load(), 12.0);
    }

    #[test]
    #[should_panic(expected = "bad arrival rate")]
    fn rejects_zero_rate() {
        let _ = PoissonWorkload::new(0.0, 1.0);
    }

    #[test]
    fn open_loop_arrivals_are_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = RequestGenerator::new(50);
        let w = OpenLoopWorkload::new(4.0, 10.0);
        let sessions = w.generate(&mut gen, 20, &mut rng);
        assert_eq!(sessions.len(), 20);
        assert_eq!(sessions[0].1, 0.25);
        for pair in sessions.windows(2) {
            assert!((pair[1].1 - pair[0].1 - 0.25).abs() < 1e-12);
        }
        for (_, _, d) in &sessions {
            assert!(*d > 0.0 && d.is_finite());
        }
    }

    #[test]
    fn open_loop_infinite_holding_never_departs() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut gen = RequestGenerator::new(50);
        let w = OpenLoopWorkload::new(2.0, f64::INFINITY);
        let sessions = w.generate(&mut gen, 10, &mut rng);
        for (_, arrival, d) in &sessions {
            assert_eq!(*d, f64::MAX);
            assert!(arrival.is_finite());
        }
    }

    #[test]
    fn open_loop_is_deterministic_given_seed() {
        let w = OpenLoopWorkload::new(8.0, 3.0);
        let a = w.generate(
            &mut RequestGenerator::new(40),
            30,
            &mut StdRng::seed_from_u64(5),
        );
        let b = w.generate(
            &mut RequestGenerator::new(40),
            30,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad arrival rate")]
    fn open_loop_rejects_infinite_rate() {
        let _ = OpenLoopWorkload::new(f64::INFINITY, 1.0);
    }
}
