//! # workload
//!
//! Random NFV-enabled multicast request generation reproducing the
//! workload model of the paper's evaluation (§VI-A):
//!
//! * source and destinations drawn uniformly from the switches,
//! * the ratio `D_max/|V|` of the maximum destination count to the network
//!   size drawn from `[0.05, 0.2]` (or pinned per experiment),
//! * bandwidth demand `b_k` drawn from `[50, 200]` Mbps,
//! * service chains assembled from the five NFV types.
//!
//! Generators are deterministic given an RNG seed, which is how every
//! experiment in `sim` pins its workload.
//!
//! ## Example
//!
//! ```
//! use workload::RequestGenerator;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut gen = RequestGenerator::new(100);
//! let r = gen.generate(&mut rng);
//! assert!(r.bandwidth >= 50.0 && r.bandwidth < 200.0);
//! assert!(!r.destinations.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adversarial;
mod arrivals;
mod churn;

pub use adversarial::{
    CapacityStarvedWorkload, DiurnalWorkload, FlashCrowdWorkload, HeavyTailWorkload,
};
pub use arrivals::{OpenLoopWorkload, PoissonWorkload, TimedSession};
pub use churn::{ChurnAction, ChurnEvent, MembershipChurn};

use netgraph::NodeId;
use rand::Rng;
use sdn::{MulticastRequest, NfvType, RequestId, ServiceChain};

/// How the per-request maximum destination count is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DmaxMode {
    /// `D_max = ratio · |V|`, fixed for every request (the per-subplot
    /// setting of Figs. 5–6).
    Fixed(f64),
    /// The ratio is redrawn uniformly from the interval per request (the
    /// paper's default setting).
    Uniform(f64, f64),
}

/// Deterministic-given-a-seed generator of NFV-enabled multicast requests.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    node_count: usize,
    dmax: DmaxMode,
    bandwidth: (f64, f64),
    chain_len: (usize, usize),
    next_id: u64,
}

impl RequestGenerator {
    /// Creates a generator with the paper's default workload parameters
    /// for a network of `node_count` switches: `D_max/|V| ∈ [0.05, 0.2]`,
    /// `b_k ∈ [50, 200]` Mbps, chains of 1–3 functions.
    ///
    /// # Panics
    ///
    /// Panics if `node_count < 2` (a multicast needs a source and at least
    /// one distinct destination).
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        assert!(node_count >= 2, "need at least two switches");
        RequestGenerator {
            node_count,
            dmax: DmaxMode::Uniform(0.05, 0.2),
            bandwidth: (50.0, 200.0),
            chain_len: (1, 3),
            next_id: 0,
        }
    }

    /// Pins `D_max/|V|` to a fixed ratio (the Figs. 5–6 sweeps).
    #[must_use]
    pub fn with_dmax_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        self.dmax = DmaxMode::Fixed(ratio);
        self
    }

    /// Draws `D_max/|V|` per request from `[lo, hi]`.
    #[must_use]
    pub fn with_dmax_ratio_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi && hi <= 1.0, "need 0 < lo <= hi <= 1");
        self.dmax = DmaxMode::Uniform(lo, hi);
        self
    }

    /// Overrides the bandwidth demand range (Mbps).
    #[must_use]
    pub fn with_bandwidth_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi, "need 0 < lo <= hi");
        self.bandwidth = (lo, hi);
        self
    }

    /// Overrides the service-chain length range.
    #[must_use]
    pub fn with_chain_len(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && lo <= hi && hi <= NfvType::ALL.len());
        self.chain_len = (lo, hi);
        self
    }

    /// The network size this generator was configured for.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Generates the next request.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MulticastRequest {
        let id = RequestId(self.next_id);
        self.next_id += 1;

        let n = self.node_count;
        let source = NodeId::new(rng.gen_range(0..n));

        let ratio = match self.dmax {
            DmaxMode::Fixed(r) => r,
            DmaxMode::Uniform(lo, hi) => {
                if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
        };
        let dmax = ((ratio * n as f64).floor() as usize).clamp(1, n - 1);
        let dest_count = rng.gen_range(1..=dmax);
        let mut dests = Vec::with_capacity(dest_count);
        let mut guard = 0;
        while dests.len() < dest_count && guard < 100 * n {
            guard += 1;
            let d = NodeId::new(rng.gen_range(0..n));
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }

        let bandwidth = if self.bandwidth.0 >= self.bandwidth.1 {
            self.bandwidth.0
        } else {
            rng.gen_range(self.bandwidth.0..self.bandwidth.1)
        };

        let len = rng.gen_range(self.chain_len.0..=self.chain_len.1);
        let chain = random_chain(len, rng);

        MulticastRequest::new(id, source, dests, bandwidth, chain)
    }

    /// Generates `count` requests.
    pub fn generate_batch<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        rng: &mut R,
    ) -> Vec<MulticastRequest> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

/// Draws a service chain of `len` distinct functions, order randomized.
///
/// # Panics
///
/// Panics if `len` exceeds the number of NFV types (5).
pub fn random_chain<R: Rng + ?Sized>(len: usize, rng: &mut R) -> ServiceChain {
    assert!(len <= NfvType::ALL.len(), "chain longer than the catalog");
    let mut pool = NfvType::ALL.to_vec();
    // Partial Fisher-Yates.
    for i in 0..len {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(len);
    ServiceChain::new(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_the_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = RequestGenerator::new(100);
        for _ in 0..200 {
            let r = gen.generate(&mut rng);
            assert!(r.bandwidth >= 50.0 && r.bandwidth < 200.0);
            assert!(r.destination_count() >= 1);
            // Dmax at ratio 0.2 of 100 nodes = 20.
            assert!(r.destination_count() <= 20);
            assert!(!r.chain.is_empty());
            assert!(r.chain.len() <= 3);
            assert!(!r.destinations.contains(&r.source));
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = RequestGenerator::new(10);
        let batch = gen.generate_batch(5, &mut rng);
        let ids: Vec<u64> = batch.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fixed_ratio_caps_destinations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = RequestGenerator::new(50).with_dmax_ratio(0.1);
        for _ in 0..100 {
            let r = gen.generate(&mut rng);
            assert!(r.destination_count() <= 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = RequestGenerator::new(60);
        let mut g2 = RequestGenerator::new(60);
        let b1 = g1.generate_batch(20, &mut StdRng::seed_from_u64(9));
        let b2 = g2.generate_batch(20, &mut StdRng::seed_from_u64(9));
        assert_eq!(b1, b2);
    }

    #[test]
    fn destinations_are_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gen = RequestGenerator::new(30).with_dmax_ratio(0.5);
        for _ in 0..50 {
            let r = gen.generate(&mut rng);
            let mut d = r.destinations.clone();
            d.dedup();
            assert_eq!(d.len(), r.destination_count());
        }
    }

    #[test]
    fn random_chain_has_distinct_functions() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in 1..=5 {
            let c = random_chain(len, &mut rng);
            assert_eq!(c.len(), len);
            let mut fs = c.functions().to_vec();
            fs.sort_unstable();
            fs.dedup();
            assert_eq!(fs.len(), len);
        }
    }

    #[test]
    fn tiny_network_still_generates() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut gen = RequestGenerator::new(2);
        let r = gen.generate(&mut rng);
        assert_eq!(r.destination_count(), 1);
        assert_ne!(r.destinations[0], r.source);
    }

    #[test]
    #[should_panic(expected = "at least two switches")]
    fn rejects_single_node_network() {
        let _ = RequestGenerator::new(1);
    }

    #[test]
    fn bandwidth_override() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = RequestGenerator::new(10).with_bandwidth_range(10.0, 10.0);
        let r = gen.generate(&mut rng);
        assert_eq!(r.bandwidth, 10.0);
    }

    #[test]
    fn chain_len_override() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut gen = RequestGenerator::new(10).with_chain_len(5, 5);
        let r = gen.generate(&mut rng);
        assert_eq!(r.chain.len(), 5);
    }
}
