//! Resource cost models.
//!
//! Two models from the paper:
//!
//! * **Linear** (§III-C, used by the offline algorithms): using an amount
//!   `x` of a resource costs `x` times the resource's unit cost, regardless
//!   of load.
//! * **Exponential** (§V-A, Eq. 1–2, used by `Online_CP`): the cost of a
//!   resource grows exponentially with its utilization, so lightly loaded
//!   resources look cheap and nearly saturated ones look prohibitive:
//!
//!   ```text
//!   c_v(k) = C_v · (α^(1 − C_v(k)/C_v) − 1)        (Eq. 1)
//!   c_e(k) = B_e · (β^(1 − B_e(k)/B_e) − 1)        (Eq. 2)
//!   ```
//!
//!   with normalized weights `w_v = c_v(k)/C_v`, `w_e = c_e(k)/B_e` and the
//!   admission thresholds `σ_v = σ_e = |V| − 1`. The competitive-ratio
//!   analysis sets `α = β = 2|V|`.

use crate::Sdn;
use netgraph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Numeric tolerances
//
// Every admission / release / validation comparison in the workspace goes
// through these named constants so the planner and the ledger can never
// disagree about a boundary case. A planner feasibility check
// `residual + CAPACITY_EPS >= need` accepts exactly the loads the ledger's
// `load <= avail + CAPACITY_EPS` accepts, because both sides use the same
// epsilon in the same direction.
// ---------------------------------------------------------------------------

/// Absolute slack for capacity feasibility: a demand fits a residual when
/// `residual + CAPACITY_EPS >= demand`. Shared by planner-side feasibility
/// filters and the `Sdn` allocation ledger.
pub const CAPACITY_EPS: f64 = 1e-9;

/// Absolute slack when releasing resources back to the ledger: released
/// amounts may overshoot the recorded load by accumulated float error up to
/// this much before the release is rejected as inconsistent.
pub const RELEASE_EPS: f64 = 1e-6;

/// Relative magnitude of the deterministic cost tiebreak `Online_CP` adds
/// to its admission-graph weights (scaled by `c_max`).
pub const COST_TIEBREAK_REL: f64 = 1e-6;

/// Floor for cost normalisers (e.g. `c_max`) so divisions by a maximum cost
/// stay finite on degenerate all-zero-cost networks.
pub const COST_FLOOR: f64 = 1e-12;

/// Relative tolerance used when validating recomputed aggregate costs
/// against incrementally tracked ones (pseudo-tree validation).
pub const VALIDATE_REL_TOL: f64 = 1e-6;

/// Relative slack in strict-improvement pruning bounds: a candidate is
/// pruned only when its lower bound exceeds
/// `best * (1 + PRUNE_GUARD_REL) + PRUNE_GUARD_ABS`, so float noise on an
/// exact tie can never prune the branch the exhaustive search would keep.
pub const PRUNE_GUARD_REL: f64 = 1e-9;

/// Absolute counterpart of [`PRUNE_GUARD_REL`] (covers near-zero bounds).
pub const PRUNE_GUARD_ABS: f64 = 1e-9;

/// The load-oblivious linear cost model (pay-as-you-go unit prices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearCostModel;

impl LinearCostModel {
    /// Creates the linear model (stateless).
    #[must_use]
    pub fn new() -> Self {
        LinearCostModel
    }

    /// Cost of routing `bandwidth` Mbps over link `e`: `c_e · b_k`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of the network.
    #[must_use]
    pub fn edge_cost(&self, sdn: &Sdn, e: EdgeId, bandwidth: f64) -> f64 {
        sdn.unit_bandwidth_cost(e) * bandwidth
    }

    /// Cost of placing `demand` MHz of processing on server `v`:
    /// `c_v · C_v(SC_k)`. Returns `None` for plain switches.
    #[must_use]
    pub fn server_cost(&self, sdn: &Sdn, v: NodeId, demand: f64) -> Option<f64> {
        sdn.unit_computing_cost(v).map(|c| c * demand)
    }
}

/// The workload-aware exponential cost model of `Online_CP` (Eq. 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialCostModel {
    /// Base `α` of the computing cost exponential (`α > 1`).
    pub alpha: f64,
    /// Base `β` of the bandwidth cost exponential (`β > 1`).
    pub beta: f64,
}

impl ExponentialCostModel {
    /// Creates a model with explicit bases.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 1` and `beta > 1` (required by Eq. 1–2).
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
        assert!(beta > 1.0, "beta must exceed 1, got {beta}");
        ExponentialCostModel { alpha, beta }
    }

    /// The paper's setting for the competitive analysis:
    /// `α = β = 2|V|` (Theorem 2). Networks with fewer than two nodes fall
    /// back to `α = β = 4`.
    #[must_use]
    pub fn for_network(sdn: &Sdn) -> Self {
        let base = (2 * sdn.node_count()).max(4) as f64;
        ExponentialCostModel::new(base, base)
    }

    /// Congestion cost `c_v(k)` of server `v` (Eq. 1). Returns `None` for
    /// plain switches.
    #[must_use]
    pub fn server_cost(&self, sdn: &Sdn, v: NodeId) -> Option<f64> {
        let cap = sdn.computing_capacity(v)?;
        let util = sdn.computing_utilization(v)?;
        Some(cap * (self.alpha.powf(util) - 1.0))
    }

    /// Congestion cost `c_e(k)` of link `e` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of the network.
    #[must_use]
    pub fn edge_cost(&self, sdn: &Sdn, e: EdgeId) -> f64 {
        let cap = sdn.bandwidth_capacity(e);
        cap * (self.beta.powf(sdn.bandwidth_utilization(e)) - 1.0)
    }

    /// Normalized server weight `w_v(k) = c_v(k)/C_v = α^util − 1`.
    /// Returns `None` for plain switches.
    #[must_use]
    pub fn server_weight(&self, sdn: &Sdn, v: NodeId) -> Option<f64> {
        let util = sdn.computing_utilization(v)?;
        Some(self.alpha.powf(util) - 1.0)
    }

    /// Normalized edge weight `w_e(k) = c_e(k)/B_e = β^util − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of the network.
    #[must_use]
    pub fn edge_weight(&self, sdn: &Sdn, e: EdgeId) -> f64 {
        self.beta.powf(sdn.bandwidth_utilization(e)) - 1.0
    }

    /// The admission threshold `σ_v = σ_e = |V| − 1` (§V-B).
    #[must_use]
    pub fn threshold(sdn: &Sdn) -> f64 {
        (sdn.node_count().saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Allocation, RequestId, SdnBuilder};

    fn net() -> (Sdn, NodeId, EdgeId) {
        let mut b = SdnBuilder::new();
        let v0 = b.add_switch();
        let v1 = b.add_server(1000.0, 2.0);
        let e = b.add_link(v0, v1, 100.0, 3.0).unwrap();
        (b.build().unwrap(), v1, e)
    }

    #[test]
    fn linear_costs_scale_with_amount() {
        let (sdn, v, e) = net();
        let m = LinearCostModel::new();
        assert_eq!(m.edge_cost(&sdn, e, 10.0), 30.0);
        assert_eq!(m.server_cost(&sdn, v, 5.0), Some(10.0));
        assert_eq!(m.server_cost(&sdn, NodeId::new(0), 5.0), None);
    }

    #[test]
    fn exponential_weight_is_zero_when_idle() {
        let (sdn, v, e) = net();
        let m = ExponentialCostModel::new(4.0, 4.0);
        assert!(m.edge_weight(&sdn, e).abs() < 1e-12);
        assert!(m.server_weight(&sdn, v).unwrap().abs() < 1e-12);
        assert!(m.edge_cost(&sdn, e).abs() < 1e-9);
        assert_eq!(m.server_cost(&sdn, v), Some(0.0));
    }

    #[test]
    fn exponential_weight_grows_with_utilization() {
        let (mut sdn, v, e) = net();
        let m = ExponentialCostModel::new(4.0, 4.0);
        let mut last_e = -1.0;
        let mut last_v = -1.0;
        for _ in 0..4 {
            let we = m.edge_weight(&sdn, e);
            let wv = m.server_weight(&sdn, v).unwrap();
            assert!(we > last_e);
            assert!(wv > last_v);
            last_e = we;
            last_v = wv;
            let mut a = Allocation::new(RequestId(0));
            a.add_link(e, 25.0);
            a.add_server(v, 250.0);
            sdn.allocate(&a).unwrap();
        }
        // Fully utilized: weight = base - 1.
        assert!((m.edge_weight(&sdn, e) - 3.0).abs() < 1e-9);
        assert!((m.server_weight(&sdn, v).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_resource_exceeds_threshold() {
        // With alpha = beta = 2|V|, a fully used resource has weight
        // 2|V| - 1 > sigma = |V| - 1, so it can never be chosen again.
        let (mut sdn, v, e) = net();
        let m = ExponentialCostModel::for_network(&sdn);
        let sigma = ExponentialCostModel::threshold(&sdn);
        let mut a = Allocation::new(RequestId(0));
        a.add_link(e, 100.0);
        a.add_server(v, 1000.0);
        sdn.allocate(&a).unwrap();
        assert!(m.edge_weight(&sdn, e) > sigma);
        assert!(m.server_weight(&sdn, v).unwrap() > sigma);
    }

    #[test]
    fn normalized_weight_matches_cost_over_capacity() {
        let (mut sdn, v, e) = net();
        let m = ExponentialCostModel::new(10.0, 7.0);
        let mut a = Allocation::new(RequestId(0));
        a.add_link(e, 33.0);
        a.add_server(v, 450.0);
        sdn.allocate(&a).unwrap();
        let we = m.edge_weight(&sdn, e);
        let ce = m.edge_cost(&sdn, e);
        assert!((we - ce / 100.0).abs() < 1e-9);
        let wv = m.server_weight(&sdn, v).unwrap();
        let cv = m.server_cost(&sdn, v).unwrap();
        assert!((wv - cv / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn for_network_uses_two_n() {
        let (sdn, ..) = net();
        let m = ExponentialCostModel::for_network(&sdn);
        assert_eq!(m.alpha, 4.0); // 2 * |V| = 4
        assert_eq!(m.beta, 4.0);
        assert_eq!(ExponentialCostModel::threshold(&sdn), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn base_must_exceed_one() {
        let _ = ExponentialCostModel::new(1.0, 2.0);
    }
}
