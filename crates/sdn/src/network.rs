//! The SDN itself: topology + capacities + unit costs + residual state.

use crate::{Allocation, SdnError};
use netgraph::{EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Incremental builder for an [`Sdn`].
///
/// Switches and servers are nodes of the underlying [`Graph`]; links carry
/// a bandwidth capacity `B_e` and a unit bandwidth cost `c_e` (the graph's
/// edge weight); servers carry a computing capacity `C_v` and a unit
/// computing cost `c_v`.
#[derive(Debug, Clone, Default)]
pub struct SdnBuilder {
    graph: Graph,
    computing_capacity: Vec<f64>, // 0.0 for plain switches
    unit_computing_cost: Vec<f64>,
    bandwidth_capacity: Vec<f64>,
}

impl SdnBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SdnBuilder::default()
    }

    /// Adds a plain SDN switch (no attached server).
    pub fn add_switch(&mut self) -> NodeId {
        let n = self.graph.add_node();
        self.computing_capacity.push(0.0);
        self.unit_computing_cost.push(0.0);
        n
    }

    /// Adds a switch with an attached server of the given computing
    /// capacity (MHz) and unit computing cost.
    ///
    /// # Panics
    ///
    /// Panics if the capacity or cost is not positive and finite; builder
    /// misuse is a programming error in topology generation.
    pub fn add_server(&mut self, capacity_mhz: f64, unit_cost: f64) -> NodeId {
        let n = self.add_switch();
        self.attach_server(n, capacity_mhz, unit_cost)
            .expect("fresh switch accepts a server"); // lint:allow(P1): a freshly added switch has no server attached yet
        n
    }

    /// Attaches a server to an existing switch (used by topology
    /// generators, which create the graph first and place servers after).
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::UnknownNode`] for unknown nodes and
    /// [`SdnError::InvalidParameter`] for non-positive capacities/costs.
    pub fn attach_server(
        &mut self,
        node: NodeId,
        capacity_mhz: f64,
        unit_cost: f64,
    ) -> Result<(), SdnError> {
        if !self.graph.contains_node(node) {
            return Err(SdnError::UnknownNode(node));
        }
        if !(capacity_mhz.is_finite() && capacity_mhz > 0.0) {
            return Err(SdnError::InvalidParameter {
                what: "server capacity",
                value: capacity_mhz,
            });
        }
        if !(unit_cost.is_finite() && unit_cost >= 0.0) {
            return Err(SdnError::InvalidParameter {
                what: "server unit cost",
                value: unit_cost,
            });
        }
        if let Some(c) = self.computing_capacity.get_mut(node.index()) {
            *c = capacity_mhz;
        }
        if let Some(c) = self.unit_computing_cost.get_mut(node.index()) {
            *c = unit_cost;
        }
        Ok(())
    }

    /// Adds a bidirectional link with bandwidth capacity `B_e` (Mbps) and
    /// unit bandwidth cost `c_e`.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::InvalidParameter`] for non-positive capacity or
    /// negative cost, and propagates graph errors (unknown endpoint,
    /// self-loop).
    pub fn add_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        bandwidth_mbps: f64,
        unit_cost: f64,
    ) -> Result<EdgeId, SdnError> {
        if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
            return Err(SdnError::InvalidParameter {
                what: "link bandwidth capacity",
                value: bandwidth_mbps,
            });
        }
        let e = self.graph.add_edge(u, v, unit_cost)?;
        self.bandwidth_capacity.push(bandwidth_mbps);
        Ok(e)
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (all validation happens on the
    /// individual operations) but kept fallible for future invariants.
    pub fn build(self) -> Result<Sdn, SdnError> {
        let servers: Vec<NodeId> = self
            .computing_capacity
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        let residual_bandwidth = self.bandwidth_capacity.clone();
        let residual_computing = self.computing_capacity.clone();
        let link_alive = vec![true; self.bandwidth_capacity.len()];
        let node_alive = vec![true; self.graph.node_count()];
        Ok(Sdn {
            graph: self.graph,
            servers,
            computing_capacity: self.computing_capacity,
            unit_computing_cost: self.unit_computing_cost,
            bandwidth_capacity: self.bandwidth_capacity,
            residual_bandwidth,
            residual_computing,
            link_alive,
            node_alive,
            version: 0,
        })
    }
}

/// A software-defined network `G = (V, E)` with a server subset `V_S`,
/// capacities, unit costs, and a residual-resource ledger (§III-A).
///
/// The ledger is the mutable part: [`Sdn::allocate`] and [`Sdn::release`]
/// move residual capacity atomically (an allocation either fully applies
/// or the network is left untouched).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sdn {
    graph: Graph,
    servers: Vec<NodeId>,
    computing_capacity: Vec<f64>,
    unit_computing_cost: Vec<f64>,
    bandwidth_capacity: Vec<f64>,
    residual_bandwidth: Vec<f64>,
    residual_computing: Vec<f64>,
    /// Per-link liveness: `false` while the link is failed. Reserved
    /// capacity bookkeeping is unaffected by failures — only the *usable*
    /// view ([`Sdn::usable_bandwidth`]) is masked.
    link_alive: Vec<bool>,
    /// Per-node (server) liveness: `false` while the attached server is
    /// failed. Plain switches are always `true`.
    node_alive: Vec<bool>,
    /// Bumped on every successful residual-capacity mutation; shortest-path
    /// caches compare it to detect staleness.
    version: u64,
}

impl PartialEq for Sdn {
    /// Structural equality: two networks are equal when topology,
    /// capacities, costs, and residual state match. The mutation counter
    /// [`Sdn::version`] is deliberately excluded — it tracks *history*,
    /// not state (a network reached by allocate+release equals one that
    /// was never touched).
    fn eq(&self, other: &Self) -> bool {
        // lint:allow(T1): bit-exact equality is the point — the chaos gate
        // compares replayed ledgers for *identity*, not approximate match.
        self.graph == other.graph
            && self.servers == other.servers
            && self.computing_capacity == other.computing_capacity
            && self.unit_computing_cost == other.unit_computing_cost
            && self.bandwidth_capacity == other.bandwidth_capacity
            && self.residual_bandwidth == other.residual_bandwidth
            && self.residual_computing == other.residual_computing
            && self.link_alive == other.link_alive
            && self.node_alive == other.node_alive
    }
}

impl Sdn {
    /// The underlying topology. Edge weights are the unit bandwidth costs
    /// `c_e`.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of switches `|V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of links `|E|`.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The switches with attached servers, `V_S`, in id order.
    #[must_use]
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Returns `true` if node `n` has an attached server.
    #[must_use]
    pub fn is_server(&self, n: NodeId) -> bool {
        // The capacity vector is node-indexed, so the bounds check doubles
        // as the contains-node check.
        self.computing_capacity
            .get(n.index())
            .is_some_and(|&c| c > 0.0)
    }

    /// Computing capacity `C_v` of the server at `v`, or `None` for plain
    /// switches.
    #[must_use]
    pub fn computing_capacity(&self, v: NodeId) -> Option<f64> {
        self.computing_capacity
            .get(v.index())
            .copied()
            .filter(|&c| c > 0.0)
    }

    /// Unit computing cost `c_v` at server `v`, or `None` for plain
    /// switches.
    #[must_use]
    pub fn unit_computing_cost(&self, v: NodeId) -> Option<f64> {
        if self.is_server(v) {
            self.unit_computing_cost.get(v.index()).copied()
        } else {
            None
        }
    }

    /// Bandwidth capacity `B_e` of link `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn bandwidth_capacity(&self, e: EdgeId) -> f64 {
        self.bandwidth_capacity
            .get(e.index())
            .copied()
            .unwrap_or_else(|| panic!("unknown link {e}")) // lint:allow(P1): documented panic on a foreign edge id
    }

    /// Unit bandwidth cost `c_e` of link `e` (the graph edge weight).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn unit_bandwidth_cost(&self, e: EdgeId) -> f64 {
        self.graph.edge(e).weight
    }

    /// Residual bandwidth `B_e(k)` on link `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn residual_bandwidth(&self, e: EdgeId) -> f64 {
        self.residual_bandwidth
            .get(e.index())
            .copied()
            .unwrap_or_else(|| panic!("unknown link {e}")) // lint:allow(P1): documented panic on a foreign edge id
    }

    /// Residual computing `C_v(k)` at server `v`, or `None` for plain
    /// switches.
    #[must_use]
    pub fn residual_computing(&self, v: NodeId) -> Option<f64> {
        if self.is_server(v) {
            self.residual_computing.get(v.index()).copied()
        } else {
            None
        }
    }

    /// Bandwidth utilization of link `e` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn bandwidth_utilization(&self, e: EdgeId) -> f64 {
        1.0 - self.residual_bandwidth(e) / self.bandwidth_capacity(e)
    }

    /// Computing utilization of server `v` in `[0, 1]`, or `None` for
    /// plain switches.
    #[must_use]
    pub fn computing_utilization(&self, v: NodeId) -> Option<f64> {
        Some(1.0 - self.residual_computing(v)? / self.computing_capacity(v)?)
    }

    /// The residual-state mutation counter: incremented by every
    /// successful [`Sdn::allocate`], [`Sdn::release`], and [`Sdn::reset`].
    ///
    /// Caches keyed on residual capacities (e.g. per-source shortest-path
    /// trees over the feasible subgraph) store the version they were
    /// computed at and invalidate when it moves. Cloning preserves the
    /// counter, so a cache built from a snapshot stays valid for the
    /// snapshot.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Returns `true` while link `e` is up.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn is_link_alive(&self, e: EdgeId) -> bool {
        self.link_alive
            .get(e.index())
            .copied()
            .unwrap_or_else(|| panic!("unknown link {e}")) // lint:allow(P1): documented panic on a foreign edge id
    }

    /// Returns `true` if `v` carries a server that is currently up.
    /// `false` for plain switches and for failed servers alike.
    #[must_use]
    pub fn is_server_alive(&self, v: NodeId) -> bool {
        self.is_server(v) && self.node_alive.get(v.index()).copied().unwrap_or(false)
    }

    /// Alive-masked residual bandwidth: the residual `B_e(k)` while the
    /// link is up, `0.0` while it is failed. Admission and repair planning
    /// read this view; the raw ledger ([`Sdn::residual_bandwidth`]) keeps
    /// reserved-capacity bookkeeping across failures so releases and
    /// recoveries stay exact.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a link of this network.
    #[must_use]
    pub fn usable_bandwidth(&self, e: EdgeId) -> f64 {
        if self.is_link_alive(e) {
            self.residual_bandwidth(e)
        } else {
            0.0
        }
    }

    /// Alive-masked residual computing: the residual `C_v(k)` while the
    /// server is up, `Some(0.0)` while it is failed, `None` for plain
    /// switches.
    #[must_use]
    pub fn usable_computing(&self, v: NodeId) -> Option<f64> {
        if !self.is_server(v) {
            None
        } else if self.node_alive.get(v.index()).copied().unwrap_or(false) {
            self.residual_computing.get(v.index()).copied()
        } else {
            Some(0.0)
        }
    }

    /// Takes link `e` down. Reserved capacity on the link is *not*
    /// released — sessions holding it stay accounted until their owner
    /// releases or repairs them — but the usable view drops to zero and
    /// [`Sdn::version`] moves so caches invalidate.
    ///
    /// Returns `Ok(true)` when the link went down, `Ok(false)` when it was
    /// already down (idempotent; the version does not move).
    ///
    /// # Errors
    ///
    /// Returns a graph error for an unknown link id.
    pub fn fail_link(&mut self, e: EdgeId) -> Result<bool, SdnError> {
        let Some(alive) = self.link_alive.get_mut(e.index()) else {
            return Err(SdnError::Graph(netgraph::GraphError::InvalidEdge(e)));
        };
        if !*alive {
            return Ok(false);
        }
        *alive = false;
        self.version = self.version.wrapping_add(1);
        Ok(true)
    }

    /// Brings link `e` back up. Its residual bandwidth resumes at capacity
    /// minus whatever live sessions still hold (the ledger was preserved
    /// across the failure).
    ///
    /// Returns `Ok(true)` when the link came up, `Ok(false)` when it was
    /// already up.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an unknown link id.
    pub fn recover_link(&mut self, e: EdgeId) -> Result<bool, SdnError> {
        let Some(alive) = self.link_alive.get_mut(e.index()) else {
            return Err(SdnError::Graph(netgraph::GraphError::InvalidEdge(e)));
        };
        if *alive {
            return Ok(false);
        }
        *alive = true;
        self.version = self.version.wrapping_add(1);
        Ok(true)
    }

    /// Takes the server at `v` down (its switch keeps forwarding; only the
    /// computing resource is lost). Reserved computing is not released.
    ///
    /// Returns `Ok(true)` when the server went down, `Ok(false)` when it
    /// was already down.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::NotAServer`] if `v` has no attached server.
    pub fn fail_server(&mut self, v: NodeId) -> Result<bool, SdnError> {
        if !self.is_server(v) {
            return Err(SdnError::NotAServer(v));
        }
        let Some(alive) = self.node_alive.get_mut(v.index()) else {
            return Err(SdnError::NotAServer(v));
        };
        if !*alive {
            return Ok(false);
        }
        *alive = false;
        self.version = self.version.wrapping_add(1);
        Ok(true)
    }

    /// Brings the server at `v` back up.
    ///
    /// Returns `Ok(true)` when the server came up, `Ok(false)` when it was
    /// already up.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::NotAServer`] if `v` has no attached server.
    pub fn recover_server(&mut self, v: NodeId) -> Result<bool, SdnError> {
        if !self.is_server(v) {
            return Err(SdnError::NotAServer(v));
        }
        let Some(alive) = self.node_alive.get_mut(v.index()) else {
            return Err(SdnError::NotAServer(v));
        };
        if *alive {
            return Ok(false);
        }
        *alive = true;
        self.version = self.version.wrapping_add(1);
        Ok(true)
    }

    /// Currently failed links, in id order.
    pub fn failed_links(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.link_alive
            .iter()
            .enumerate()
            .filter(|(_, alive)| !**alive)
            .map(|(i, _)| EdgeId::new(i))
    }

    /// Currently failed servers, in id order.
    pub fn failed_servers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.servers
            .iter()
            .copied()
            .filter(|v| !self.node_alive.get(v.index()).copied().unwrap_or(true))
    }

    /// Returns `true` when no link or server is currently failed.
    #[must_use]
    pub fn all_alive(&self) -> bool {
        self.link_alive.iter().all(|&a| a) && self.node_alive.iter().all(|&a| a)
    }

    /// Checks whether `alloc` fits in the current residual capacities.
    #[must_use]
    pub fn can_allocate(&self, alloc: &Allocation) -> bool {
        self.validate_allocation(alloc).is_ok()
    }

    fn validate_allocation(&self, alloc: &Allocation) -> Result<(), SdnError> {
        // Shared with every planner-side `residual + CAPACITY_EPS >= need`
        // feasibility filter, so a plan the filters accept always commits.
        const EPS: f64 = crate::cost::CAPACITY_EPS;
        for (e, load) in alloc.links() {
            let (Some(&alive), Some(&avail)) = (
                self.link_alive.get(e.index()),
                self.residual_bandwidth.get(e.index()),
            ) else {
                return Err(SdnError::Graph(netgraph::GraphError::InvalidEdge(e)));
            };
            if !alive {
                return Err(SdnError::DeadElement {
                    what: format!("link {e}"),
                });
            }
            if load > avail + EPS {
                return Err(SdnError::InsufficientBandwidth {
                    link: e,
                    requested: load,
                    available: avail,
                });
            }
        }
        for (v, load) in alloc.servers() {
            if !self.is_server(v) {
                return Err(SdnError::NotAServer(v));
            }
            if !self.node_alive.get(v.index()).copied().unwrap_or(false) {
                return Err(SdnError::DeadElement {
                    what: format!("server {v}"),
                });
            }
            let avail = self
                .residual_computing
                .get(v.index())
                .copied()
                .unwrap_or(0.0);
            if load > avail + EPS {
                return Err(SdnError::InsufficientComputing {
                    server: v,
                    requested: load,
                    available: avail,
                });
            }
        }
        Ok(())
    }

    /// Atomically commits an allocation, decreasing residual capacities.
    ///
    /// # Errors
    ///
    /// Returns the first capacity violation found; on error the network is
    /// left untouched.
    pub fn allocate(&mut self, alloc: &Allocation) -> Result<(), SdnError> {
        self.validate_allocation(alloc)?;
        for (e, load) in alloc.links() {
            if let Some(r) = self.residual_bandwidth.get_mut(e.index()) {
                *r = (*r - load).max(0.0);
            }
        }
        for (v, load) in alloc.servers() {
            if let Some(r) = self.residual_computing.get_mut(v.index()) {
                *r = (*r - load).max(0.0);
            }
        }
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Returns a previously committed allocation to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::OverRelease`] if releasing would exceed a
    /// capacity (accounting bug guard); the network is left untouched in
    /// that case.
    pub fn release(&mut self, alloc: &Allocation) -> Result<(), SdnError> {
        const EPS: f64 = crate::cost::RELEASE_EPS;
        for (e, load) in alloc.links() {
            let (Some(&res), Some(&cap)) = (
                self.residual_bandwidth.get(e.index()),
                self.bandwidth_capacity.get(e.index()),
            ) else {
                return Err(SdnError::Graph(netgraph::GraphError::InvalidEdge(e)));
            };
            if res + load > cap * (1.0 + EPS) + EPS {
                return Err(SdnError::OverRelease {
                    what: format!("link {e}"),
                });
            }
        }
        for (v, load) in alloc.servers() {
            if !self.is_server(v) {
                return Err(SdnError::NotAServer(v));
            }
            let res = self
                .residual_computing
                .get(v.index())
                .copied()
                .unwrap_or(0.0);
            let cap = self
                .computing_capacity
                .get(v.index())
                .copied()
                .unwrap_or(0.0);
            if res + load > cap * (1.0 + EPS) + EPS {
                return Err(SdnError::OverRelease {
                    what: format!("server {v}"),
                });
            }
        }
        for (e, load) in alloc.links() {
            let cap = self
                .bandwidth_capacity
                .get(e.index())
                .copied()
                .unwrap_or(0.0);
            if let Some(r) = self.residual_bandwidth.get_mut(e.index()) {
                *r = (*r + load).min(cap);
            }
        }
        for (v, load) in alloc.servers() {
            let cap = self
                .computing_capacity
                .get(v.index())
                .copied()
                .unwrap_or(0.0);
            if let Some(r) = self.residual_computing.get_mut(v.index()) {
                *r = (*r + load).min(cap);
            }
        }
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Restores every residual capacity to its full value. Liveness is
    /// untouched — failed elements stay failed (use [`Sdn::recover_all`]).
    pub fn reset(&mut self) {
        self.residual_bandwidth
            .copy_from_slice(&self.bandwidth_capacity);
        self.residual_computing
            .copy_from_slice(&self.computing_capacity);
        self.version = self.version.wrapping_add(1);
    }

    /// Brings every failed link and server back up. A no-op (version
    /// included) when nothing is failed.
    pub fn recover_all(&mut self) {
        if self.all_alive() {
            return;
        }
        self.link_alive.fill(true);
        self.node_alive.fill(true);
        self.version = self.version.wrapping_add(1);
    }

    /// Sum of all link bandwidth capacities (Mbps).
    #[must_use]
    pub fn total_bandwidth_capacity(&self) -> f64 {
        self.bandwidth_capacity.iter().sum()
    }

    /// Sum of all server computing capacities (MHz).
    #[must_use]
    pub fn total_computing_capacity(&self) -> f64 {
        self.computing_capacity.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    fn small() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = SdnBuilder::new();
        let v0 = b.add_switch();
        let v1 = b.add_server(1000.0, 2.0);
        let v2 = b.add_switch();
        let e0 = b.add_link(v0, v1, 100.0, 1.0).unwrap();
        let e1 = b.add_link(v1, v2, 200.0, 3.0).unwrap();
        (b.build().unwrap(), vec![v0, v1, v2], vec![e0, e1])
    }

    #[test]
    fn builder_classifies_servers() {
        let (sdn, v, _) = small();
        assert_eq!(sdn.servers(), &[v[1]]);
        assert!(sdn.is_server(v[1]));
        assert!(!sdn.is_server(v[0]));
        assert_eq!(sdn.computing_capacity(v[1]), Some(1000.0));
        assert_eq!(sdn.computing_capacity(v[0]), None);
        assert_eq!(sdn.unit_computing_cost(v[1]), Some(2.0));
        assert_eq!(sdn.node_count(), 3);
        assert_eq!(sdn.link_count(), 2);
    }

    #[test]
    fn capacities_and_costs_exposed() {
        let (sdn, _, e) = small();
        assert_eq!(sdn.bandwidth_capacity(e[0]), 100.0);
        assert_eq!(sdn.unit_bandwidth_cost(e[1]), 3.0);
        assert_eq!(sdn.total_bandwidth_capacity(), 300.0);
        assert_eq!(sdn.total_computing_capacity(), 1000.0);
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let (mut sdn, v, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 60.0);
        a.add_server(v[1], 400.0);
        assert!(sdn.can_allocate(&a));
        sdn.allocate(&a).unwrap();
        assert_eq!(sdn.residual_bandwidth(e[0]), 40.0);
        assert_eq!(sdn.residual_computing(v[1]), Some(600.0));
        assert!((sdn.bandwidth_utilization(e[0]) - 0.6).abs() < 1e-9);
        assert!((sdn.computing_utilization(v[1]).unwrap() - 0.4).abs() < 1e-9);
        sdn.release(&a).unwrap();
        assert_eq!(sdn.residual_bandwidth(e[0]), 100.0);
        assert_eq!(sdn.residual_computing(v[1]), Some(1000.0));
    }

    #[test]
    fn allocation_is_atomic_on_failure() {
        let (mut sdn, v, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 60.0);
        a.add_server(v[1], 5000.0); // too much
        let err = sdn.allocate(&a).unwrap_err();
        assert!(matches!(err, SdnError::InsufficientComputing { .. }));
        // Link residual untouched.
        assert_eq!(sdn.residual_bandwidth(e[0]), 100.0);
    }

    #[test]
    fn accumulated_loads_checked_jointly() {
        let (mut sdn, _, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 60.0);
        a.add_link(e[0], 60.0); // 120 > 100 total
        assert!(!sdn.can_allocate(&a));
        assert!(sdn.allocate(&a).is_err());
    }

    #[test]
    fn over_release_rejected() {
        let (mut sdn, _, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 50.0);
        assert!(matches!(sdn.release(&a), Err(SdnError::OverRelease { .. })));
    }

    #[test]
    fn allocation_on_non_server_rejected() {
        let (mut sdn, v, _) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_server(v[0], 1.0);
        assert!(matches!(sdn.allocate(&a), Err(SdnError::NotAServer(_))));
    }

    #[test]
    fn reset_restores_full_capacity() {
        let (mut sdn, v, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[1], 200.0);
        a.add_server(v[1], 1000.0);
        sdn.allocate(&a).unwrap();
        assert_eq!(sdn.residual_bandwidth(e[1]), 0.0);
        sdn.reset();
        assert_eq!(sdn.residual_bandwidth(e[1]), 200.0);
        assert_eq!(sdn.residual_computing(v[1]), Some(1000.0));
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        let mut b = SdnBuilder::new();
        let v0 = b.add_switch();
        let v1 = b.add_switch();
        assert!(matches!(
            b.add_link(v0, v1, 0.0, 1.0),
            Err(SdnError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.attach_server(v0, -5.0, 1.0),
            Err(SdnError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.attach_server(NodeId::new(9), 100.0, 1.0),
            Err(SdnError::UnknownNode(_))
        ));
    }

    #[test]
    fn attach_server_upgrades_switch() {
        let mut b = SdnBuilder::new();
        let v0 = b.add_switch();
        b.attach_server(v0, 500.0, 1.5).unwrap();
        let sdn = b.build().unwrap();
        assert!(sdn.is_server(v0));
        assert_eq!(sdn.servers(), &[v0]);
    }

    #[test]
    fn version_tracks_mutations_but_not_equality() {
        let (mut sdn, v, e) = small();
        assert_eq!(sdn.version(), 0);
        let pristine = sdn.clone();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 60.0);
        a.add_server(v[1], 400.0);
        sdn.allocate(&a).unwrap();
        assert_eq!(sdn.version(), 1);
        sdn.release(&a).unwrap();
        assert_eq!(sdn.version(), 2);
        sdn.reset();
        assert_eq!(sdn.version(), 3);
        // Failed mutations leave the counter alone.
        let mut too_big = Allocation::new(RequestId(2));
        too_big.add_server(v[1], 5000.0);
        assert!(sdn.allocate(&too_big).is_err());
        assert_eq!(sdn.version(), 3);
        // Equality ignores history.
        assert_eq!(sdn, pristine);
    }

    #[test]
    fn link_failure_masks_usable_but_preserves_ledger() {
        let (mut sdn, v, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 60.0);
        a.add_server(v[1], 400.0);
        sdn.allocate(&a).unwrap();
        let v_before = sdn.version();
        assert!(sdn.fail_link(e[0]).unwrap());
        assert_eq!(sdn.version(), v_before + 1);
        assert!(!sdn.is_link_alive(e[0]));
        assert!(!sdn.all_alive());
        // Usable view is masked; the raw ledger still remembers the hold.
        assert_eq!(sdn.usable_bandwidth(e[0]), 0.0);
        assert_eq!(sdn.residual_bandwidth(e[0]), 40.0);
        // Failing again is an idempotent no-op.
        assert!(!sdn.fail_link(e[0]).unwrap());
        assert_eq!(sdn.version(), v_before + 1);
        // Releasing the session while the link is down still works.
        sdn.release(&a).unwrap();
        assert_eq!(sdn.residual_bandwidth(e[0]), 100.0);
        // Recovery restores the usable view to the (restored) residual.
        assert!(sdn.recover_link(e[0]).unwrap());
        assert_eq!(sdn.usable_bandwidth(e[0]), 100.0);
        assert!(sdn.all_alive());
    }

    #[test]
    fn server_failure_masks_usable_computing() {
        let (mut sdn, v, _) = small();
        assert!(sdn.fail_server(v[1]).unwrap());
        assert!(!sdn.is_server_alive(v[1]));
        assert!(sdn.is_server(v[1]), "failed server is still a server");
        assert_eq!(sdn.usable_computing(v[1]), Some(0.0));
        assert_eq!(sdn.residual_computing(v[1]), Some(1000.0));
        assert_eq!(sdn.failed_servers().collect::<Vec<_>>(), vec![v[1]]);
        assert!(sdn.recover_server(v[1]).unwrap());
        assert_eq!(sdn.usable_computing(v[1]), Some(1000.0));
        // Switches are never "alive servers" and cannot fail as servers.
        assert!(!sdn.is_server_alive(v[0]));
        assert!(matches!(
            sdn.fail_server(v[0]),
            Err(SdnError::NotAServer(_))
        ));
        assert_eq!(sdn.usable_computing(v[0]), None);
    }

    #[test]
    fn allocation_on_dead_element_rejected() {
        let (mut sdn, v, e) = small();
        sdn.fail_link(e[0]).unwrap();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 10.0);
        assert!(matches!(
            sdn.allocate(&a),
            Err(SdnError::DeadElement { .. })
        ));
        sdn.recover_link(e[0]).unwrap();
        sdn.fail_server(v[1]).unwrap();
        let mut b = Allocation::new(RequestId(2));
        b.add_server(v[1], 10.0);
        assert!(matches!(
            sdn.allocate(&b),
            Err(SdnError::DeadElement { .. })
        ));
    }

    #[test]
    fn recover_all_revives_everything() {
        let (mut sdn, v, e) = small();
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_server(v[1]).unwrap();
        assert_eq!(sdn.failed_links().collect::<Vec<_>>(), vec![e[1]]);
        let ver = sdn.version();
        sdn.recover_all();
        assert!(sdn.all_alive());
        assert_eq!(sdn.version(), ver + 1);
        // Idempotent: no version churn when nothing is failed.
        sdn.recover_all();
        assert_eq!(sdn.version(), ver + 1);
    }

    #[test]
    fn unknown_link_failure_is_an_error() {
        let (mut sdn, _, _) = small();
        assert!(sdn.fail_link(EdgeId::new(99)).is_err());
        assert!(sdn.recover_link(EdgeId::new(99)).is_err());
    }

    #[test]
    fn exact_fill_is_allowed() {
        let (mut sdn, _, e) = small();
        let mut a = Allocation::new(RequestId(1));
        a.add_link(e[0], 100.0);
        sdn.allocate(&a).unwrap();
        assert_eq!(sdn.residual_bandwidth(e[0]), 0.0);
        // Any further allocation fails.
        let mut b2 = Allocation::new(RequestId(2));
        b2.add_link(e[0], 0.1);
        assert!(!sdn.can_allocate(&b2));
    }
}
