//! Network function types and service chains.
//!
//! The paper's evaluation (§VI-A) uses five network function types —
//! Firewall, Proxy, NAT, IDS, and Load Balancing — with computing demands
//! adopted from the consolidated-middlebox literature ([7], [17]). Those
//! sources model per-function CPU load as proportional to the traffic rate
//! pushed through the function; the coefficients below reproduce their
//! relative ordering (IDS heaviest, firewall/proxy lightest).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One virtualized network function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NfvType {
    /// Stateless packet filter.
    Firewall,
    /// Caching / forwarding proxy.
    Proxy,
    /// Network address translation.
    Nat,
    /// Intrusion detection system (deep packet inspection — the heaviest).
    Ids,
    /// Flow-level load balancer.
    LoadBalancer,
}

impl NfvType {
    /// All five NFV types, in a fixed order (useful for sweeps and random
    /// chain generation).
    pub const ALL: [NfvType; 5] = [
        NfvType::Firewall,
        NfvType::Proxy,
        NfvType::Nat,
        NfvType::Ids,
        NfvType::LoadBalancer,
    ];

    /// CPU demand coefficient in MHz per Mbps of traffic processed.
    ///
    /// A request with bandwidth `b` Mbps passing through this function
    /// consumes `b · coefficient` MHz on the hosting server. The values
    /// follow the consolidated-middlebox measurements (\[7\], \[17\]): simple
    /// header rewriting (firewall, NAT) runs near line rate at ~1 MHz per
    /// Mbps; proxying and load balancing pay for connection state; deep
    /// packet inspection (IDS) is several times heavier.
    #[must_use]
    pub fn mhz_per_mbps(self) -> f64 {
        match self {
            NfvType::Firewall => 0.90,
            NfvType::Proxy => 1.20,
            NfvType::Nat => 0.92,
            NfvType::Ids => 2.50,
            NfvType::LoadBalancer => 1.10,
        }
    }
}

impl fmt::Display for NfvType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NfvType::Firewall => "Firewall",
            NfvType::Proxy => "Proxy",
            NfvType::Nat => "NAT",
            NfvType::Ids => "IDS",
            NfvType::LoadBalancer => "LoadBalancer",
        };
        f.write_str(name)
    }
}

/// An ordered sequence of network functions every packet of a request must
/// traverse before reaching any destination (e.g. `⟨NAT, Firewall, IDS⟩`).
///
/// Following the paper's model (§III-B), the whole chain is consolidated
/// onto whichever server(s) the routing algorithm selects, so the chain's
/// aggregate demand is what matters for placement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceChain {
    functions: Vec<NfvType>,
}

impl ServiceChain {
    /// Creates a service chain from an ordered function list.
    ///
    /// Empty chains are allowed and model plain multicast (no NFV
    /// processing cost), which the tests use to compare against classic
    /// Steiner-tree behaviour.
    #[must_use]
    pub fn new(functions: Vec<NfvType>) -> Self {
        ServiceChain { functions }
    }

    /// The ordered functions of the chain.
    #[must_use]
    pub fn functions(&self) -> &[NfvType] {
        &self.functions
    }

    /// Number of functions in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if the chain has no functions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Computing demand `C_v(SC_k)` in MHz when the chain processes
    /// `bandwidth_mbps` of traffic: the sum of the per-function
    /// coefficients times the traffic rate.
    #[must_use]
    pub fn computing_demand(&self, bandwidth_mbps: f64) -> f64 {
        let coeff: f64 = self.functions.iter().map(|f| f.mhz_per_mbps()).sum();
        coeff * bandwidth_mbps
    }
}

impl fmt::Display for ServiceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{func}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<NfvType> for ServiceChain {
    fn from_iter<I: IntoIterator<Item = NfvType>>(iter: I) -> Self {
        ServiceChain::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_is_heaviest() {
        let max = NfvType::ALL
            .iter()
            .max_by(|a, b| a.mhz_per_mbps().partial_cmp(&b.mhz_per_mbps()).unwrap())
            .unwrap();
        assert_eq!(*max, NfvType::Ids);
    }

    #[test]
    fn demand_scales_linearly_with_bandwidth() {
        let chain = ServiceChain::new(vec![NfvType::Firewall, NfvType::Ids]);
        let d100 = chain.computing_demand(100.0);
        let d200 = chain.computing_demand(200.0);
        assert!((d200 - 2.0 * d100).abs() < 1e-9);
        assert!((d100 - (0.90 + 2.50) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_chain_has_zero_demand() {
        let chain = ServiceChain::new(Vec::new());
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
        assert_eq!(chain.computing_demand(150.0), 0.0);
    }

    #[test]
    fn chain_demand_is_order_independent_but_display_is_not() {
        let a = ServiceChain::new(vec![NfvType::Nat, NfvType::Firewall]);
        let b = ServiceChain::new(vec![NfvType::Firewall, NfvType::Nat]);
        assert_eq!(a.computing_demand(80.0), b.computing_demand(80.0));
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "⟨NAT, Firewall⟩");
    }

    #[test]
    fn from_iterator_collects() {
        let chain: ServiceChain = NfvType::ALL.into_iter().collect();
        assert_eq!(chain.len(), 5);
        assert_eq!(chain.functions()[3], NfvType::Ids);
    }

    #[test]
    fn display_of_types() {
        assert_eq!(NfvType::LoadBalancer.to_string(), "LoadBalancer");
        assert_eq!(NfvType::Ids.to_string(), "IDS");
    }
}
