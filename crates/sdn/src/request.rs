//! NFV-enabled multicast requests.

use crate::{SdnError, ServiceChain};
use netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a multicast request within one experiment run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An NFV-enabled multicast request `r_k = (s_k, D_k; b_k, SC_k)` (§III-B).
///
/// Every packet from `source` must pass through an instance of `chain`
/// (placed on one or more servers by the routing algorithm) before reaching
/// any destination in `destinations`, consuming `bandwidth` Mbps on every
/// traversed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastRequest {
    /// Request identifier.
    pub id: RequestId,
    /// The source switch `s_k`.
    pub source: NodeId,
    /// The destination switches `D_k` (non-empty, not containing the
    /// source).
    pub destinations: Vec<NodeId>,
    /// Demanded bandwidth `b_k` in Mbps.
    pub bandwidth: f64,
    /// The service chain `SC_k`.
    pub chain: ServiceChain,
}

impl MulticastRequest {
    /// Creates a request after normalizing the destination set: duplicates
    /// and the source itself are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the normalized destination set is empty or `bandwidth` is
    /// not positive and finite — both indicate a workload-generation bug,
    /// not a runtime condition. Untrusted inputs (workload files, RPC
    /// payloads) should go through [`MulticastRequest::try_new`] instead.
    #[must_use]
    pub fn new(
        id: RequestId,
        source: NodeId,
        destinations: Vec<NodeId>,
        bandwidth: f64,
        chain: ServiceChain,
    ) -> Self {
        match Self::try_new(id, source, destinations, bandwidth, chain) {
            Ok(r) => r,
            // lint:allow(P1): documented panic contract; try_new is the fallible path
            Err(e) => panic!(
                "invariant violated: workload generators produce well-formed requests, but {e}"
            ),
        }
    }

    /// Fallible constructor for untrusted inputs: normalizes the
    /// destination set (duplicates and the source itself are dropped) and
    /// rejects malformed requests instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::InfeasibleRequest`] when `bandwidth` is not
    /// positive and finite or the normalized destination set is empty.
    pub fn try_new(
        id: RequestId,
        source: NodeId,
        destinations: Vec<NodeId>,
        bandwidth: f64,
        chain: ServiceChain,
    ) -> Result<Self, SdnError> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SdnError::InfeasibleRequest {
                reason: format!("bandwidth must be positive and finite, got {bandwidth}"),
            });
        }
        let mut dests = destinations;
        dests.sort_unstable();
        dests.dedup();
        dests.retain(|&d| d != source);
        if dests.is_empty() {
            return Err(SdnError::InfeasibleRequest {
                reason: format!("request {id} has no destinations"),
            });
        }
        Ok(MulticastRequest {
            id,
            source,
            destinations: dests,
            bandwidth,
            chain,
        })
    }

    /// Computing demand `C_v(SC_k)` of the request's chain in MHz.
    #[must_use]
    pub fn computing_demand(&self) -> f64 {
        self.chain.computing_demand(self.bandwidth)
    }

    /// Number of destinations.
    #[must_use]
    pub fn destination_count(&self) -> usize {
        self.destinations.len()
    }
}

impl fmt::Display for MulticastRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} dests, {} Mbps, {}",
            self.id,
            self.source,
            self.destinations.len(),
            self.bandwidth,
            self.chain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NfvType;

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Nat, NfvType::Ids])
    }

    #[test]
    fn normalizes_destinations() {
        let r = MulticastRequest::new(
            RequestId(1),
            NodeId::new(0),
            vec![
                NodeId::new(2),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(0),
            ],
            100.0,
            chain(),
        );
        assert_eq!(r.destinations, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(r.destination_count(), 2);
    }

    #[test]
    fn computing_demand_delegates_to_chain() {
        let r = MulticastRequest::new(
            RequestId(2),
            NodeId::new(0),
            vec![NodeId::new(1)],
            50.0,
            chain(),
        );
        assert!((r.computing_demand() - (0.92 + 2.50) * 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn rejects_source_only_destinations() {
        let _ = MulticastRequest::new(
            RequestId(3),
            NodeId::new(0),
            vec![NodeId::new(0)],
            10.0,
            chain(),
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = MulticastRequest::new(
            RequestId(4),
            NodeId::new(0),
            vec![NodeId::new(1)],
            0.0,
            chain(),
        );
    }

    #[test]
    fn try_new_rejects_instead_of_panicking() {
        use crate::SdnError;
        let bad_bw = MulticastRequest::try_new(
            RequestId(7),
            NodeId::new(0),
            vec![NodeId::new(1)],
            f64::NAN,
            chain(),
        );
        assert!(matches!(bad_bw, Err(SdnError::InfeasibleRequest { .. })));
        let no_dests = MulticastRequest::try_new(
            RequestId(8),
            NodeId::new(0),
            vec![NodeId::new(0)],
            10.0,
            chain(),
        );
        assert!(matches!(no_dests, Err(SdnError::InfeasibleRequest { .. })));
        let ok = MulticastRequest::try_new(
            RequestId(9),
            NodeId::new(0),
            vec![NodeId::new(1)],
            10.0,
            chain(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn display_mentions_id_and_chain() {
        let r = MulticastRequest::new(
            RequestId(5),
            NodeId::new(0),
            vec![NodeId::new(1)],
            75.0,
            chain(),
        );
        let s = r.to_string();
        assert!(s.contains("r5"));
        assert!(s.contains("NAT"));
    }
}
