//! # sdn
//!
//! The software-defined-network substrate for the NFV-multicast
//! reproduction: switches and servers, link/server capacities and unit
//! costs, service chains over the five NFV types of the paper's evaluation,
//! multicast requests, a residual-resource ledger with checked
//! allocate/release, and the two cost models (linear and the exponential
//! model of §V-A, Eq. 1–2).
//!
//! ## Example
//!
//! ```
//! use sdn::{NfvType, SdnBuilder, ServiceChain};
//!
//! # fn main() -> Result<(), sdn::SdnError> {
//! let mut b = SdnBuilder::new();
//! let s0 = b.add_switch();
//! let s1 = b.add_server(8_000.0, 1.0); // capacity [MHz], unit cost
//! b.add_link(s0, s1, 1_000.0, 0.5)?;   // capacity [Mbps], unit cost
//! let sdn = b.build()?;
//!
//! assert!(sdn.is_server(s1));
//! assert!(!sdn.is_server(s0));
//!
//! let chain = ServiceChain::new(vec![NfvType::Nat, NfvType::Firewall, NfvType::Ids]);
//! assert!(chain.computing_demand(100.0) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod error;
mod network;
mod nfv;
mod request;
mod resources;

pub use cost::{
    ExponentialCostModel, LinearCostModel, CAPACITY_EPS, COST_FLOOR, COST_TIEBREAK_REL,
    PRUNE_GUARD_ABS, PRUNE_GUARD_REL, RELEASE_EPS, VALIDATE_REL_TOL,
};
pub use error::SdnError;
pub use network::{Sdn, SdnBuilder};
pub use nfv::{NfvType, ServiceChain};
pub use request::{MulticastRequest, RequestId};
pub use resources::Allocation;
