//! Resource allocation records.

use crate::RequestId;
use netgraph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The resources one admitted request occupies: per-link bandwidth and
/// per-server computing loads.
///
/// Multiple loads on the same link accumulate — a pseudo-multicast tree
/// whose send-back path retraverses a tree edge charges that edge twice.
///
/// ```
/// use sdn::{Allocation, RequestId};
/// use netgraph::EdgeId;
///
/// let mut a = Allocation::new(RequestId(7));
/// a.add_link(EdgeId::new(0), 100.0);
/// a.add_link(EdgeId::new(0), 100.0); // send-back retraversal
/// assert_eq!(a.link_load(EdgeId::new(0)), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    request: RequestId,
    links: BTreeMap<EdgeId, f64>,
    servers: BTreeMap<NodeId, f64>,
}

impl Allocation {
    /// Creates an empty allocation for `request`.
    #[must_use]
    pub fn new(request: RequestId) -> Self {
        Allocation {
            request,
            links: BTreeMap::new(),
            servers: BTreeMap::new(),
        }
    }

    /// The request this allocation belongs to.
    #[must_use]
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// Adds `amount` Mbps of load on link `e` (accumulating).
    pub fn add_link(&mut self, e: EdgeId, amount: f64) {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        *self.links.entry(e).or_insert(0.0) += amount;
    }

    /// Adds `amount` MHz of load on server `v` (accumulating).
    pub fn add_server(&mut self, v: NodeId, amount: f64) {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        *self.servers.entry(v).or_insert(0.0) += amount;
    }

    /// Total load placed on link `e` by this allocation.
    #[must_use]
    pub fn link_load(&self, e: EdgeId) -> f64 {
        self.links.get(&e).copied().unwrap_or(0.0)
    }

    /// Total load placed on server `v` by this allocation.
    #[must_use]
    pub fn server_load(&self, v: NodeId) -> f64 {
        self.servers.get(&v).copied().unwrap_or(0.0)
    }

    /// Iterates over `(link, load)` pairs in id order.
    pub fn links(&self) -> impl Iterator<Item = (EdgeId, f64)> + '_ {
        self.links.iter().map(|(&e, &l)| (e, l))
    }

    /// Iterates over `(server, load)` pairs in id order.
    pub fn servers(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.servers.iter().map(|(&v, &l)| (v, l))
    }

    /// Total bandwidth placed across all links (Mbps × traversals).
    #[must_use]
    pub fn total_bandwidth(&self) -> f64 {
        self.links.values().sum()
    }

    /// Total computing placed across all servers (MHz).
    #[must_use]
    pub fn total_computing(&self) -> f64 {
        self.servers.values().sum()
    }

    /// Returns `true` if the allocation holds no resources.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.servers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_accumulate() {
        let mut a = Allocation::new(RequestId(1));
        a.add_link(EdgeId::new(0), 50.0);
        a.add_link(EdgeId::new(0), 50.0);
        a.add_link(EdgeId::new(1), 10.0);
        a.add_server(NodeId::new(2), 400.0);
        assert_eq!(a.link_load(EdgeId::new(0)), 100.0);
        assert_eq!(a.link_load(EdgeId::new(1)), 10.0);
        assert_eq!(a.link_load(EdgeId::new(9)), 0.0);
        assert_eq!(a.total_bandwidth(), 110.0);
        assert_eq!(a.total_computing(), 400.0);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_allocation() {
        let a = Allocation::new(RequestId(0));
        assert!(a.is_empty());
        assert_eq!(a.total_bandwidth(), 0.0);
        assert_eq!(a.request(), RequestId(0));
    }

    #[test]
    fn iteration_is_sorted_by_id() {
        let mut a = Allocation::new(RequestId(1));
        a.add_link(EdgeId::new(5), 1.0);
        a.add_link(EdgeId::new(2), 1.0);
        let ids: Vec<usize> = a.links().map(|(e, _)| e.index()).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
