//! Error type for the SDN model.

use netgraph::{EdgeId, GraphError, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by SDN construction and resource accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdnError {
    /// Underlying graph construction failed.
    Graph(GraphError),
    /// A capacity or cost parameter was non-positive, NaN, or infinite.
    InvalidParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The node is not a server but a server operation was requested.
    NotAServer(NodeId),
    /// A link does not have enough residual bandwidth for an allocation.
    InsufficientBandwidth {
        /// The saturated link.
        link: EdgeId,
        /// Bandwidth requested (Mbps).
        requested: f64,
        /// Bandwidth available (Mbps).
        available: f64,
    },
    /// A server does not have enough residual computing capacity.
    InsufficientComputing {
        /// The saturated server.
        server: NodeId,
        /// Computing requested (MHz).
        requested: f64,
        /// Computing available (MHz).
        available: f64,
    },
    /// Releasing more than was allocated (accounting bug guard).
    OverRelease {
        /// Human-readable description of the resource.
        what: String,
    },
    /// A request referenced a node outside the network.
    UnknownNode(NodeId),
}

impl fmt::Display for SdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdnError::Graph(e) => write!(f, "graph error: {e}"),
            SdnError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value} (must be positive and finite)")
            }
            SdnError::NotAServer(n) => write!(f, "node {n} has no attached server"),
            SdnError::InsufficientBandwidth {
                link,
                requested,
                available,
            } => write!(
                f,
                "link {link} has {available} Mbps available, {requested} requested"
            ),
            SdnError::InsufficientComputing {
                server,
                requested,
                available,
            } => write!(
                f,
                "server {server} has {available} MHz available, {requested} requested"
            ),
            SdnError::OverRelease { what } => {
                write!(f, "released more than allocated on {what}")
            }
            SdnError::UnknownNode(n) => write!(f, "node {n} is not part of the network"),
        }
    }
}

impl Error for SdnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SdnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SdnError {
    fn from(e: GraphError) -> Self {
        SdnError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SdnError::InsufficientBandwidth {
            link: EdgeId::new(3),
            requested: 100.0,
            available: 40.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("e3"));
        assert!(msg.contains("100"));
        assert!(msg.contains("40"));
    }

    #[test]
    fn graph_error_is_source() {
        let e = SdnError::from(GraphError::NegativeCycle);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SdnError>();
    }
}
