//! Error type for the SDN model.

use netgraph::{EdgeId, GraphError, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by SDN construction and resource accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdnError {
    /// Underlying graph construction failed.
    Graph(GraphError),
    /// A capacity or cost parameter was non-positive, NaN, or infinite.
    InvalidParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The node is not a server but a server operation was requested.
    NotAServer(NodeId),
    /// A link does not have enough residual bandwidth for an allocation.
    InsufficientBandwidth {
        /// The saturated link.
        link: EdgeId,
        /// Bandwidth requested (Mbps).
        requested: f64,
        /// Bandwidth available (Mbps).
        available: f64,
    },
    /// A server does not have enough residual computing capacity.
    InsufficientComputing {
        /// The saturated server.
        server: NodeId,
        /// Computing requested (MHz).
        requested: f64,
        /// Computing available (MHz).
        available: f64,
    },
    /// Releasing more than was allocated (accounting bug guard).
    OverRelease {
        /// Human-readable description of the resource.
        what: String,
    },
    /// A request referenced a node outside the network.
    UnknownNode(NodeId),
    /// A request is malformed and can never be admitted on any network
    /// (empty destination set, non-finite demand, …).
    InfeasibleRequest {
        /// Why the request is infeasible.
        reason: String,
    },
    /// An operation needed residual capacity that no surviving element can
    /// provide (distinct from a per-element shortfall: the pool itself is
    /// exhausted).
    CapacityExhausted {
        /// Human-readable description of the exhausted resource pool.
        what: String,
    },
    /// An operation targeted a link or server that is currently failed.
    DeadElement {
        /// Human-readable description of the dead element.
        what: String,
    },
    /// A cache built against an older [`crate::Sdn::version`] was asked to
    /// serve a query against a newer residual state.
    StaleCache {
        /// Which cache is stale.
        cache: &'static str,
        /// The version the cache was built at.
        cached_version: u64,
        /// The network's current version.
        network_version: u64,
    },
}

impl fmt::Display for SdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdnError::Graph(e) => write!(f, "graph error: {e}"),
            SdnError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value} (must be positive and finite)")
            }
            SdnError::NotAServer(n) => write!(f, "node {n} has no attached server"),
            SdnError::InsufficientBandwidth {
                link,
                requested,
                available,
            } => write!(
                f,
                "link {link} has {available} Mbps available, {requested} requested"
            ),
            SdnError::InsufficientComputing {
                server,
                requested,
                available,
            } => write!(
                f,
                "server {server} has {available} MHz available, {requested} requested"
            ),
            SdnError::OverRelease { what } => {
                write!(f, "released more than allocated on {what}")
            }
            SdnError::UnknownNode(n) => write!(f, "node {n} is not part of the network"),
            SdnError::InfeasibleRequest { reason } => {
                write!(f, "request is infeasible: {reason}")
            }
            SdnError::CapacityExhausted { what } => {
                write!(f, "capacity exhausted: {what}")
            }
            SdnError::DeadElement { what } => write!(f, "{what} is failed"),
            SdnError::StaleCache {
                cache,
                cached_version,
                network_version,
            } => write!(
                f,
                "cache {cache} was built at version {cached_version} but the network is at \
                 version {network_version}"
            ),
        }
    }
}

impl Error for SdnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SdnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SdnError {
    fn from(e: GraphError) -> Self {
        SdnError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SdnError::InsufficientBandwidth {
            link: EdgeId::new(3),
            requested: 100.0,
            available: 40.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("e3"));
        assert!(msg.contains("100"));
        assert!(msg.contains("40"));
    }

    #[test]
    fn graph_error_is_source() {
        let e = SdnError::from(GraphError::NegativeCycle);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SdnError>();
    }
}
