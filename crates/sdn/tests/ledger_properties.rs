//! Property tests for the resource ledger: no operation sequence may
//! drive a residual negative or above capacity, and the exponential cost
//! model stays monotone in utilization.

use netgraph::{EdgeId, NodeId};
use proptest::prelude::*;
use sdn::{Allocation, ExponentialCostModel, RequestId, Sdn, SdnBuilder};

const LINKS: usize = 6;
const SERVERS: usize = 3;

fn build_net() -> Sdn {
    let mut b = SdnBuilder::new();
    let mut nodes = Vec::new();
    for i in 0..(LINKS + 1) {
        if i < SERVERS {
            nodes.push(b.add_server(1_000.0, 1.0));
        } else {
            nodes.push(b.add_switch());
        }
    }
    for i in 0..LINKS {
        b.add_link(nodes[i], nodes[i + 1], 500.0, 1.0).unwrap();
    }
    b.build().unwrap()
}

/// One step in a random allocate/release script.
#[derive(Debug, Clone)]
enum Op {
    Allocate(Allocation),
    ReleaseLast,
    Reset,
}

fn arb_allocation() -> impl Strategy<Value = Allocation> {
    (
        proptest::collection::vec((0..LINKS, 1.0f64..300.0), 0..4),
        proptest::collection::vec((0..SERVERS, 1.0f64..600.0), 0..3),
    )
        .prop_map(|(links, servers)| {
            let mut a = Allocation::new(RequestId(0));
            for (e, amt) in links {
                a.add_link(EdgeId::new(e), amt);
            }
            for (v, amt) in servers {
                a.add_server(NodeId::new(v), amt);
            }
            a
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => arb_allocation().prop_map(Op::Allocate),
            2 => Just(Op::ReleaseLast),
            1 => Just(Op::Reset),
        ],
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn residuals_stay_in_bounds_under_any_script(ops in arb_ops()) {
        let mut sdn = build_net();
        let mut held: Vec<Allocation> = Vec::new();
        for op in ops {
            match op {
                Op::Allocate(a) => {
                    let fits = sdn.can_allocate(&a);
                    let res = sdn.allocate(&a);
                    prop_assert_eq!(fits, res.is_ok());
                    if res.is_ok() {
                        held.push(a);
                    }
                }
                Op::ReleaseLast => {
                    if let Some(a) = held.pop() {
                        sdn.release(&a).expect("held allocations release cleanly");
                    }
                }
                Op::Reset => {
                    sdn.reset();
                    held.clear();
                }
            }
            for e in sdn.graph().edges() {
                let r = sdn.residual_bandwidth(e.id);
                prop_assert!(r >= -1e-6, "negative residual on {}", e.id);
                prop_assert!(r <= sdn.bandwidth_capacity(e.id) + 1e-6);
            }
            for &v in sdn.servers() {
                let r = sdn.residual_computing(v).unwrap();
                prop_assert!(r >= -1e-6);
                prop_assert!(r <= sdn.computing_capacity(v).unwrap() + 1e-6);
            }
        }
    }

    #[test]
    fn exponential_weights_monotone_in_load(load in 0.0f64..450.0, extra in 1.0f64..49.0) {
        let mut sdn = build_net();
        let model = ExponentialCostModel::for_network(&sdn);
        let e = EdgeId::new(0);
        let mut a = Allocation::new(RequestId(0));
        a.add_link(e, load);
        sdn.allocate(&a).unwrap();
        let before = model.edge_weight(&sdn, e);
        let mut a2 = Allocation::new(RequestId(1));
        a2.add_link(e, extra);
        sdn.allocate(&a2).unwrap();
        let after = model.edge_weight(&sdn, e);
        prop_assert!(after > before, "weight fell: {before} -> {after}");
        // Weight bounded by alpha - 1 at full utilization.
        prop_assert!(after <= model.beta - 1.0 + 1e-9);
    }

    #[test]
    fn allocate_then_release_is_identity_on_residuals(a in arb_allocation()) {
        let mut sdn = build_net();
        if sdn.allocate(&a).is_ok() {
            sdn.release(&a).unwrap();
            let fresh = build_net();
            for e in sdn.graph().edges() {
                prop_assert!(
                    (sdn.residual_bandwidth(e.id) - fresh.residual_bandwidth(e.id)).abs() < 1e-6
                );
            }
            for &v in sdn.servers() {
                prop_assert!(
                    (sdn.residual_computing(v).unwrap()
                        - fresh.residual_computing(v).unwrap()).abs() < 1e-6
                );
            }
        }
    }
}
