//! Fig. 5(d–f) as a Criterion benchmark: per-request running time of
//! `Appro_Multi` (K = 3) vs `Alg_One_Server` on GT-ITM/Waxman topologies
//! of 50–250 switches, per `D_max/|V|` ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_multicast::{appro_multi, one_server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::waxman_sdn;
use workload::RequestGenerator;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_running_time");
    group.sample_size(10);
    for ratio in [0.1f64, 0.2] {
        for n in [50usize, 150, 250] {
            let sdn = waxman_sdn(n, 0);
            let mut rng = StdRng::seed_from_u64(5);
            let mut gen = RequestGenerator::new(n).with_dmax_ratio(ratio);
            let requests = gen.generate_batch(8, &mut rng);
            group.bench_with_input(
                BenchmarkId::new("appro_multi_k3", format!("r{ratio}_n{n}")),
                &(&sdn, &requests),
                |b, (sdn, requests)| {
                    let mut i = 0;
                    b.iter(|| {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        appro_multi(sdn, req, 3)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("alg_one_server", format!("r{ratio}_n{n}")),
                &(&sdn, &requests),
                |b, (sdn, requests)| {
                    let mut i = 0;
                    b.iter(|| {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        one_server(sdn, req)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
