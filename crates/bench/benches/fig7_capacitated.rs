//! Fig. 7(b) as a Criterion benchmark: per-request running time of
//! `Appro_Multi_Cap`, both on a fresh network and on one already at
//! ~50 % load (where the residual filtering actually removes links).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_multicast::appro_multi_cap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use sim::waxman_sdn;
use workload::RequestGenerator;

/// Drives the network to roughly 50 % mean link utilization by admitting
/// requests sequentially.
fn preload(sdn: &mut Sdn, n: usize) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.2);
    for _ in 0..200 {
        let req = gen.generate(&mut rng);
        if let Some(tree) = appro_multi_cap(sdn, &req, 3).into_tree() {
            sdn.allocate(&tree.allocation(&req)).expect("admitted fits");
        }
        let mean: f64 = sdn
            .graph()
            .edges()
            .map(|e| sdn.bandwidth_utilization(e.id))
            .sum::<f64>()
            / sdn.link_count() as f64;
        if mean > 0.5 {
            break;
        }
    }
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_running_time");
    group.sample_size(10);
    for n in [50usize, 150, 250] {
        let fresh = waxman_sdn(n, 0);
        let mut loaded = waxman_sdn(n, 0);
        preload(&mut loaded, n);
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.2);
        let requests = gen.generate_batch(8, &mut rng);
        for (label, sdn) in [("fresh", &fresh), ("loaded", &loaded)] {
            group.bench_with_input(
                BenchmarkId::new(format!("appro_multi_cap_{label}"), n),
                &(sdn, &requests),
                |b, (sdn, requests)| {
                    let mut i = 0;
                    b.iter(|| {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        appro_multi_cap(sdn, req, 3)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
