//! Batch admission engine: wall-clock of the parallel speculative
//! planner + sequential commit against the one-at-a-time reference, per
//! batch size, on the Fig. 7 Waxman setting. The two paths produce
//! byte-identical decisions, so any gap is pure engine overhead/savings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_engine::{admit_batch, admit_sequential, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::waxman_sdn;
use workload::RequestGenerator;

fn bench_batch_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);
    let n = 100;
    let sdn = waxman_sdn(n, 0);
    for batch_size in [64usize, 256] {
        let mut rng = StdRng::seed_from_u64(9_001);
        let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.2);
        let requests = gen.generate_batch(batch_size, &mut rng);

        group.bench_with_input(
            BenchmarkId::new("sequential", batch_size),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let mut sdn = sdn.clone();
                    admit_sequential(&mut sdn, requests, 3)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch", batch_size),
            &requests,
            |b, requests| {
                let config = EngineConfig::new(3);
                b.iter(|| {
                    let mut sdn = sdn.clone();
                    admit_batch(&mut sdn, requests, &config)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
