//! Micro-benchmarks for the graph substrate: the inner loops every
//! higher-level algorithm is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgraph::{
    bellman_ford, dijkstra, dijkstra_csr, kruskal, prim, CsrGraph, DijkstraScratch, NodeId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::Waxman;

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    for n in [50usize, 150, 250] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &g, |b, g| {
            b.iter(|| dijkstra(g, NodeId::new(0)));
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| bellman_ford(g, NodeId::new(0)));
        });
        let csr = CsrGraph::from_graph(&g);
        group.bench_with_input(BenchmarkId::new("dijkstra_csr", n), &csr, |b, csr| {
            let mut scratch = DijkstraScratch::default();
            b.iter(|| dijkstra_csr(csr, NodeId::new(0), &mut scratch));
        });
    }
    group.finish();
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    for n in [50usize, 150, 250] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        group.bench_with_input(BenchmarkId::new("kruskal", n), &g, |b, g| {
            b.iter(|| kruskal(g));
        });
        group.bench_with_input(BenchmarkId::new("prim", n), &g, |b, g| {
            b.iter(|| prim(g));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shortest_paths, bench_mst);
criterion_main!(benches);
