//! Fig. 6(c–d) as a Criterion benchmark: per-request running time of the
//! offline algorithms on the real topologies (GÉANT, AS1755) across the
//! `D_max/|V|` sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_multicast::{appro_multi, one_server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use sim::{geant_sdn, isp_sdn};
use workload::RequestGenerator;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_running_time");
    group.sample_size(10);
    type SdnBuilderFn = fn(u64) -> Sdn;
    let topologies: [(&str, SdnBuilderFn); 2] = [("geant", geant_sdn), ("as1755", isp_sdn)];
    for (name, build) in topologies {
        let sdn = build(0);
        for ratio in [0.05f64, 0.2] {
            let mut rng = StdRng::seed_from_u64(6);
            let mut gen = RequestGenerator::new(sdn.node_count()).with_dmax_ratio(ratio);
            let requests = gen.generate_batch(8, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("appro_multi_k3_{name}"), ratio),
                &(&sdn, &requests),
                |b, (sdn, requests)| {
                    let mut i = 0;
                    b.iter(|| {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        appro_multi(sdn, req, 3)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("alg_one_server_{name}"), ratio),
                &(&sdn, &requests),
                |b, (sdn, requests)| {
                    let mut i = 0;
                    b.iter(|| {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        one_server(sdn, req)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
