//! Mehlhorn's single-sweep Steiner construction vs. the per-terminal KMB
//! it replaces, across graph sizes and terminal counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use steiner::{kmb, mehlhorn};
use topology::Waxman;

fn terminals(n: usize, count: usize) -> Vec<NodeId> {
    (0..count).map(|i| NodeId::new((i * n) / count)).collect()
}

fn bench_mehlhorn_vs_kmb(c: &mut Criterion) {
    let mut group = c.benchmark_group("mehlhorn_vs_kmb");
    for n in [50usize, 150, 250] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        for t in [5usize, 15, 30] {
            let terms = terminals(n, t);
            group.bench_with_input(
                BenchmarkId::new("mehlhorn", format!("n{n}_t{t}")),
                &(&g, &terms),
                |b, (g, terms)| {
                    b.iter(|| mehlhorn(g, terms).expect("connected"));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("kmb", format!("n{n}_t{t}")),
                &(&g, &terms),
                |b, (g, terms)| {
                    b.iter(|| kmb(g, terms).expect("connected"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mehlhorn_vs_kmb);
criterion_main!(benches);
