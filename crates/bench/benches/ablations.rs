//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the K sweep of `Appro_Multi` (combination count vs time), the Steiner
//! routine swap inside literal Algorithm 1, and the cost-mode overhead of
//! `Online_CP`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_multicast::{appro_multi, appro_multi_with_steiner, SteinerRoutine};
use nfv_online::{CostMode, OnlineAlgorithm, OnlineCp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::waxman_sdn;
use workload::RequestGenerator;

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_k_sweep");
    group.sample_size(10);
    let n = 150;
    let sdn = waxman_sdn(n, 0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.15);
    let requests = gen.generate_batch(8, &mut rng);
    for k in 1..=4usize {
        group.bench_with_input(BenchmarkId::new("appro_multi", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let req = &requests[i % requests.len()];
                i += 1;
                appro_multi(&sdn, req, k)
            });
        });
    }
    group.finish();
}

fn bench_steiner_routine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_steiner_routine");
    group.sample_size(10);
    let n = 50;
    let sdn = waxman_sdn(n, 0);
    let mut rng = StdRng::seed_from_u64(12);
    let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.15);
    let requests = gen.generate_batch(8, &mut rng);
    for (label, routine) in [("kmb", SteinerRoutine::Kmb), ("sph", SteinerRoutine::Sph)] {
        group.bench_function(BenchmarkId::new("literal_algorithm1", label), |b| {
            let mut i = 0;
            b.iter(|| {
                let req = &requests[i % requests.len()];
                i += 1;
                appro_multi_with_steiner(&sdn, req, 2, routine)
            });
        });
    }
    group.finish();
}

fn bench_cost_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_online_cost_mode");
    group.sample_size(10);
    let n = 100;
    let sdn = waxman_sdn(n, 0);
    let mut rng = StdRng::seed_from_u64(13);
    let mut gen = RequestGenerator::new(n);
    let requests = gen.generate_batch(8, &mut rng);
    for (label, mode) in [
        ("exponential", CostMode::Exponential),
        ("linear", CostMode::Linear),
    ] {
        group.bench_function(BenchmarkId::new("online_cp_admit", label), |b| {
            let mut algo = OnlineCp::with_mode(mode);
            let mut i = 0;
            b.iter(|| {
                let req = &requests[i % requests.len()];
                i += 1;
                algo.admit(&sdn, req)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_k_sweep,
    bench_steiner_routine,
    bench_cost_mode
);
criterion_main!(benches);
