//! The `Appro_Multi` hot path: pruned + scratch-reusing combination scan
//! vs. the unpruned audit scan, and cold-scratch vs. warm-scratch runs,
//! on the paper's Fig. 5 Waxman configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_multicast::{appro_multi, appro_multi_unpruned, appro_multi_with_scratch, ApproScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::waxman_sdn;
use workload::RequestGenerator;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("appro_multi_hot");
    group.sample_size(10);
    for n in [100usize, 250] {
        let sdn = waxman_sdn(n, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.15);
        let requests = gen.generate_batch(8, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("pruned", n),
            &(&sdn, &requests),
            |b, (sdn, requests)| {
                let mut scratch = ApproScratch::new();
                let mut i = 0;
                b.iter(|| {
                    let req = &requests[i % requests.len()];
                    i += 1;
                    appro_multi_with_scratch(sdn, req, 3, &mut scratch)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pruned_cold_scratch", n),
            &(&sdn, &requests),
            |b, (sdn, requests)| {
                let mut i = 0;
                b.iter(|| {
                    let req = &requests[i % requests.len()];
                    i += 1;
                    appro_multi(sdn, req, 3)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unpruned", n),
            &(&sdn, &requests),
            |b, (sdn, requests)| {
                let mut i = 0;
                b.iter(|| {
                    let req = &requests[i % requests.len()];
                    i += 1;
                    appro_multi_unpruned(sdn, req, 3)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
