//! Steiner tree routines: KMB and SPH across graph sizes and terminal
//! counts, plus the Dreyfus–Wagner oracle on small instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use steiner::{dreyfus_wagner, kmb, sph};
use topology::Waxman;

fn terminals(n: usize, count: usize) -> Vec<NodeId> {
    (0..count).map(|i| NodeId::new((i * n) / count)).collect()
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_heuristics");
    for n in [50usize, 150, 250] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        for t in [5usize, 15] {
            let terms = terminals(n, t);
            group.bench_with_input(
                BenchmarkId::new("kmb", format!("n{n}_t{t}")),
                &(&g, &terms),
                |b, (g, terms)| {
                    b.iter(|| kmb(g, terms).expect("connected"));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("sph", format!("n{n}_t{t}")),
                &(&g, &terms),
                |b, (g, terms)| {
                    b.iter(|| sph(g, terms).expect("connected"));
                },
            );
        }
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_exact");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(99);
    let (g, _) = Waxman::new(30).generate(&mut rng);
    for t in [4usize, 6, 8] {
        let terms = terminals(30, t);
        group.bench_with_input(
            BenchmarkId::new("dreyfus_wagner", t),
            &(&g, &terms),
            |b, (g, terms)| {
                b.iter(|| dreyfus_wagner(g, terms).expect("connected"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics, bench_exact);
criterion_main!(benches);
