//! Figs. 8–9 as Criterion benchmarks: the per-request admission decision
//! of `Online_CP` vs `SP`, on synthetic (Fig. 8) and real (Fig. 9)
//! topologies, measured on a half-loaded network — the regime where both
//! algorithms do their real work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_online::{run_online, OnlineAlgorithm, OnlineCp, ShortestPathBaseline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use sim::{geant_sdn, isp_sdn, waxman_sdn};
use workload::RequestGenerator;

/// Admits ~half of a 300-request sequence to produce a realistic mid-run
/// network state.
fn preload(sdn: &mut Sdn) {
    let mut rng = StdRng::seed_from_u64(88);
    let mut gen = RequestGenerator::new(sdn.node_count());
    let requests = gen.generate_batch(150, &mut rng);
    let _ = run_online(sdn, &mut OnlineCp::new(), &requests);
}

fn bench_admission<A: OnlineAlgorithm>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    param: &str,
    sdn: &Sdn,
    mut algo: A,
) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut gen = RequestGenerator::new(sdn.node_count());
    let requests = gen.generate_batch(8, &mut rng);
    group.bench_with_input(
        BenchmarkId::new(label, param),
        &(sdn, &requests),
        |b, (sdn, requests)| {
            let mut i = 0;
            b.iter(|| {
                let req = &requests[i % requests.len()];
                i += 1;
                algo.admit(sdn, req)
            });
        },
    );
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_admission_time");
    group.sample_size(10);
    for n in [50usize, 150, 250] {
        let mut sdn = waxman_sdn(n, 0);
        preload(&mut sdn);
        bench_admission(
            &mut group,
            "online_cp",
            &n.to_string(),
            &sdn,
            OnlineCp::new(),
        );
        bench_admission(
            &mut group,
            "sp",
            &n.to_string(),
            &sdn,
            ShortestPathBaseline::new(),
        );
    }
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_admission_time");
    group.sample_size(10);
    type SdnBuilderFn = fn(u64) -> Sdn;
    let topologies: [(&str, SdnBuilderFn); 2] = [("geant", geant_sdn), ("as1755", isp_sdn)];
    for (name, build) in topologies {
        let mut sdn = build(0);
        preload(&mut sdn);
        bench_admission(&mut group, "online_cp", name, &sdn, OnlineCp::new());
        bench_admission(&mut group, "sp", name, &sdn, ShortestPathBaseline::new());
    }
    group.finish();
}

criterion_group!(benches, bench_fig8, bench_fig9);
criterion_main!(benches);
