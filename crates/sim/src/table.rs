//! ASCII tables and CSV output for experiment series.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, used by every `fig*`
/// binary to print its series the way the paper's plots are read.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned ASCII string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", c, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Serializes the table as CSV (headers + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Writes a table's CSV under `results/<name>.csv`, creating the
/// directory if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(table: &Table, name: &str) -> io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "cost"]);
        t.add_row(vec!["50".into(), "123.4".into()]);
        t.add_row(vec!["100".into(), "7.0".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let t = sample();
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("cost"));
        assert!(r.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "n,cost");
        assert_eq!(lines[1], "50,123.4");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.add_row(vec!["hello,world".into()]);
        assert!(t.to_csv().contains("\"hello,world\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }
}
