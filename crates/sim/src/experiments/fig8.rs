//! Fig. 8: online throughput — requests admitted by `Online_CP` vs `SP`
//! over a monitoring period of 300 requests, as the network size grows.

use crate::{waxman_sdn, ExperimentScale, Table};
use nfv_online::{run_online, OnlineCp, ShortestPathBaseline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RequestGenerator;

/// Network sizes of the sweep.
pub const SIZES: [usize; 5] = [50, 100, 150, 200, 250];

/// Runs the Fig. 8 sweep.
#[must_use]
pub fn run(scale: ExperimentScale) -> Table {
    run_with(&SIZES, scale)
}

/// [`run`] with explicit sizes (tests use reduced sweeps).
#[must_use]
pub fn run_with(sizes: &[usize], scale: ExperimentScale) -> Table {
    let mut table = Table::new(
        "Fig. 8: requests admitted over a 300-request period (Online_CP vs SP)",
        &["n", "Online_CP", "SP", "CP/SP"],
    );
    for &n in sizes {
        let mut cp_total = 0usize;
        let mut sp_total = 0usize;
        for rep in 0..scale.repetitions {
            let mut sdn = waxman_sdn(n, 40 + rep as u64);
            let mut rng = StdRng::seed_from_u64(4_000 + rep as u64);
            let mut gen = RequestGenerator::new(n);
            let requests = gen.generate_batch(scale.online_requests, &mut rng);
            let cp = run_online(&mut sdn, &mut OnlineCp::new(), &requests);
            sdn.reset();
            let sp = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
            cp_total += cp.admitted;
            sp_total += sp.admitted;
        }
        let reps = scale.repetitions.max(1) as f64;
        let (cp_avg, sp_avg) = (cp_total as f64 / reps, sp_total as f64 / reps);
        eprintln!("fig8: n {n}: Online_CP {cp_avg:.1} SP {sp_avg:.1}");
        table.add_row(vec![
            n.to_string(),
            format!("{cp_avg:.1}"),
            format!("{sp_avg:.1}"),
            format!(
                "{:.2}",
                if sp_avg > 0.0 {
                    cp_avg / sp_avg
                } else {
                    f64::NAN
                }
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let t = run_with(
            &[30],
            ExperimentScale {
                offline_requests: 1,
                online_requests: 20,
                repetitions: 1,
            },
        );
        assert_eq!(t.len(), 1);
    }
}
