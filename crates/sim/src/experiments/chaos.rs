//! Chaos replay: a timed session workload interleaved with seeded link
//! and server failure/recovery events, healed by the repair engine and
//! checked by the invariant auditor after **every** event.
//!
//! One deterministic timeline merges three event sources:
//!
//! * session arrivals (Poisson, exponential holding — the same workload
//!   the dynamics experiment uses),
//! * session departures, pre-scheduled at `arrival + duration` for every
//!   *admitted* session — including ones the repair engine tears down
//!   first, so the double-release guard is exercised on purpose,
//! * element toggles at seeded times: a dead element recovers, a live
//!   one fails.
//!
//! Everything is replayed single-threaded in one fixed order, so the
//! survived/repaired/degraded/dropped counts are byte-identical for a
//! given `(params, seed)` regardless of the host's core count. The run
//! ends by recovering all elements, settling pending repairs, departing
//! every survivor, and asserting the network round-trips to its idle
//! state — the residual-conservation property the auditor enforces
//! throughout.

use crate::waxman_sdn;
use nfv_engine::{audit, Departure, RepairConfig, RepairPolicy, SessionManager};
use nfv_multicast::ApproScratch;
use nfv_online::TimedRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdn::RequestId;
use std::collections::BTreeSet;
use workload::{PoissonWorkload, RequestGenerator};

/// Knobs of one chaos replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosParams {
    /// Switches in the Waxman topology (fig5-scale: 100).
    pub n: usize,
    /// Timed sessions offered.
    pub sessions: usize,
    /// Failure/recovery toggle events injected.
    pub events: usize,
    /// Master seed for topology, workload, and chaos events.
    pub seed: u64,
    /// Repair policy for broken sessions.
    pub policy: RepairPolicy,
    /// Replanning attempts per broken session.
    pub max_retries: usize,
}

impl ChaosParams {
    /// The fig5-scale default: 100 switches, degradation allowed, and a
    /// 500-event timeline (200 arrivals + 200 departures + 100 toggles).
    #[must_use]
    pub fn fig5_scale(seed: u64) -> Self {
        ChaosParams {
            n: 100,
            sessions: 200,
            events: 100,
            seed,
            policy: RepairPolicy::Degrade,
            max_retries: 3,
        }
    }
}

/// Final per-session dispositions of one replay. The four disposition
/// counts partition the admitted sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The seed the replay used.
    pub seed: u64,
    /// Sessions offered.
    pub offered: usize,
    /// Sessions admitted at arrival.
    pub admitted: usize,
    /// Sessions rejected at arrival.
    pub rejected: usize,
    /// Admitted sessions never disturbed by a failure.
    pub survived: usize,
    /// Sessions rerouted at least once, full destination set intact.
    pub repaired: usize,
    /// Sessions that lost at least one destination to degradation.
    pub degraded: usize,
    /// Sessions the repair engine tore down for good.
    pub dropped: usize,
    /// Times the double-release guard fired (departures of torn-down
    /// sessions).
    pub double_release_guards: u64,
    /// Failure events applied (toggles that took an element down).
    pub failures: usize,
    /// Recovery events applied (toggles that brought one back).
    pub recoveries: usize,
    /// Auditor passes (one per event, plus the final settle).
    pub audit_checks: usize,
}

impl ChaosOutcome {
    /// Renders the outcome as a JSON object (hand-rolled; the workspace
    /// has no serde_json).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\": {}, \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \
             \"survived\": {}, \"repaired\": {}, \"degraded\": {}, \"dropped\": {}, \
             \"double_release_guards\": {}, \"failures\": {}, \"recoveries\": {}, \
             \"audit_checks\": {}}}",
            self.seed,
            self.offered,
            self.admitted,
            self.rejected,
            self.survived,
            self.repaired,
            self.degraded,
            self.dropped,
            self.double_release_guards,
            self.failures,
            self.recoveries,
            self.audit_checks,
        )
    }
}

enum Event {
    Arrival(Box<TimedRequest>),
    Departure(RequestId),
    /// Toggle element liveness: fail if alive, recover if dead.
    ToggleLink(netgraph::EdgeId),
    ToggleServer(netgraph::NodeId),
}

/// Replays one chaos timeline. Panics if any invariant audit fails or
/// the network does not round-trip to idle — chaos runs double as the
/// strictest integration test of the failure model.
#[must_use]
pub fn run_chaos(params: &ChaosParams) -> ChaosOutcome {
    let mut sdn = waxman_sdn(params.n, params.seed);
    let fresh = sdn.clone();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC4A0_5EED);

    // Sessions with pre-scheduled departures.
    let mut gen = RequestGenerator::new(params.n).with_dmax_ratio(0.2);
    let workload = PoissonWorkload::new(4.0, 25.0);
    let sessions = workload.generate(&mut gen, params.sessions, &mut rng);
    let horizon = sessions.last().map_or(1.0, |s| s.1) + workload.mean_holding;

    let mut timeline: Vec<(f64, usize, Event)> = Vec::new();
    let mut seq = 0usize;
    let mut push = |timeline: &mut Vec<(f64, usize, Event)>, t: f64, ev: Event| {
        timeline.push((t, seq, ev));
        seq += 1;
    };
    for (request, arrival, duration) in sessions {
        let id = request.id;
        let tr = TimedRequest::try_new(request, arrival, duration)
            .expect("generated workloads are well-formed");
        push(&mut timeline, arrival, Event::Arrival(Box::new(tr)));
        push(&mut timeline, arrival + duration, Event::Departure(id));
    }
    // Seeded chaos toggles, biased towards links (servers are scarcer
    // and a server failure is far more disruptive).
    let link_count = sdn.link_count();
    let server_list: Vec<_> = sdn.servers().to_vec();
    for _ in 0..params.events {
        let t = rng.gen_range(0.0..horizon);
        let ev = if rng.gen_bool(0.7) {
            Event::ToggleLink(netgraph::EdgeId::new(rng.gen_range(0..link_count)))
        } else {
            Event::ToggleServer(server_list[rng.gen_range(0..server_list.len())])
        };
        push(&mut timeline, t, ev);
    }
    // Deterministic order: by time, generation sequence breaking ties.
    timeline.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(a.1.cmp(&b.1))
    });

    let config = RepairConfig::new(super::K)
        .with_policy(params.policy)
        .with_max_retries(params.max_retries);
    let mut mgr = SessionManager::new();
    let mut scratch = ApproScratch::new();

    let mut outcome = ChaosOutcome {
        seed: params.seed,
        offered: 0,
        admitted: 0,
        rejected: 0,
        survived: 0,
        repaired: 0,
        degraded: 0,
        dropped: 0,
        double_release_guards: 0,
        failures: 0,
        recoveries: 0,
        audit_checks: 0,
    };
    let mut ever_admitted: BTreeSet<RequestId> = BTreeSet::new();
    let mut was_repaired: BTreeSet<RequestId> = BTreeSet::new();
    let mut was_degraded: BTreeSet<RequestId> = BTreeSet::new();
    let mut was_dropped: BTreeSet<RequestId> = BTreeSet::new();
    let absorb = |mgr_report: &nfv_engine::RepairReport,
                  was_repaired: &mut BTreeSet<RequestId>,
                  was_degraded: &mut BTreeSet<RequestId>,
                  was_dropped: &mut BTreeSet<RequestId>| {
        was_repaired.extend(mgr_report.repaired.iter().copied());
        was_degraded.extend(mgr_report.degraded.iter().map(|&(id, _)| id));
        was_dropped.extend(mgr_report.dropped.iter().copied());
    };

    for (_, _, event) in timeline {
        match event {
            Event::Arrival(tr) => {
                outcome.offered += 1;
                let ok = mgr
                    .admit(&mut sdn, &tr.request, super::K, &mut scratch)
                    .expect("fresh ids never collide");
                if ok {
                    outcome.admitted += 1;
                    ever_admitted.insert(tr.request.id);
                } else {
                    outcome.rejected += 1;
                }
            }
            Event::Departure(id) => {
                // Only sessions that were actually admitted depart; a
                // session the repair engine already dropped trips the
                // double-release guard here, on purpose.
                if ever_admitted.contains(&id) {
                    let _: Departure = mgr.depart(&mut sdn, id).expect("ledger releases cleanly");
                }
            }
            Event::ToggleLink(e) => {
                if sdn.is_link_alive(e) {
                    sdn.fail_link(e).expect("valid link id");
                    outcome.failures += 1;
                } else {
                    sdn.recover_link(e).expect("valid link id");
                    outcome.recoveries += 1;
                }
                let report = mgr.repair(&mut sdn, &config, &mut scratch);
                absorb(
                    &report,
                    &mut was_repaired,
                    &mut was_degraded,
                    &mut was_dropped,
                );
            }
            Event::ToggleServer(v) => {
                if sdn.is_server_alive(v) {
                    sdn.fail_server(v).expect("valid server");
                    outcome.failures += 1;
                } else {
                    sdn.recover_server(v).expect("valid server");
                    outcome.recoveries += 1;
                }
                let report = mgr.repair(&mut sdn, &config, &mut scratch);
                absorb(
                    &report,
                    &mut was_repaired,
                    &mut was_degraded,
                    &mut was_dropped,
                );
            }
        }
        audit(&sdn, &mgr).expect("invariant audit after event");
        outcome.audit_checks += 1;
    }

    // Settle: bring everything back up, give pending repairs one last
    // chance, then drain the survivors.
    sdn.recover_all();
    let report = mgr.repair(&mut sdn, &config, &mut scratch);
    absorb(
        &report,
        &mut was_repaired,
        &mut was_degraded,
        &mut was_dropped,
    );
    // Sessions still pending after a full recovery lack capacity for
    // good: count them as dropped.
    for id in mgr.pending_repairs() {
        let _ = mgr.depart(&mut sdn, id).expect("cancel pending");
        was_dropped.insert(id);
    }
    let survivors: Vec<RequestId> = mgr.sessions().map(|(id, _)| id).collect();
    for id in survivors {
        let _ = mgr.depart(&mut sdn, id).expect("drain survivor");
    }
    // With no live sessions, the audit's conservation check asserts the
    // residuals round-tripped to full capacity (within float tolerance —
    // interleaved allocate/release reorders the sums).
    audit(&sdn, &mgr).expect("invariant audit after settle");
    outcome.audit_checks += 1;
    sdn.reset();
    assert_eq!(sdn, fresh, "liveness and ledger must round-trip to idle");

    outcome.double_release_guards = mgr.double_release_count();
    // Disjoint final dispositions, most severe wins.
    for &id in &ever_admitted {
        if was_dropped.contains(&id) {
            outcome.dropped += 1;
        } else if was_degraded.contains(&id) {
            outcome.degraded += 1;
        } else if was_repaired.contains(&id) {
            outcome.repaired += 1;
        } else {
            outcome.survived += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64, policy: RepairPolicy, max_retries: usize) -> ChaosParams {
        ChaosParams {
            n: 40,
            sessions: 30,
            events: 20,
            seed,
            policy,
            max_retries,
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let p = small(7, RepairPolicy::Degrade, 2);
        let a = run_chaos(&p);
        let b = run_chaos(&p);
        assert_eq!(a, b);
        assert_eq!(a.admitted + a.rejected, a.offered);
        assert_eq!(
            a.survived + a.repaired + a.degraded + a.dropped,
            a.admitted,
            "dispositions partition the admitted sessions"
        );
    }

    #[test]
    fn different_seeds_differ() {
        // Not a hard guarantee, but two seeds agreeing on every count
        // would mean chaos injection is inert.
        let a = run_chaos(&small(1, RepairPolicy::FullReroute, 1));
        let b = run_chaos(&small(2, RepairPolicy::FullReroute, 1));
        assert!(a.failures > 0);
        assert!(a != b || a.offered != b.offered);
    }

    #[test]
    fn reject_policy_never_repairs() {
        let out = run_chaos(&small(3, RepairPolicy::Reject, 5));
        assert_eq!(out.repaired, 0);
        assert_eq!(out.degraded, 0);
    }

    #[test]
    fn json_has_all_fields() {
        let out = run_chaos(&small(5, RepairPolicy::Degrade, 1));
        let json = out.to_json();
        for key in [
            "seed",
            "offered",
            "admitted",
            "rejected",
            "survived",
            "repaired",
            "degraded",
            "dropped",
            "double_release_guards",
            "failures",
            "recoveries",
            "audit_checks",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }
}
