//! Fig. 5(a–f): `Appro_Multi` vs `Alg_One_Server` on GT-ITM/Waxman
//! topologies — operational cost (a–c) and running time (d–f) as the
//! network size grows from 50 to 250, one sub-experiment per
//! `D_max/|V|` ratio.

use super::{average_points, offline_point};
use crate::{waxman_sdn, ExperimentScale, Table};

/// Network sizes the paper sweeps.
pub const SIZES: [usize; 5] = [50, 100, 150, 200, 250];
/// `D_max/|V|` ratios of the three sub-figures.
pub const RATIOS: [f64; 3] = [0.10, 0.15, 0.20];

/// Runs the Fig. 5 sweep at the paper's sizes and ratios, returning the
/// cost table and the running-time table.
#[must_use]
pub fn run(scale: ExperimentScale) -> (Table, Table) {
    run_with(&SIZES, &RATIOS, scale)
}

/// [`run`] with explicit sizes/ratios (tests use reduced sweeps).
#[must_use]
pub fn run_with(sizes: &[usize], ratios: &[f64], scale: ExperimentScale) -> (Table, Table) {
    let mut cost = Table::new(
        "Fig. 5(a-c): operational cost vs network size (Appro_Multi vs Alg_One_Server)",
        &[
            "Dmax/|V|",
            "n",
            "Appro_Multi",
            "Alg_One_Server",
            "ratio",
            "samples",
        ],
    );
    let mut time = Table::new(
        "Fig. 5(d-f): running time per request [ms]",
        &["Dmax/|V|", "n", "Appro_Multi", "Alg_One_Server"],
    );
    for &ratio in ratios {
        for &n in sizes {
            let points: Vec<_> = (0..scale.repetitions)
                .map(|rep| {
                    let sdn = waxman_sdn(n, rep as u64);
                    offline_point(&sdn, ratio, scale.offline_requests, 1_000 + rep as u64)
                })
                .collect();
            let p = average_points(&points);
            eprintln!(
                "fig5: ratio {ratio} n {n}: appro {:.0} base {:.0} ({:.0}%)",
                p.appro_cost,
                p.baseline_cost,
                100.0 * p.cost_ratio()
            );
            cost.add_row(vec![
                format!("{ratio}"),
                n.to_string(),
                format!("{:.1}", p.appro_cost),
                format!("{:.1}", p.baseline_cost),
                format!("{:.3}", p.cost_ratio()),
                p.samples.to_string(),
            ]);
            time.add_row(vec![
                format!("{ratio}"),
                n.to_string(),
                format!("{:.2}", p.appro_time_ms),
                format!("{:.2}", p.baseline_time_ms),
            ]);
        }
    }
    (cost, time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let (cost, time) = run_with(
            &[30, 50],
            &[0.1],
            ExperimentScale {
                offline_requests: 2,
                online_requests: 1,
                repetitions: 1,
            },
        );
        assert_eq!(cost.len(), 2);
        assert_eq!(time.len(), 2);
    }
}
