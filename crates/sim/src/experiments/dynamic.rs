//! Extension experiment (beyond the paper): steady-state admission under
//! arrival/departure dynamics.
//!
//! The paper's Figs. 8–9 fill a network monotonically. Real sessions
//! depart; this sweep offers a Poisson workload at increasing load (in
//! Erlangs) and reports the steady-state admission ratio of `Online_CP`,
//! `Online_CP_Multi` (K = 2), and `SP`.

use crate::{waxman_sdn, ExperimentScale, Table};
use nfv_online::{
    run_dynamic, OnlineAlgorithm, OnlineCp, OnlineCpMulti, ShortestPathBaseline, TimedRequest,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{PoissonWorkload, RequestGenerator};

/// Offered loads (Erlangs) of the sweep.
pub const LOADS: [f64; 4] = [20.0, 40.0, 80.0, 160.0];

/// Runs the dynamics sweep on an `n = 100` Waxman network.
#[must_use]
pub fn run(scale: ExperimentScale) -> Table {
    run_with(&LOADS, scale)
}

/// [`run`] with explicit offered loads (tests use reduced sweeps).
#[must_use]
pub fn run_with(loads: &[f64], scale: ExperimentScale) -> Table {
    let mut table = Table::new(
        "Extension: steady-state admission ratio under Poisson dynamics (n = 100)",
        &["load [Erl]", "Online_CP", "Online_CP_Multi", "SP"],
    );
    let n = 100;
    for &load in loads {
        let mut ratios = [0.0f64; 3];
        for rep in 0..scale.repetitions {
            let mut rng = StdRng::seed_from_u64(9_000 + rep as u64);
            let mut gen = RequestGenerator::new(n);
            // lambda = load / mean_holding; holding fixed at 10 time units.
            let workload = PoissonWorkload::new(load / 10.0, 10.0);
            let sessions: Vec<TimedRequest> = workload
                .generate(&mut gen, scale.online_requests, &mut rng)
                .into_iter()
                .map(|(req, arrival, duration)| TimedRequest::new(req, arrival, duration))
                .collect();
            let algos: [&mut dyn OnlineAlgorithm; 3] = [
                &mut OnlineCp::new(),
                &mut OnlineCpMulti::new(2),
                &mut ShortestPathBaseline::new(),
            ];
            for (i, algo) in algos.into_iter().enumerate() {
                let mut sdn = waxman_sdn(n, 90 + rep as u64);
                let r = run_dynamic(&mut sdn, algo, &sessions);
                ratios[i] += r.admission_ratio();
            }
        }
        let reps = scale.repetitions.max(1) as f64;
        eprintln!(
            "dynamic: load {load}: CP {:.2} Multi {:.2} SP {:.2}",
            ratios[0] / reps,
            ratios[1] / reps,
            ratios[2] / reps
        );
        table.add_row(vec![
            format!("{load}"),
            format!("{:.3}", ratios[0] / reps),
            format!("{:.3}", ratios[1] / reps),
            format!("{:.3}", ratios[2] / reps),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let t = run_with(
            &[10.0],
            ExperimentScale {
                offline_requests: 1,
                online_requests: 30,
                repetitions: 1,
            },
        );
        assert_eq!(t.len(), 1);
    }
}
