//! Fig. 7(a–b): `Appro_Multi_Cap` under resource capacity constraints —
//! operational cost and running time vs network size at
//! `D_max/|V| = 0.2`, with requests admitted *sequentially* so residual
//! capacities (and hence rejections and detours) accumulate.

use crate::{mean, time_it, waxman_sdn, ExperimentScale, Table};
use nfv_multicast::{appro_multi, appro_multi_cap_cached, PathCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RequestGenerator;

/// Network sizes of the sweep.
pub const SIZES: [usize; 5] = [50, 100, 150, 200, 250];
/// The destination ratio Fig. 7 pins.
pub const RATIO: f64 = 0.2;

/// Runs the Fig. 7 sweep. Returns one table with cost, running time,
/// admission counts, and — for context — the uncapacitated `Appro_Multi`
/// cost on the same requests (the Fig. 5(c) vs Fig. 7(a) comparison the
/// paper makes in prose).
#[must_use]
pub fn run(scale: ExperimentScale) -> Table {
    run_with(&SIZES, scale)
}

/// [`run`] with explicit sizes (tests use reduced sweeps).
#[must_use]
pub fn run_with(sizes: &[usize], scale: ExperimentScale) -> Table {
    let mut table = Table::new(
        "Fig. 7: Appro_Multi_Cap under capacity constraints (Dmax/|V| = 0.2)",
        &[
            "n",
            "cap cost",
            "uncap cost",
            "time [ms]",
            "admitted",
            "rejected",
        ],
    );
    // The sequential run uses the online monitoring-period length so
    // residual capacities actually bind; the uncapacitated reference is
    // evaluated on the *same* admitted requests (fresh-network pricing)
    // so the cap-vs-uncap comparison is not skewed by which requests got
    // rejected.
    let requests_per_rep = scale.online_requests.max(scale.offline_requests);
    for &n in sizes {
        let mut cap_costs = Vec::new();
        let mut uncap_costs = Vec::new();
        let mut times = Vec::new();
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for rep in 0..scale.repetitions {
            let fresh = waxman_sdn(n, rep as u64);
            let mut sdn = fresh.clone();
            let mut rng = StdRng::seed_from_u64(3_000 + rep as u64);
            let mut gen = RequestGenerator::new(n).with_dmax_ratio(RATIO);
            // Exercises the engine's capacitated fast path: full-graph
            // SPTs are reused until residual capacities start binding.
            let mut cache = PathCache::new(&sdn);
            for _ in 0..requests_per_rep {
                let req = gen.generate(&mut rng);
                let (adm, t) = time_it(|| appro_multi_cap_cached(&sdn, &req, super::K, &mut cache));
                times.push(t);
                match adm.into_tree() {
                    Some(tree) => {
                        sdn.allocate(&tree.allocation(&req))
                            .expect("admitted tree fits");
                        cap_costs.push(tree.total_cost());
                        if let Some(free) = appro_multi(&fresh, &req, super::K) {
                            uncap_costs.push(free.total_cost());
                        }
                        admitted += 1;
                    }
                    None => rejected += 1,
                }
            }
        }
        eprintln!(
            "fig7: n {n}: cap {:.0} uncap {:.0} admitted {admitted} rejected {rejected}",
            mean(&cap_costs),
            mean(&uncap_costs)
        );
        table.add_row(vec![
            n.to_string(),
            format!("{:.1}", mean(&cap_costs)),
            format!("{:.1}", mean(&uncap_costs)),
            format!("{:.2}", mean(&times)),
            admitted.to_string(),
            rejected.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let t = run_with(
            &[30],
            ExperimentScale {
                offline_requests: 3,
                online_requests: 1,
                repetitions: 1,
            },
        );
        assert_eq!(t.len(), 1);
    }
}
