//! Fig. 9: online throughput on the real topologies — requests admitted
//! by `Online_CP` vs `SP` on GÉANT and AS1755 as the request count grows
//! from 50 to 300.

use crate::{geant_sdn, isp_sdn, ExperimentScale, Table};
use nfv_online::{run_online, OnlineCp, ShortestPathBaseline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use workload::RequestGenerator;

/// Request-count sweep of Fig. 9.
pub const COUNTS: [usize; 6] = [50, 100, 150, 200, 250, 300];

/// Runs the Fig. 9 sweep on both real topologies.
#[must_use]
pub fn run(scale: ExperimentScale) -> Table {
    run_with(&COUNTS, scale)
}

/// [`run`] with explicit request counts (tests use reduced sweeps).
#[must_use]
pub fn run_with(counts: &[usize], scale: ExperimentScale) -> Table {
    let mut table = Table::new(
        "Fig. 9: requests admitted on GEANT / AS1755 (Online_CP vs SP)",
        &["topology", "requests", "Online_CP", "SP", "CP/SP"],
    );
    type SdnBuilderFn = fn(u64) -> Sdn;
    let builders: [(&str, SdnBuilderFn); 2] = [("GEANT", geant_sdn), ("AS1755", isp_sdn)];
    for (name, build) in builders {
        // One 300-request sequence per repetition; each sweep point
        // admits a prefix, exactly like growing the monitoring period.
        for &count in counts {
            let mut cp_total = 0usize;
            let mut sp_total = 0usize;
            for rep in 0..scale.repetitions {
                let mut sdn = build(rep as u64);
                let mut rng = StdRng::seed_from_u64(5_000 + rep as u64);
                let mut gen = RequestGenerator::new(sdn.node_count());
                let requests = gen.generate_batch(count, &mut rng);
                let cp = run_online(&mut sdn, &mut OnlineCp::new(), &requests);
                sdn.reset();
                let sp = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
                cp_total += cp.admitted;
                sp_total += sp.admitted;
            }
            let reps = scale.repetitions.max(1) as f64;
            let (cp_avg, sp_avg) = (cp_total as f64 / reps, sp_total as f64 / reps);
            eprintln!("fig9: {name} x{count}: Online_CP {cp_avg:.1} SP {sp_avg:.1}");
            table.add_row(vec![
                name.to_string(),
                count.to_string(),
                format!("{cp_avg:.1}"),
                format!("{sp_avg:.1}"),
                format!(
                    "{:.2}",
                    if sp_avg > 0.0 {
                        cp_avg / sp_avg
                    } else {
                        f64::NAN
                    }
                ),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let t = run_with(
            &[10, 20],
            ExperimentScale {
                offline_requests: 1,
                online_requests: 20,
                repetitions: 1,
            },
        );
        assert_eq!(t.len(), 4); // 2 topologies x 2 counts
    }
}
