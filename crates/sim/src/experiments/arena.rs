//! The online-algorithm arena: every registered admission policy against
//! every adversarial workload regime.
//!
//! Competitive analysis promises worst-case guarantees; this module
//! measures what actually happens. It sweeps the full algorithm roster —
//! `Online_CP`, `Online_CP_Multi`, `SP`, and the two rival policies
//! `LS_Online` (Lukovszki–Schmid bounded-length) and `EMP_Online`
//! (Even–Medina–Patt-Shamir pricing) — across the four adversarial
//! regimes in [`workload`] (flash crowd, diurnal, heavy tail, capacity
//! starved), on seeded Waxman networks. Every cell reports admission
//! rate, total implementation cost, collected revenue
//! ([`nfv_online::request_revenue`] summed over admissions), and the
//! empirical competitive ratio against [`offline_greedy_benchmark`]. A
//! separate small-instance section scores the same roster against the
//! certified [`offline_exact_benchmark`] oracle on a fixed 12-node
//! topology, where the exponential exact planner is affordable.
//!
//! Determinism is enforced, not assumed: every cell runs **twice** — once
//! with telemetry disabled and once enabled — and the outcomes must match
//! exactly, so the arena doubles as the telemetry-is-side-effect-free
//! check (the `chaos` discipline). The binary (`sim --bin arena`) writes
//! `results/arena.json`, which CI regenerates and byte-compares.

use crate::{waxman_sdn, Table};
use nfv_online::{
    empirical_competitive_ratio, offline_exact_benchmark, offline_greedy_benchmark,
    request_revenue, run_online, EmpPricing, LsChainAdmission, OnlineAlgorithm, OnlineCp,
    OnlineCpMulti, RequestOutcome, ShortestPathBaseline, SimulationResult,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::{MulticastRequest, Sdn, SdnBuilder};
use std::collections::BTreeMap;
use workload::{
    CapacityStarvedWorkload, DiurnalWorkload, FlashCrowdWorkload, HeavyTailWorkload,
    RequestGenerator,
};

/// Arena sweep dimensions.
#[derive(Debug, Clone)]
pub struct ArenaParams {
    /// Waxman network size for the main sweep.
    pub n: usize,
    /// Requests per (workload, seed) cell.
    pub requests: usize,
    /// Requests for the small-instance exact section.
    pub small_requests: usize,
    /// Chain-instance budget `K` passed to the offline benchmarks.
    pub k: usize,
    /// Seeds; each seed pins the network and the workload draws.
    pub seeds: Vec<u64>,
}

impl ArenaParams {
    /// The CI smoke scale: a 40-node network, 60 requests per cell.
    #[must_use]
    pub fn ci_scale(seeds: Vec<u64>) -> Self {
        ArenaParams {
            n: 40,
            requests: 60,
            small_requests: 10,
            k: super::K,
            seeds,
        }
    }

    /// The default interactive scale: 100 nodes, 300 requests per cell.
    #[must_use]
    pub fn default_scale(seeds: Vec<u64>) -> Self {
        ArenaParams {
            n: 100,
            requests: 300,
            small_requests: 14,
            k: super::K,
            seeds,
        }
    }
}

/// The adversarial regimes in fixed sweep order.
pub const REGIMES: [&str; 4] = ["flash_crowd", "diurnal", "heavy_tail", "capacity_starved"];

/// The algorithm roster in fixed sweep order.
pub const ALGORITHMS: [&str; 5] = [
    "Online_CP",
    "Online_CP_Multi",
    "SP",
    "LS_Online",
    "EMP_Online",
];

fn make_algorithm(name: &str, k: usize) -> Box<dyn OnlineAlgorithm> {
    match name {
        "Online_CP" => Box::new(OnlineCp::new()),
        "Online_CP_Multi" => Box::new(OnlineCpMulti::new(k)),
        "SP" => Box::new(ShortestPathBaseline::new()),
        "LS_Online" => Box::new(LsChainAdmission::new()),
        "EMP_Online" => Box::new(EmpPricing::new()),
        other => panic!("unknown arena algorithm {other}"),
    }
}

/// Draws the request sequence for `regime` on an `n`-node network.
///
/// Each regime gets its own RNG stream (`seed` xor a per-regime salt) so
/// adding a regime never perturbs the others' draws. Timing is discarded:
/// the arena drives the static simulator, where the adversarial pressure
/// lives in the request *sequence* (ordering, correlation, demand shape).
fn regime_requests(regime: &str, n: usize, count: usize, seed: u64) -> Vec<MulticastRequest> {
    let span = count as f64;
    let mut gen = RequestGenerator::new(n);
    let sessions = match regime {
        "flash_crowd" => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A5_6C40);
            // Background λ=1 punctured by an 8× burst over ~an eighth of
            // the horizon, converging on a 5-node hot pool.
            FlashCrowdWorkload::new(1.0, 8.0, span / 4.0, span / 8.0)
                .with_hot_pool(5)
                .generate(&mut gen, count, &mut rng)
        }
        "diurnal" => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD107_0A41);
            // Two full day/night cycles over the sequence, 15% trough.
            DiurnalWorkload::new(4.0, span / 8.0, 0.15, 20.0).generate(&mut gen, count, &mut rng)
        }
        "heavy_tail" => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4EA7_1A42);
            // α = 1.1: infinite-variance group sizes.
            HeavyTailWorkload::new(1.1, 2.0, 20.0).generate(&mut gen, count, &mut rng)
        }
        "capacity_starved" => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA2_CE43);
            CapacityStarvedWorkload::new(5.0, 50.0).generate(&mut gen, count, &mut rng)
        }
        other => panic!("unknown arena regime {other}"),
    };
    sessions.into_iter().map(|(req, _, _)| req).collect()
}

/// One scored (workload, seed, algorithm) cell of the main sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaCell {
    /// Adversarial regime label.
    pub workload: &'static str,
    /// Seed pinning the network and the request draws.
    pub seed: u64,
    /// Algorithm name as reported by the policy itself.
    pub algorithm: &'static str,
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Total implementation cost over admissions.
    pub total_cost: f64,
    /// Revenue collected: Σ [`request_revenue`] over admissions.
    pub revenue: f64,
    /// Mean link-bandwidth utilization at the end of the run.
    pub mean_link_utilization: f64,
    /// Admissions of [`offline_greedy_benchmark`] on the same sequence.
    pub offline_admitted: usize,
    /// `admitted / offline_admitted` (∞ when the offline packing admits
    /// nothing but the online policy does; serialized as `null`).
    pub competitive_ratio: f64,
}

/// One scored cell of the small-instance exact section.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallExactCell {
    /// Seed pinning the request draws (the topology is fixed).
    pub seed: u64,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted online.
    pub admitted: usize,
    /// Admissions of [`offline_exact_benchmark`] on the same sequence.
    pub exact_admitted: usize,
    /// `admitted / exact_admitted` with the same conventions as the
    /// main sweep's ratio.
    pub competitive_ratio: f64,
}

/// Everything one arena run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaOutcome {
    /// Main sweep, in (regime, seed, algorithm) order.
    pub cells: Vec<ArenaCell>,
    /// Small-instance exact section, in (seed, algorithm) order.
    pub small: Vec<SmallExactCell>,
}

fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.4}")
    } else {
        "null".to_string()
    }
}

impl ArenaOutcome {
    /// Serializes the outcome as deterministic JSON (fixed row order,
    /// 4-decimal floats, non-finite ratios as `null`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"workload\": \"{}\", \"seed\": {}, \"algorithm\": \"{}\", \
                     \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \
                     \"admission_rate\": {:.4}, \"total_cost\": {:.4}, \
                     \"revenue\": {:.4}, \"mean_link_utilization\": {:.4}, \
                     \"offline_admitted\": {}, \"competitive_ratio\": {}}}",
                    c.workload,
                    c.seed,
                    c.algorithm,
                    c.offered,
                    c.admitted,
                    c.rejected,
                    c.admitted as f64 / (c.offered.max(1)) as f64,
                    c.total_cost,
                    c.revenue,
                    c.mean_link_utilization,
                    c.offline_admitted,
                    fmt_ratio(c.competitive_ratio),
                )
            })
            .collect();
        let small: Vec<String> = self
            .small
            .iter()
            .map(|c| {
                format!(
                    "{{\"seed\": {}, \"algorithm\": \"{}\", \"offered\": {}, \
                     \"admitted\": {}, \"exact_admitted\": {}, \
                     \"competitive_ratio\": {}}}",
                    c.seed,
                    c.algorithm,
                    c.offered,
                    c.admitted,
                    c.exact_admitted,
                    fmt_ratio(c.competitive_ratio),
                )
            })
            .collect();
        format!(
            "{{\"arena\": [\n  {}\n],\n\"small_exact\": [\n  {}\n]}}\n",
            cells.join(",\n  "),
            small.join(",\n  ")
        )
    }

    /// Renders the outcome as the two report tables.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut main = Table::new(
            "Arena: admission under adversarial workloads",
            &[
                "workload",
                "seed",
                "algorithm",
                "offered",
                "admitted",
                "rate",
                "cost",
                "revenue",
                "offline",
                "ratio",
            ],
        );
        for c in &self.cells {
            main.add_row(vec![
                c.workload.to_string(),
                c.seed.to_string(),
                c.algorithm.to_string(),
                c.offered.to_string(),
                c.admitted.to_string(),
                format!("{:.3}", c.admitted as f64 / (c.offered.max(1)) as f64),
                format!("{:.2}", c.total_cost),
                format!("{:.2}", c.revenue),
                c.offline_admitted.to_string(),
                fmt_ratio(c.competitive_ratio),
            ]);
        }
        let mut small = Table::new(
            "Arena: small instances vs the exact offline oracle",
            &["seed", "algorithm", "offered", "admitted", "exact", "ratio"],
        );
        for c in &self.small {
            small.add_row(vec![
                c.seed.to_string(),
                c.algorithm.to_string(),
                c.offered.to_string(),
                c.admitted.to_string(),
                c.exact_admitted.to_string(),
                fmt_ratio(c.competitive_ratio),
            ]);
        }
        vec![main, small]
    }
}

/// Runs one algorithm twice on clones of `base` — telemetry disabled,
/// then enabled — and asserts the outcomes are identical, so telemetry
/// can never steer an admission decision.
///
/// Leaves telemetry **enabled** (the `chaos` convention: accumulated
/// counters feed the final snapshot).
fn run_checked(
    base: &Sdn,
    name: &'static str,
    k: usize,
    requests: &[MulticastRequest],
) -> SimulationResult {
    telemetry::disable();
    let mut net = base.clone();
    let mut alg = make_algorithm(name, k);
    let first = run_online(&mut net, alg.as_mut(), requests);
    telemetry::enable();
    let mut net = base.clone();
    let mut alg = make_algorithm(name, k);
    let second = run_online(&mut net, alg.as_mut(), requests);
    assert_eq!(
        first.outcomes, second.outcomes,
        "{name} diverged with telemetry enabled"
    );
    assert!(
        first.total_cost == second.total_cost,
        "{name} cost diverged with telemetry enabled"
    );
    second
}

/// Σ [`request_revenue`] over the admitted requests of `result`, priced
/// on the fresh network (revenue is a property of the request and the
/// topology, not of the residual state at admission time).
fn collected_revenue(base: &Sdn, requests: &[MulticastRequest], result: &SimulationResult) -> f64 {
    let by_id: BTreeMap<u64, &MulticastRequest> = requests.iter().map(|r| (r.id.0, r)).collect();
    result
        .outcomes
        .iter()
        .filter_map(|o| match o {
            RequestOutcome::Admitted { id, .. } => {
                by_id.get(&id.0).map(|r| request_revenue(base, r))
            }
            RequestOutcome::Rejected { .. } => None,
        })
        .sum()
}

/// The fixed 12-node small-instance topology: a ring with six chords and
/// three servers, small enough for [`offline_exact_benchmark`] yet with
/// enough path diversity that the policies actually disagree.
#[must_use]
pub fn small_arena_sdn() -> Sdn {
    let mut b = SdnBuilder::new();
    let nodes: Vec<_> = (0..12)
        .map(|i| {
            if i == 3 || i == 7 || i == 10 {
                b.add_server(3_000.0, 1.0 + 0.1 * i as f64)
            } else {
                b.add_switch()
            }
        })
        .collect();
    for i in 0..12 {
        b.add_link(nodes[i], nodes[(i + 1) % 12], 600.0, 1.0 + 0.05 * i as f64)
            .expect("ring link");
    }
    for &(u, v) in &[(0, 6), (2, 9), (4, 11), (1, 5), (3, 8), (6, 10)] {
        b.add_link(nodes[u], nodes[v], 400.0, 1.5).expect("chord");
    }
    b.build().expect("small arena topology is well-formed")
}

/// Runs the full arena sweep. See the module docs for what each cell
/// contains; progress goes to stderr via the returned tables only, so
/// callers (binary, tests, CI) decide what to print.
#[must_use]
pub fn run_arena(params: &ArenaParams) -> ArenaOutcome {
    let mut cells = Vec::new();
    for regime in REGIMES {
        for &seed in &params.seeds {
            let base = waxman_sdn(params.n, seed);
            let requests = regime_requests(regime, params.n, params.requests, seed);
            let mut offline_net = base.clone();
            let offline = offline_greedy_benchmark(&mut offline_net, &requests, params.k);
            for name in ALGORITHMS {
                let result = run_checked(&base, name, params.k, &requests);
                telemetry::hit(telemetry::Counter::ArenaCellsScored);
                cells.push(ArenaCell {
                    workload: regime,
                    seed,
                    algorithm: result.algorithm,
                    offered: requests.len(),
                    admitted: result.admitted,
                    rejected: result.rejected,
                    total_cost: result.total_cost,
                    revenue: collected_revenue(&base, &requests, &result),
                    mean_link_utilization: result.mean_link_utilization,
                    offline_admitted: offline.admitted,
                    competitive_ratio: empirical_competitive_ratio(&result, &offline),
                });
            }
        }
    }

    let mut small = Vec::new();
    let base = small_arena_sdn();
    for &seed in &params.seeds {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A11_E4AC);
        let mut gen = RequestGenerator::new(12).with_dmax_ratio(0.25);
        let requests = gen.generate_batch(params.small_requests, &mut rng);
        let mut exact_net = base.clone();
        let exact = offline_exact_benchmark(&mut exact_net, &requests, params.k);
        for name in ALGORITHMS {
            let result = run_checked(&base, name, params.k, &requests);
            telemetry::hit(telemetry::Counter::ArenaCellsScored);
            small.push(SmallExactCell {
                seed,
                algorithm: result.algorithm,
                offered: requests.len(),
                admitted: result.admitted,
                exact_admitted: exact.admitted,
                competitive_ratio: empirical_competitive_ratio(&result, &exact),
            });
        }
    }

    ArenaOutcome { cells, small }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ArenaParams {
        ArenaParams {
            n: 24,
            requests: 16,
            small_requests: 6,
            k: super::super::K,
            seeds: vec![11],
        }
    }

    #[test]
    fn arena_covers_the_full_roster_cross_product() {
        let out = run_arena(&tiny_params());
        assert_eq!(out.cells.len(), REGIMES.len() * ALGORITHMS.len());
        assert_eq!(out.small.len(), ALGORITHMS.len());
        for c in &out.cells {
            assert_eq!(c.offered, 16);
            assert_eq!(c.admitted + c.rejected, c.offered);
            assert!(c.revenue >= 0.0);
            assert!(c.total_cost >= 0.0);
        }
        // The roster reports its own names; the sweep must preserve them.
        let names: Vec<&str> = out.cells.iter().take(5).map(|c| c.algorithm).collect();
        assert_eq!(names, ALGORITHMS.to_vec());
    }

    #[test]
    fn arena_is_deterministic() {
        let a = run_arena(&tiny_params());
        let b = run_arena(&tiny_params());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_well_shaped_and_null_safe() {
        let out = ArenaOutcome {
            cells: vec![ArenaCell {
                workload: "flash_crowd",
                seed: 1,
                algorithm: "Online_CP",
                offered: 4,
                admitted: 2,
                rejected: 2,
                total_cost: 10.5,
                revenue: 3.25,
                mean_link_utilization: 0.125,
                offline_admitted: 0,
                competitive_ratio: f64::INFINITY,
            }],
            small: vec![SmallExactCell {
                seed: 1,
                algorithm: "SP",
                offered: 3,
                admitted: 3,
                exact_admitted: 3,
                competitive_ratio: 1.0,
            }],
        };
        let json = out.to_json();
        // The online-win sentinel serializes as null, never as inf.
        assert!(json.contains("\"competitive_ratio\": null"));
        assert!(json.contains("\"competitive_ratio\": 1.0000"));
        assert!(json.contains("\"admission_rate\": 0.5000"));
        assert!(!json.contains("inf"));
        let tables = out.tables();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 1);
        assert_eq!(tables[1].len(), 1);
    }

    #[test]
    fn small_topology_is_exact_oracle_sized() {
        let sdn = small_arena_sdn();
        assert_eq!(sdn.node_count(), 12);
        assert_eq!(sdn.servers().len(), 3);
        assert!(sdn.node_count() <= steiner::MAX_TERMINALS);
    }
}
