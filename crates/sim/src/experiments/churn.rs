//! Membership churn under fire: live joins/leaves grafted onto running
//! sessions, interleaved with single-link failures, healed either
//! reactively (replan on failure) or proactively (precomputed backup-tree
//! swap), with the invariant auditor checking after **every** event.
//!
//! One deterministic timeline merges four event sources:
//!
//! * session arrivals (Poisson, exponential holding) and their
//!   pre-scheduled departures — the same shape the chaos replay uses,
//! * membership churn ([`workload::MembershipChurn`]): joins grafted via
//!   [`SessionManager::graft`], leaves pruned via
//!   [`SessionManager::prune`], landed round-robin on the live sessions,
//! * fault events: **fail-heaviest** (the alive link carrying the most
//!   load goes down — the worst single-link failure for the committed
//!   trees) alternating with **recover-oldest** once two links are down.
//!
//! The proactive and reactive replays consume byte-identical workloads,
//! so their outcome rows compare failover cost directly: `plan_events`
//! (planner invocations spent restoring sessions — the logical repair
//! latency) versus `backup_swaps` (O(commit) restores), plus the
//! standing reserved-bandwidth overhead the `Reserved` policy pays for
//! its zero-miss swaps.

use crate::waxman_sdn;
use netgraph::EdgeId;
use nfv_engine::{
    audit, BackupPolicy, GraftOutcome, PruneOutcome, RepairConfig, RepairPolicy, ResilienceConfig,
    SessionManager,
};
use nfv_multicast::ApproScratch;
use nfv_online::TimedRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdn::{RequestId, Sdn};
use std::collections::{BTreeSet, VecDeque};
use workload::{ChurnAction, MembershipChurn, PoissonWorkload, RequestGenerator};

/// Protection discipline of one churn replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnMode {
    /// No backups: failures are healed by reactive replanning only.
    Reactive,
    /// Backup trees precomputed at admission under the given policy.
    Proactive(BackupPolicy),
}

impl ChurnMode {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChurnMode::Reactive => "reactive",
            ChurnMode::Proactive(BackupPolicy::BestEffort) => "proactive-best-effort",
            ChurnMode::Proactive(BackupPolicy::Reserved) => "proactive-reserved",
        }
    }
}

/// Knobs of one churn replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnParams {
    /// Switches in the Waxman topology.
    pub n: usize,
    /// Timed sessions offered.
    pub sessions: usize,
    /// Membership churn events (joins + leaves).
    pub churn_events: usize,
    /// Fault events (fail-heaviest / recover-oldest alternation).
    pub faults: usize,
    /// Master seed for topology, workload, churn, and fault times.
    pub seed: u64,
    /// Protection discipline.
    pub mode: ChurnMode,
}

impl ChurnParams {
    /// The CI-scale default: 60 switches, 80 sessions, 60 churn events,
    /// 12 faults.
    #[must_use]
    pub fn ci_scale(seed: u64, mode: ChurnMode) -> Self {
        ChurnParams {
            n: 60,
            sessions: 80,
            churn_events: 60,
            faults: 12,
            seed,
            mode,
        }
    }
}

/// Counters of one churn replay. Every field is derived from return
/// values (`RepairReport`, graft/prune outcomes), never from telemetry,
/// so the double-run determinism check compares real engine behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// The seed the replay used.
    pub seed: u64,
    /// The protection discipline (see [`ChurnMode::label`]).
    pub mode: &'static str,
    /// Sessions offered / admitted / rejected at arrival.
    pub offered: usize,
    /// Sessions admitted at arrival.
    pub admitted: usize,
    /// Sessions rejected at arrival.
    pub rejected: usize,
    /// Destinations grafted onto live sessions.
    pub grafts: usize,
    /// Destinations pruned off live sessions.
    pub prunes: usize,
    /// Churn events that found no applicable live session (already a
    /// member, unreachable, last destination, or nothing live).
    pub churn_noops: usize,
    /// Failures injected (fail-heaviest events).
    pub failures: usize,
    /// Recoveries injected (recover-oldest events).
    pub recoveries: usize,
    /// Sessions restored by a precomputed backup-tree swap (0 reactive).
    pub backup_swaps: usize,
    /// Sessions restored by reactive replanning.
    pub replanned: usize,
    /// Sessions that lost destinations or were torn down.
    pub degraded_or_dropped: usize,
    /// Planner invocations spent restoring broken sessions — the logical
    /// failover latency (swaps contribute zero).
    pub plan_events: u64,
    /// Peak bandwidth held by reserved backup trees (0 unless the
    /// `Reserved` policy runs).
    pub peak_reserved_bandwidth: f64,
    /// Arrivals offered / admitted after the first failure — the
    /// post-failure admission rate numerator and denominator.
    pub offered_after_first_failure: usize,
    /// Arrivals admitted after the first failure.
    pub admitted_after_first_failure: usize,
    /// Auditor passes (one per event, plus the final settle).
    pub audit_checks: usize,
}

impl ChurnOutcome {
    /// Renders the outcome as a JSON object (hand-rolled; the workspace
    /// has no serde_json).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\": {}, \"mode\": \"{}\", \"offered\": {}, \"admitted\": {}, \
             \"rejected\": {}, \"grafts\": {}, \"prunes\": {}, \"churn_noops\": {}, \
             \"failures\": {}, \"recoveries\": {}, \"backup_swaps\": {}, \
             \"replanned\": {}, \"degraded_or_dropped\": {}, \"plan_events\": {}, \
             \"peak_reserved_bandwidth\": {:.3}, \"offered_after_first_failure\": {}, \
             \"admitted_after_first_failure\": {}, \"audit_checks\": {}}}",
            self.seed,
            self.mode,
            self.offered,
            self.admitted,
            self.rejected,
            self.grafts,
            self.prunes,
            self.churn_noops,
            self.failures,
            self.recoveries,
            self.backup_swaps,
            self.replanned,
            self.degraded_or_dropped,
            self.plan_events,
            self.peak_reserved_bandwidth,
            self.offered_after_first_failure,
            self.admitted_after_first_failure,
            self.audit_checks,
        )
    }
}

enum Event {
    Arrival(Box<TimedRequest>),
    Departure(RequestId),
    Churn(ChurnAction),
    Fault,
}

/// The alive link carrying the most allocated bandwidth (capacity minus
/// residual), ties broken by ascending link id — the most disruptive
/// single-link failure for the current commitments.
fn heaviest_alive_link(sdn: &Sdn) -> Option<EdgeId> {
    let mut best: Option<(f64, EdgeId)> = None;
    for e in sdn.graph().edges() {
        if !sdn.is_link_alive(e.id) {
            continue;
        }
        let load = sdn.bandwidth_capacity(e.id) - sdn.residual_bandwidth(e.id);
        let better = match best {
            None => true,
            Some((bl, _)) => load > bl + 1e-12,
        };
        if better {
            best = Some((load, e.id));
        }
    }
    best.map(|(_, e)| e)
}

/// Replays one churn timeline. Panics if any invariant audit fails or
/// the network does not round-trip to idle.
#[must_use]
pub fn run_churn(params: &ChurnParams) -> ChurnOutcome {
    let mut sdn = waxman_sdn(params.n, params.seed);
    let fresh = sdn.clone();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC4_0211);

    let mut gen = RequestGenerator::new(params.n).with_dmax_ratio(0.2);
    let workload = PoissonWorkload::new(4.0, 25.0);
    let sessions = workload.generate(&mut gen, params.sessions, &mut rng);
    let horizon = sessions.last().map_or(1.0, |s| s.1) + workload.mean_holding;

    let mut timeline: Vec<(f64, usize, Event)> = Vec::new();
    let mut seq = 0usize;
    let mut push = |timeline: &mut Vec<(f64, usize, Event)>, t: f64, ev: Event| {
        timeline.push((t, seq, ev));
        seq += 1;
    };
    for (request, arrival, duration) in sessions {
        let id = request.id;
        let tr = TimedRequest::try_new(request, arrival, duration)
            .expect("generated workloads are well-formed");
        push(&mut timeline, arrival, Event::Arrival(Box::new(tr)));
        push(&mut timeline, arrival + duration, Event::Departure(id));
    }
    let churn_rate = (params.churn_events.max(1) as f64 / horizon).max(1e-6);
    for ev in
        MembershipChurn::new(churn_rate, 0.6).events_for(params.n, params.churn_events, &mut rng)
    {
        push(&mut timeline, ev.time.min(horizon), Event::Churn(ev.action));
    }
    for _ in 0..params.faults {
        let t = rng.gen_range(0.0..horizon);
        push(&mut timeline, t, Event::Fault);
    }
    timeline.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(a.1.cmp(&b.1))
    });

    let repair = RepairConfig::new(super::K)
        .with_policy(RepairPolicy::Degrade)
        .with_max_retries(3);
    let mut mgr = match params.mode {
        ChurnMode::Reactive => SessionManager::new(),
        ChurnMode::Proactive(policy) => SessionManager::with_resilience(
            ResilienceConfig::new(super::K)
                .with_policy(policy)
                .with_top_f(2),
        ),
    };
    let mut scratch = ApproScratch::new();

    let mut out = ChurnOutcome {
        seed: params.seed,
        mode: params.mode.label(),
        offered: 0,
        admitted: 0,
        rejected: 0,
        grafts: 0,
        prunes: 0,
        churn_noops: 0,
        failures: 0,
        recoveries: 0,
        backup_swaps: 0,
        replanned: 0,
        degraded_or_dropped: 0,
        plan_events: 0,
        peak_reserved_bandwidth: 0.0,
        offered_after_first_failure: 0,
        admitted_after_first_failure: 0,
        audit_checks: 0,
    };
    let mut ever_admitted: BTreeSet<RequestId> = BTreeSet::new();
    let mut failed_links: VecDeque<EdgeId> = VecDeque::new();
    let mut churn_cursor = 0usize;

    for (_, _, event) in timeline {
        match event {
            Event::Arrival(tr) => {
                out.offered += 1;
                let after_failure = out.failures > 0;
                if after_failure {
                    out.offered_after_first_failure += 1;
                }
                let ok = mgr
                    .admit(&mut sdn, &tr.request, super::K, &mut scratch)
                    .expect("fresh ids never collide");
                if ok {
                    out.admitted += 1;
                    if after_failure {
                        out.admitted_after_first_failure += 1;
                    }
                    ever_admitted.insert(tr.request.id);
                    if matches!(params.mode, ChurnMode::Proactive(_)) {
                        let _ = mgr.protect(&mut sdn, tr.request.id, &mut scratch);
                    }
                } else {
                    out.rejected += 1;
                }
            }
            Event::Departure(id) => {
                if ever_admitted.contains(&id) {
                    let _ = mgr.depart(&mut sdn, id).expect("ledger releases cleanly");
                }
            }
            Event::Churn(action) => {
                // Land the event on a live session, round-robin so churn
                // spreads instead of hammering the smallest id.
                let live: Vec<RequestId> = mgr.sessions().map(|(id, _)| id).collect();
                if live.is_empty() {
                    out.churn_noops += 1;
                } else {
                    let target = live[churn_cursor % live.len()];
                    churn_cursor += 1;
                    match action {
                        ChurnAction::Join(v) => {
                            match mgr.graft(&mut sdn, target, v, &mut scratch) {
                                GraftOutcome::Grafted { .. } => out.grafts += 1,
                                _ => out.churn_noops += 1,
                            }
                        }
                        ChurnAction::Leave(idx) => {
                            let victim = mgr.session(target).and_then(|s| {
                                let d = &s.request.destinations;
                                d.get(idx % d.len()).copied()
                            });
                            match victim.map(|v| mgr.prune(&mut sdn, target, v, &mut scratch)) {
                                Some(PruneOutcome::Pruned { .. }) => out.prunes += 1,
                                _ => out.churn_noops += 1,
                            }
                        }
                    }
                }
            }
            Event::Fault => {
                // Recover the oldest dead link once two are down; fail the
                // heaviest-loaded alive link otherwise.
                if failed_links.len() >= 2 {
                    let e = failed_links.pop_front().expect("len checked");
                    sdn.recover_link(e).expect("tracked failed link");
                    out.recoveries += 1;
                } else if let Some(e) = heaviest_alive_link(&sdn) {
                    sdn.fail_link(e).expect("alive link");
                    failed_links.push_back(e);
                    out.failures += 1;
                }
                let report = mgr.repair(&mut sdn, &repair, &mut scratch);
                out.backup_swaps += report.swapped.len();
                out.replanned += report.repaired.len();
                out.degraded_or_dropped += report.degraded.len() + report.dropped.len();
                out.plan_events += report.plan_events;
            }
        }
        out.peak_reserved_bandwidth = out
            .peak_reserved_bandwidth
            .max(mgr.reserved_backup_bandwidth());
        audit(&sdn, &mgr).expect("invariant audit after event");
        out.audit_checks += 1;
    }

    // Settle: recover everything, give pending repairs one last chance,
    // drain the survivors, and assert the idle round-trip.
    sdn.recover_all();
    let report = mgr.repair(&mut sdn, &repair, &mut scratch);
    out.backup_swaps += report.swapped.len();
    out.replanned += report.repaired.len();
    out.degraded_or_dropped += report.degraded.len() + report.dropped.len();
    out.plan_events += report.plan_events;
    for id in mgr.pending_repairs() {
        let _ = mgr.depart(&mut sdn, id).expect("cancel pending");
    }
    let survivors: Vec<RequestId> = mgr.sessions().map(|(id, _)| id).collect();
    for id in survivors {
        let _ = mgr.depart(&mut sdn, id).expect("drain survivor");
    }
    audit(&sdn, &mgr).expect("invariant audit after settle");
    out.audit_checks += 1;
    sdn.reset();
    assert_eq!(sdn, fresh, "liveness and ledger must round-trip to idle");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64, mode: ChurnMode) -> ChurnParams {
        ChurnParams {
            n: 40,
            sessions: 30,
            churn_events: 25,
            faults: 8,
            seed,
            mode,
        }
    }

    #[test]
    fn replay_is_deterministic_per_mode() {
        for mode in [
            ChurnMode::Reactive,
            ChurnMode::Proactive(BackupPolicy::BestEffort),
            ChurnMode::Proactive(BackupPolicy::Reserved),
        ] {
            let p = small(7, mode);
            let a = run_churn(&p);
            let b = run_churn(&p);
            assert_eq!(a, b, "{mode:?}");
            assert_eq!(a.admitted + a.rejected, a.offered);
        }
    }

    #[test]
    fn churn_exercises_grafts_and_prunes() {
        let out = run_churn(&small(3, ChurnMode::Reactive));
        assert!(out.grafts > 0, "no grafts landed: {out:?}");
        assert!(out.prunes > 0, "no prunes landed: {out:?}");
        assert_eq!(out.backup_swaps, 0, "reactive mode must never swap");
    }

    #[test]
    fn proactive_swaps_where_reactive_replans() {
        let reactive = run_churn(&small(5, ChurnMode::Reactive));
        let proactive = run_churn(&small(5, ChurnMode::Proactive(BackupPolicy::BestEffort)));
        assert!(proactive.backup_swaps > 0, "no swap landed: {proactive:?}");
        assert!(
            proactive.plan_events < reactive.plan_events || reactive.plan_events == 0,
            "proactive ({}) must beat reactive ({}) on plan events",
            proactive.plan_events,
            reactive.plan_events
        );
    }

    #[test]
    fn reserved_policy_holds_capacity() {
        let out = run_churn(&small(9, ChurnMode::Proactive(BackupPolicy::Reserved)));
        assert!(out.peak_reserved_bandwidth > 0.0);
        let best_effort = run_churn(&small(9, ChurnMode::Proactive(BackupPolicy::BestEffort)));
        assert_eq!(best_effort.peak_reserved_bandwidth, 0.0);
    }

    #[test]
    fn json_has_all_fields() {
        let out = run_churn(&small(1, ChurnMode::Proactive(BackupPolicy::Reserved)));
        for key in [
            "seed",
            "mode",
            "offered",
            "admitted",
            "grafts",
            "prunes",
            "backup_swaps",
            "replanned",
            "plan_events",
            "peak_reserved_bandwidth",
            "offered_after_first_failure",
            "admitted_after_first_failure",
            "audit_checks",
        ] {
            assert!(
                out.to_json().contains(&format!("\"{key}\"")),
                "missing {key}"
            );
        }
    }
}
