//! One module per paper figure, plus the ablation suite.
//!
//! Every `run` function takes an [`ExperimentScale`](crate::ExperimentScale)
//! and returns the tables it produced (also printing progress to stderr),
//! so the binaries and the integration tests share one code path.

pub mod ablation;
pub mod arena;
pub mod batch;
pub mod chaos;
pub mod churn;
pub mod dynamic;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::{mean, time_it};
use nfv_multicast::{appro_multi_cached, one_server, PathCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use workload::RequestGenerator;

/// The number of chain instances `Appro_Multi` may place (the paper's
/// default, §VI-A).
pub const K: usize = 3;

/// Aggregated offline comparison numbers for one data point.
#[derive(Debug, Clone, Copy)]
pub struct OfflinePoint {
    /// Mean `Appro_Multi` implementation cost per request.
    pub appro_cost: f64,
    /// Mean `Alg_One_Server` implementation cost per request.
    pub baseline_cost: f64,
    /// Mean `Appro_Multi` running time per request (ms).
    pub appro_time_ms: f64,
    /// Mean `Alg_One_Server` running time per request (ms).
    pub baseline_time_ms: f64,
    /// Requests actually measured (infeasible ones are skipped).
    pub samples: usize,
}

impl OfflinePoint {
    /// `Appro_Multi` cost as a fraction of the baseline's.
    #[must_use]
    pub fn cost_ratio(&self) -> f64 {
        if self.baseline_cost == 0.0 {
            f64::NAN
        } else {
            self.appro_cost / self.baseline_cost
        }
    }
}

/// Runs the paired offline comparison (`Appro_Multi` vs `Alg_One_Server`)
/// on one network for `requests` generated requests with the given
/// `D_max/|V|` ratio.
#[must_use]
pub fn offline_point(sdn: &Sdn, ratio: f64, requests: usize, seed: u64) -> OfflinePoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = RequestGenerator::new(sdn.node_count()).with_dmax_ratio(ratio);
    // Requests are priced on the same fresh network, so the per-source
    // SSSP cache is shared by the whole sweep (decisions are identical
    // to the uncached path; only the running time drops).
    let mut cache = PathCache::new(sdn);
    let mut appro_costs = Vec::new();
    let mut base_costs = Vec::new();
    let mut appro_times = Vec::new();
    let mut base_times = Vec::new();
    for _ in 0..requests {
        let req = gen.generate(&mut rng);
        let (appro, t_a) = time_it(|| appro_multi_cached(sdn, &req, K, &mut cache));
        let (base, t_b) = time_it(|| one_server(sdn, &req));
        let (Some(appro), Some(base)) = (appro, base) else {
            continue; // unreachable destination set on this topology
        };
        appro_costs.push(appro.total_cost());
        base_costs.push(base.total_cost());
        appro_times.push(t_a);
        base_times.push(t_b);
    }
    OfflinePoint {
        appro_cost: mean(&appro_costs),
        baseline_cost: mean(&base_costs),
        appro_time_ms: mean(&appro_times),
        baseline_time_ms: mean(&base_times),
        samples: appro_costs.len(),
    }
}

/// Averages several [`OfflinePoint`]s (per-seed repetitions), weighting
/// each repetition equally.
#[must_use]
pub fn average_points(points: &[OfflinePoint]) -> OfflinePoint {
    OfflinePoint {
        appro_cost: mean(&points.iter().map(|p| p.appro_cost).collect::<Vec<_>>()),
        baseline_cost: mean(&points.iter().map(|p| p.baseline_cost).collect::<Vec<_>>()),
        appro_time_ms: mean(&points.iter().map(|p| p.appro_time_ms).collect::<Vec<_>>()),
        baseline_time_ms: mean(
            &points
                .iter()
                .map(|p| p.baseline_time_ms)
                .collect::<Vec<_>>(),
        ),
        samples: points.iter().map(|p| p.samples).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waxman_sdn;

    #[test]
    fn offline_point_produces_sane_numbers() {
        let sdn = waxman_sdn(50, 1);
        let p = offline_point(&sdn, 0.1, 5, 42);
        assert!(p.samples > 0);
        assert!(p.appro_cost > 0.0);
        assert!(p.baseline_cost > 0.0);
        assert!(p.appro_time_ms >= 0.0);
        assert!(p.cost_ratio().is_finite());
    }

    #[test]
    fn average_points_averages() {
        let a = OfflinePoint {
            appro_cost: 1.0,
            baseline_cost: 2.0,
            appro_time_ms: 3.0,
            baseline_time_ms: 4.0,
            samples: 5,
        };
        let b = OfflinePoint {
            appro_cost: 3.0,
            baseline_cost: 4.0,
            appro_time_ms: 5.0,
            baseline_time_ms: 6.0,
            samples: 7,
        };
        let avg = average_points(&[a, b]);
        assert_eq!(avg.appro_cost, 2.0);
        assert_eq!(avg.baseline_cost, 3.0);
        assert_eq!(avg.samples, 12);
    }
}
