//! Fig. 6(a–d): `Appro_Multi` vs `Alg_One_Server` on the real topologies
//! (GÉANT and AS1755) — operational cost (a–b) and running time (c–d) as
//! `D_max/|V|` grows from 0.05 to 0.2.

use super::{average_points, offline_point};
use crate::{geant_sdn, isp_sdn, ExperimentScale, Table};
use sdn::Sdn;

/// The `D_max/|V|` sweep of Fig. 6.
pub const RATIOS: [f64; 4] = [0.05, 0.10, 0.15, 0.20];

/// Runs the Fig. 6 sweep, returning the cost table and the running-time
/// table (both with one row per topology × ratio).
#[must_use]
pub fn run(scale: ExperimentScale) -> (Table, Table) {
    run_with(&RATIOS, scale)
}

/// [`run`] with explicit ratios (tests use reduced sweeps).
#[must_use]
pub fn run_with(ratios: &[f64], scale: ExperimentScale) -> (Table, Table) {
    let mut cost = Table::new(
        "Fig. 6(a-b): operational cost in GEANT / AS1755",
        &[
            "topology",
            "Dmax/|V|",
            "Appro_Multi",
            "Alg_One_Server",
            "ratio",
            "samples",
        ],
    );
    let mut time = Table::new(
        "Fig. 6(c-d): running time per request [ms]",
        &["topology", "Dmax/|V|", "Appro_Multi", "Alg_One_Server"],
    );
    type SdnBuilderFn = fn(u64) -> Sdn;
    let builders: [(&str, SdnBuilderFn); 2] = [("GEANT", geant_sdn), ("AS1755", isp_sdn)];
    for (name, build) in builders {
        for &ratio in ratios {
            let points: Vec<_> = (0..scale.repetitions)
                .map(|rep| {
                    let sdn = build(rep as u64);
                    offline_point(&sdn, ratio, scale.offline_requests, 2_000 + rep as u64)
                })
                .collect();
            let p = average_points(&points);
            eprintln!(
                "fig6: {name} ratio {ratio}: appro {:.0} base {:.0} ({:.0}%)",
                p.appro_cost,
                p.baseline_cost,
                100.0 * p.cost_ratio()
            );
            cost.add_row(vec![
                name.to_string(),
                format!("{ratio}"),
                format!("{:.1}", p.appro_cost),
                format!("{:.1}", p.baseline_cost),
                format!("{:.3}", p.cost_ratio()),
                p.samples.to_string(),
            ]);
            time.add_row(vec![
                name.to_string(),
                format!("{ratio}"),
                format!("{:.2}", p.appro_time_ms),
                format!("{:.2}", p.baseline_time_ms),
            ]);
        }
    }
    (cost, time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let (cost, time) = run_with(
            &[0.1],
            ExperimentScale {
                offline_requests: 2,
                online_requests: 1,
                repetitions: 1,
            },
        );
        assert_eq!(cost.len(), 2); // two topologies
        assert_eq!(time.len(), 2);
    }
}
