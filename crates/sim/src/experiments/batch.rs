//! Batch-engine throughput: wall-clock of [`nfv_engine::admit_batch`]
//! (parallel speculative planning + sequential commit) against the
//! one-at-a-time [`nfv_engine::admit_sequential`] reference, on the same
//! Waxman setting as Fig. 7. Decisions are byte-identical by
//! construction; this sweep measures how much wall-clock the speculative
//! phase saves and how often commits survive without re-planning.

use crate::{waxman_sdn, ExperimentScale, Table};
use nfv_engine::{admit_batch, admit_sequential, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RequestGenerator;

/// Network sizes of the sweep.
pub const SIZES: [usize; 2] = [100, 200];
/// Batch sizes of the sweep (the acceptance target is ≥ 64).
pub const BATCHES: [usize; 2] = [64, 256];
/// The destination ratio (matches Fig. 7).
pub const RATIO: f64 = 0.2;

/// Runs the batch-engine sweep. Returns one table with sequential and
/// batch wall-clock per batch, the speedup, and the commit-phase
/// statistics. Panics if batch and sequential decisions ever diverge —
/// the sweep doubles as an end-to-end equivalence check.
#[must_use]
pub fn run(scale: ExperimentScale) -> Table {
    run_with(&SIZES, &BATCHES, scale)
}

/// [`run`] with explicit sizes (tests use reduced sweeps).
#[must_use]
pub fn run_with(sizes: &[usize], batches: &[usize], scale: ExperimentScale) -> Table {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut table = Table::new(
        &format!("Batch admission engine vs sequential ({workers} workers, Dmax/|V| = 0.2)"),
        &[
            "n",
            "batch",
            "seq [ms]",
            "batch [ms]",
            "speedup",
            "admitted",
            "spec hits",
            "replanned",
        ],
    );
    for &n in sizes {
        for &batch_size in batches {
            let mut seq_ms = 0.0;
            let mut batch_ms = 0.0;
            let mut admitted = 0usize;
            let mut spec = 0usize;
            let mut replanned = 0usize;
            for rep in 0..scale.repetitions {
                let fresh = waxman_sdn(n, rep as u64);
                let mut rng = StdRng::seed_from_u64(9_000 + rep as u64);
                let mut gen = RequestGenerator::new(n).with_dmax_ratio(RATIO);
                let requests = gen.generate_batch(batch_size, &mut rng);

                let mut seq_sdn = fresh.clone();
                let t0 = std::time::Instant::now();
                let seq = admit_sequential(&mut seq_sdn, &requests, super::K);
                seq_ms += t0.elapsed().as_secs_f64() * 1e3;

                let mut batch_sdn = fresh.clone();
                let config = EngineConfig::new(super::K);
                let t0 = std::time::Instant::now();
                let (par, report) = admit_batch(&mut batch_sdn, &requests, &config);
                batch_ms += t0.elapsed().as_secs_f64() * 1e3;

                assert_eq!(seq, par, "batch diverged from sequential (n {n})");
                assert_eq!(seq_sdn, batch_sdn, "network state diverged (n {n})");
                admitted += report.admitted;
                spec += report.speculative_hits;
                replanned += report.replanned;
            }
            eprintln!(
                "batch: n {n} batch {batch_size}: seq {seq_ms:.0} ms batch {batch_ms:.0} ms \
                 ({:.2}x), {spec} speculative / {replanned} replanned",
                seq_ms / batch_ms
            );
            table.add_row(vec![
                n.to_string(),
                batch_size.to_string(),
                format!("{seq_ms:.1}"),
                format!("{batch_ms:.1}"),
                format!("{:.2}", seq_ms / batch_ms),
                admitted.to_string(),
                spec.to_string(),
                replanned.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_fills_all_points() {
        let t = run_with(
            &[30],
            &[8],
            ExperimentScale {
                offline_requests: 3,
                online_requests: 1,
                repetitions: 1,
            },
        );
        assert_eq!(t.len(), 1);
    }
}
