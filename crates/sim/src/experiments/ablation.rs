//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Cost model** — `Online_CP` with exponential vs linear pricing
//!    (the paper's central online claim).
//! 2. **Threshold rule** — per-edge vs literal tree-sum `σ_e` (see
//!    [`nfv_online::ThresholdRule`]).
//! 3. **K sweep** — `Appro_Multi` with K = 1..4: cost falls, time rises.
//! 4. **Steiner routine** — KMB vs Takahashi–Matsuyama inside the literal
//!    Algorithm 1.
//! 5. **Competitive ratio** — `Online_CP` against the offline greedy
//!    benchmark.
//! 6. **Local search** — KMB with/without key-path refinement.

use crate::{mean, time_it, waxman_sdn, ExperimentScale, Table};
use nfv_multicast::{appro_multi, appro_multi_with_steiner, SteinerRoutine};
use nfv_online::{run_online, CostMode, OnlineCp, ThresholdRule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RequestGenerator;

/// Runs all four ablations; returns one table each.
#[must_use]
pub fn run(scale: ExperimentScale) -> Vec<Table> {
    vec![
        cost_model(scale),
        threshold_rule(scale),
        k_sweep(scale),
        steiner_routine(scale),
        competitive_ratio(scale),
        local_search(scale),
    ]
}

/// Ablation 1: exponential vs linear pricing in `Online_CP`.
#[must_use]
pub fn cost_model(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Ablation: Online_CP cost model (admitted of 300 requests, n = 100)",
        &["model", "admitted"],
    );
    for (label, mode) in [
        ("exponential", CostMode::Exponential),
        ("linear", CostMode::Linear),
    ] {
        let mut total = 0usize;
        for rep in 0..scale.repetitions {
            let mut sdn = waxman_sdn(100, 60 + rep as u64);
            let mut rng = StdRng::seed_from_u64(6_000 + rep as u64);
            let mut gen = RequestGenerator::new(100);
            let requests = gen.generate_batch(scale.online_requests, &mut rng);
            total += run_online(&mut sdn, &mut OnlineCp::with_mode(mode), &requests).admitted;
        }
        let avg = total as f64 / scale.repetitions.max(1) as f64;
        t.add_row(vec![label.to_string(), format!("{avg:.1}")]);
    }
    t
}

/// Ablation 2: per-edge vs tree-sum admission threshold.
#[must_use]
pub fn threshold_rule(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Ablation: Online_CP threshold rule (admitted of 300 requests, n = 100)",
        &["rule", "admitted"],
    );
    for (label, rule) in [
        ("per-edge", ThresholdRule::PerEdge),
        ("tree-sum (literal)", ThresholdRule::TreeSum),
    ] {
        let mut total = 0usize;
        for rep in 0..scale.repetitions {
            let mut sdn = waxman_sdn(100, 60 + rep as u64);
            let mut rng = StdRng::seed_from_u64(6_000 + rep as u64);
            let mut gen = RequestGenerator::new(100);
            let requests = gen.generate_batch(scale.online_requests, &mut rng);
            let mut algo = OnlineCp::new().with_threshold_rule(rule);
            total += run_online(&mut sdn, &mut algo, &requests).admitted;
        }
        let avg = total as f64 / scale.repetitions.max(1) as f64;
        t.add_row(vec![label.to_string(), format!("{avg:.1}")]);
    }
    t
}

/// Ablation 3: `Appro_Multi` with K = 1..4.
#[must_use]
pub fn k_sweep(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Ablation: Appro_Multi K sweep (n = 100, Dmax/|V| = 0.15)",
        &["K", "cost", "time [ms]"],
    );
    for k in 1..=4usize {
        let mut costs = Vec::new();
        let mut times = Vec::new();
        for rep in 0..scale.repetitions {
            let sdn = waxman_sdn(100, 70 + rep as u64);
            let mut rng = StdRng::seed_from_u64(7_000 + rep as u64);
            let mut gen = RequestGenerator::new(100).with_dmax_ratio(0.15);
            for _ in 0..scale.offline_requests {
                let req = gen.generate(&mut rng);
                let (tree, ms) = time_it(|| appro_multi(&sdn, &req, k));
                if let Some(tree) = tree {
                    costs.push(tree.total_cost());
                    times.push(ms);
                }
            }
        }
        t.add_row(vec![
            k.to_string(),
            format!("{:.1}", mean(&costs)),
            format!("{:.2}", mean(&times)),
        ]);
    }
    t
}

/// Ablation 4: KMB vs SPH inside the literal Algorithm 1 (small network —
/// the literal path materializes every auxiliary graph).
#[must_use]
pub fn steiner_routine(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Ablation: Steiner routine in literal Algorithm 1 (n = 50, K = 2)",
        &["routine", "cost", "time [ms]"],
    );
    for (label, routine) in [("KMB", SteinerRoutine::Kmb), ("SPH", SteinerRoutine::Sph)] {
        let mut costs = Vec::new();
        let mut times = Vec::new();
        for rep in 0..scale.repetitions {
            let sdn = waxman_sdn(50, 80 + rep as u64);
            let mut rng = StdRng::seed_from_u64(8_000 + rep as u64);
            let mut gen = RequestGenerator::new(50).with_dmax_ratio(0.15);
            for _ in 0..scale.offline_requests {
                let req = gen.generate(&mut rng);
                let (tree, ms) = time_it(|| appro_multi_with_steiner(&sdn, &req, 2, routine));
                if let Some(tree) = tree {
                    costs.push(tree.total_cost());
                    times.push(ms);
                }
            }
        }
        t.add_row(vec![
            label.to_string(),
            format!("{:.1}", mean(&costs)),
            format!("{:.2}", mean(&times)),
        ]);
    }
    t
}

/// Ablation 5: empirical competitive ratio of `Online_CP` against the
/// offline greedy benchmark (Theorem 2 predicts `Ω(1/log n)`).
#[must_use]
pub fn competitive_ratio(scale: ExperimentScale) -> Table {
    use nfv_online::{empirical_competitive_ratio, offline_greedy_benchmark, OnlineCp};
    let mut t = Table::new(
        "Ablation: empirical competitive ratio of Online_CP vs offline greedy",
        &["n", "Online_CP", "Offline_Greedy", "ratio"],
    );
    for n in [50usize, 100, 150] {
        let mut on_total = 0usize;
        let mut off_total = 0usize;
        let mut ratio_sum = 0.0;
        for rep in 0..scale.repetitions {
            let sdn = waxman_sdn(n, 95 + rep as u64);
            let mut rng = StdRng::seed_from_u64(9_500 + rep as u64);
            let mut gen = RequestGenerator::new(n);
            let requests = gen.generate_batch(scale.online_requests, &mut rng);
            let mut net = sdn.clone();
            let online = nfv_online::run_online(&mut net, &mut OnlineCp::new(), &requests);
            let mut net = sdn;
            let offline = offline_greedy_benchmark(&mut net, &requests, 1);
            on_total += online.admitted;
            off_total += offline.admitted;
            ratio_sum += empirical_competitive_ratio(&online, &offline);
        }
        let reps = scale.repetitions.max(1) as f64;
        t.add_row(vec![
            n.to_string(),
            format!("{:.1}", on_total as f64 / reps),
            format!("{:.1}", off_total as f64 / reps),
            format!("{:.3}", ratio_sum / reps),
        ]);
    }
    t
}

/// Ablation 6: KMB with and without key-path local search (tree cost on
/// raw Steiner instances drawn from the Waxman topology).
#[must_use]
pub fn local_search(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Ablation: KMB vs KMB + key-path local search (n = 100, raw Steiner cost)",
        &["variant", "cost", "time [ms]"],
    );
    let mut kmb_costs = Vec::new();
    let mut kmb_times = Vec::new();
    let mut ls_costs = Vec::new();
    let mut ls_times = Vec::new();
    for rep in 0..scale.repetitions {
        let sdn = waxman_sdn(100, 85 + rep as u64);
        let g = sdn.graph();
        let mut rng = StdRng::seed_from_u64(8_500 + rep as u64);
        let mut gen = RequestGenerator::new(100).with_dmax_ratio(0.15);
        for _ in 0..scale.offline_requests {
            let req = gen.generate(&mut rng);
            let mut terms = vec![req.source];
            terms.extend(req.destinations.iter().copied());
            let (tree, ms) = time_it(|| steiner::kmb(g, &terms));
            let Some(tree) = tree else { continue };
            kmb_costs.push(tree.cost());
            kmb_times.push(ms);
            let (polished, ms2) = time_it(|| steiner::improve(g, &tree, 10));
            ls_costs.push(polished.cost());
            ls_times.push(ms + ms2);
        }
    }
    t.add_row(vec![
        "KMB".into(),
        format!("{:.3}", mean(&kmb_costs)),
        format!("{:.3}", mean(&kmb_times)),
    ]);
    t.add_row(vec![
        "KMB + local search".into(),
        format!("{:.3}", mean(&ls_costs)),
        format!("{:.3}", mean(&ls_times)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            offline_requests: 2,
            online_requests: 10,
            repetitions: 1,
        }
    }

    #[test]
    fn cost_model_rows() {
        assert_eq!(cost_model(tiny()).len(), 2);
    }

    #[test]
    fn k_sweep_rows() {
        assert_eq!(k_sweep(tiny()).len(), 4);
    }
}
