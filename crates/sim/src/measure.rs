//! Small measurement helpers: wall-clock timing and basic statistics.

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed wall-clock time in
/// milliseconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; `0.0` for fewer than two samples.
#[must_use]
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stdev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stdev(&[5.0]), 0.0);
        let s = stdev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn time_it_returns_result_and_nonnegative_time() {
        let (x, ms) = time_it(|| 6 * 7);
        assert_eq!(x, 42);
        assert!(ms >= 0.0);
    }
}
