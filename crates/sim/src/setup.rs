//! Shared experiment setup: topologies, server placement, scale knobs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::Sdn;
use topology::{annotate, place_servers_random, place_servers_spread, AnnotationParams};

/// How much work each data point does. The paper averages 1 000 requests
/// per point on a 3.4 GHz i7; the defaults here are sized so the whole
/// suite finishes in minutes on a comparable machine, and
/// [`ExperimentScale::paper`] restores the full counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Requests averaged per offline data point (Figs. 5–7).
    pub offline_requests: usize,
    /// Requests in each online sequence (Figs. 8–9; the paper uses 300).
    pub online_requests: usize,
    /// Independent topology seeds averaged per point.
    pub repetitions: usize,
}

impl ExperimentScale {
    /// Quick scale: smoke-test in seconds.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentScale {
            offline_requests: 5,
            online_requests: 60,
            repetitions: 1,
        }
    }

    /// Default scale: minutes for the full suite.
    #[must_use]
    pub fn default_scale() -> Self {
        ExperimentScale {
            offline_requests: 30,
            online_requests: 300,
            repetitions: 3,
        }
    }

    /// The paper's scale (1 000 offline requests per point).
    #[must_use]
    pub fn paper() -> Self {
        ExperimentScale {
            offline_requests: 1_000,
            online_requests: 300,
            repetitions: 3,
        }
    }

    /// Parses a scale name (`quick`, `default`, `paper`) as passed on the
    /// command line of the `fig*` binaries.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "default" => Some(Self::default_scale()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }

    /// Reads the scale from the first CLI argument, defaulting to
    /// [`ExperimentScale::default_scale`]; exits with a usage message on an
    /// unknown name.
    #[must_use]
    pub fn from_args() -> Self {
        match std::env::args().nth(1) {
            None => Self::default_scale(),
            Some(name) => Self::from_name(&name).unwrap_or_else(|| {
                eprintln!("usage: <bin> [quick|default|paper]");
                std::process::exit(2);
            }),
        }
    }
}

/// Builds the paper's synthetic setting: a GT-ITM/Waxman topology of `n`
/// switches with 10 % of them carrying servers, annotated with the §VI-A
/// capacity ranges. Deterministic per `(n, seed)`.
#[must_use]
pub fn waxman_sdn(n: usize, seed: u64) -> Sdn {
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let (g, _) = topology::Waxman::new(n).generate(&mut rng);
    let servers = place_servers_random(&g, 0.1, &mut rng);
    annotate(&g, &servers, &AnnotationParams::default(), &mut rng)
        .expect("waxman annotation is well-formed")
}

/// Builds the GÉANT setting: the embedded 40-node topology with the nine
/// servers the paper takes from \[7\], placed by the deterministic spread
/// heuristic. Capacities re-sampled per `seed`.
#[must_use]
pub fn geant_sdn(seed: u64) -> Sdn {
    let topo = topology::geant();
    let servers = place_servers_spread(&topo.graph, 9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6EA7);
    annotate(
        &topo.graph,
        &servers,
        &AnnotationParams::default(),
        &mut rng,
    )
    .expect("geant annotation is well-formed")
}

/// Builds the scaling setting: a `k`-ary fat-tree (data-center example of
/// §I) streamed straight from [`topology::fat_tree_edges`], with `servers`
/// spread-placed servers and the §VI-A capacity ranges. `fat_tree(64)`
/// yields 5 120 nodes, the floor of the CI scaling gate; `fat_tree(80)`
/// crosses 10k. Deterministic per `(k, servers, seed)`.
#[must_use]
pub fn fat_tree_sdn(k: usize, servers: usize, seed: u64) -> Sdn {
    let (edges, _layout) = topology::fat_tree_edges(k);
    let g = edges.to_graph();
    let servers = place_servers_spread(&g, servers);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA7_7EEE ^ (k as u64).rotate_left(17));
    annotate(&g, &servers, &AnnotationParams::default(), &mut rng)
        .expect("fat-tree annotation is well-formed")
}

/// Builds the Barabási–Albert setting: an `n`-node preferential-attachment
/// graph (`m = 2` attachments per arrival, the internet-like regime) with
/// `servers` spread-placed servers and the §VI-A capacity ranges. The
/// hub-dominated degree distribution stresses planners very differently
/// from Waxman or fat-tree meshes: most paths funnel through a few
/// high-degree cores. Deterministic per `(n, servers, seed)`.
#[must_use]
pub fn ba_sdn(n: usize, servers: usize, seed: u64) -> Sdn {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBABA ^ (n as u64).rotate_left(23));
    let g = topology::barabasi_albert_edges(n, 2, &mut rng).to_graph();
    let servers = place_servers_spread(&g, servers);
    annotate(&g, &servers, &AnnotationParams::default(), &mut rng)
        .expect("barabasi-albert annotation is well-formed")
}

/// Builds the metro-ring setting: `rings` concentric unit-weight rings of
/// `ring_size` nodes with radial links, the sparse high-diameter shape of
/// metro aggregation networks, with `servers` spread-placed servers and
/// the §VI-A capacity ranges. Deterministic per
/// `(rings, ring_size, servers, seed)`.
#[must_use]
pub fn metro_sdn(rings: usize, ring_size: usize, servers: usize, seed: u64) -> Sdn {
    let g = topology::metro_rings_edges(rings, ring_size).to_graph();
    let servers = place_servers_spread(&g, servers);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3E70 ^ (rings as u64).rotate_left(31));
    annotate(&g, &servers, &AnnotationParams::default(), &mut rng)
        .expect("metro-ring annotation is well-formed")
}

/// Builds the AS1755 ISP setting: 87 PoPs with nine spread servers (the
/// density \[19\] reports for mid-size ISPs). Capacities re-sampled per
/// `seed`.
#[must_use]
pub fn isp_sdn(seed: u64) -> Sdn {
    let topo = topology::as1755();
    let servers = place_servers_spread(&topo.graph, 9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1755);
    annotate(
        &topo.graph,
        &servers,
        &AnnotationParams::default(),
        &mut rng,
    )
    .expect("as1755 annotation is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_sdn_has_ten_percent_servers() {
        let sdn = waxman_sdn(100, 1);
        assert_eq!(sdn.node_count(), 100);
        assert_eq!(sdn.servers().len(), 10);
    }

    #[test]
    fn waxman_sdn_is_deterministic() {
        let a = waxman_sdn(60, 7);
        let b = waxman_sdn(60, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn named_topologies_have_nine_servers() {
        assert_eq!(geant_sdn(0).servers().len(), 9);
        assert_eq!(isp_sdn(0).servers().len(), 9);
        assert_eq!(geant_sdn(0).node_count(), 40);
        assert_eq!(isp_sdn(0).node_count(), 87);
    }

    #[test]
    fn fat_tree_sdn_is_deterministic_and_sized() {
        let a = fat_tree_sdn(8, 6, 3);
        let b = fat_tree_sdn(8, 6, 3);
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 8 * 8 / 4 + 8 * 8);
        assert_eq!(a.servers().len(), 6);
    }

    #[test]
    fn scale_topologies_are_deterministic_and_sized() {
        let a = ba_sdn(200, 12, 5);
        let b = ba_sdn(200, 12, 5);
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 200);
        assert_eq!(a.servers().len(), 12);

        let m = metro_sdn(4, 50, 8, 5);
        assert_eq!(m, metro_sdn(4, 50, 8, 5));
        assert_eq!(m.node_count(), 200);
        assert_eq!(m.servers().len(), 8);
    }

    #[test]
    fn scales_parse() {
        assert_eq!(
            ExperimentScale::from_name("quick"),
            Some(ExperimentScale::quick())
        );
        assert_eq!(
            ExperimentScale::from_name("paper"),
            Some(ExperimentScale::paper())
        );
        assert!(ExperimentScale::from_name("bogus").is_none());
        assert_eq!(ExperimentScale::paper().offline_requests, 1_000);
    }
}
