//! # sim
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (§VI). Each `fig*` module reproduces one figure's sweep;
//! the matching binaries (`cargo run -p sim --release --bin fig5` …)
//! print the series as ASCII tables and write CSV files under
//! `results/`.
//!
//! | Binary | Paper figure | What it sweeps |
//! |---|---|---|
//! | `fig5` | Fig. 5(a–f) | cost & running time vs network size, per `D_max/\|V\|` |
//! | `fig6` | Fig. 6(a–d) | cost & running time on GÉANT / AS1755 vs `D_max/\|V\|` |
//! | `fig7` | Fig. 7(a–b) | `Appro_Multi_Cap` cost & time vs network size |
//! | `fig8` | Fig. 8     | requests admitted by `Online_CP` vs `SP`, vs network size |
//! | `fig9` | Fig. 9     | admitted vs number of requests on GÉANT / AS1755 |
//! | `ablation` | §VII design choices | cost model, threshold rule, K sweep, Steiner routine |
//! | `batch` | engine throughput | batch vs sequential admission wall-clock, per batch size |
//! | `chaos` | failure model | seeded fail/recover replay with self-healing repair + auditor |
//! | `arena` | competitive analysis | every online policy × every adversarial workload, vs offline yardsticks |
//! | `all` | everything | runs the full suite |
//!
//! Experiment scale (requests per data point, repetitions) is tunable via
//! [`ExperimentScale`] so the full paper-scale runs and quick smoke runs
//! share one code path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chart;
pub mod experiments;
mod measure;
mod setup;
mod table;

pub use chart::{render_chart, Series};
pub use measure::{mean, stdev, time_it};
pub use setup::{ba_sdn, fat_tree_sdn, geant_sdn, isp_sdn, metro_sdn, waxman_sdn, ExperimentScale};
pub use table::{write_csv, Table};
