//! Regenerates Fig. 8: `cargo run -p sim --release --bin fig8 [quick|default|paper]`.

use sim::{experiments::fig8, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let table = fig8::run(scale);
    println!("{}", table.render());
    // Trend view: admitted requests vs network size.
    let parse = |row: &str, col: usize| -> (f64, f64) {
        let cells: Vec<&str> = row.split(',').collect();
        (
            cells[0].parse().unwrap_or(0.0),
            cells[col].parse().unwrap_or(0.0),
        )
    };
    let csv = table.to_csv();
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    let cp = sim::Series::new("Online_CP", rows.iter().map(|r| parse(r, 1)).collect());
    let sp = sim::Series::new("SP", rows.iter().map(|r| parse(r, 2)).collect());
    println!(
        "{}",
        sim::render_chart("admitted vs network size", &[cp, sp], 50, 12)
    );
    write_csv(&table, "fig8").expect("write results/fig8.csv");
}
