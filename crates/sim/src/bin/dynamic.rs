//! Runs the arrival/departure extension sweep:
//! `cargo run -p sim --release --bin dynamic [quick|default|paper]`.

use sim::{experiments::dynamic, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let table = dynamic::run(scale);
    println!("{}", table.render());
    write_csv(&table, "dynamic").expect("write results/dynamic.csv");
}
