//! Runs the complete evaluation suite (Figs. 5-9 + ablations):
//! `cargo run -p sim --release --bin all [quick|default|paper]`.

use sim::{experiments, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();

    let (cost5, time5) = experiments::fig5::run(scale);
    println!("{}\n{}", cost5.render(), time5.render());
    write_csv(&cost5, "fig5_cost").expect("csv");
    write_csv(&time5, "fig5_time").expect("csv");

    let (cost6, time6) = experiments::fig6::run(scale);
    println!("{}\n{}", cost6.render(), time6.render());
    write_csv(&cost6, "fig6_cost").expect("csv");
    write_csv(&time6, "fig6_time").expect("csv");

    let t7 = experiments::fig7::run(scale);
    println!("{}", t7.render());
    write_csv(&t7, "fig7").expect("csv");

    let t8 = experiments::fig8::run(scale);
    println!("{}", t8.render());
    write_csv(&t8, "fig8").expect("csv");

    let t9 = experiments::fig9::run(scale);
    println!("{}", t9.render());
    write_csv(&t9, "fig9").expect("csv");

    let tb = experiments::batch::run(scale);
    println!("{}", tb.render());
    write_csv(&tb, "batch_engine").expect("csv");

    let names = [
        "ablation_cost_model",
        "ablation_threshold",
        "ablation_k",
        "ablation_steiner",
        "ablation_competitive",
        "ablation_local_search",
    ];
    for (table, name) in experiments::ablation::run(scale).iter().zip(names) {
        println!("{}", table.render());
        write_csv(table, name).unwrap_or_else(|e| panic!("write results/{name}.csv: {e}"));
    }
}
