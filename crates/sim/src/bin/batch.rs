//! Runs the batch-engine throughput sweep:
//! `cargo run -p sim --release --bin batch [quick|default|paper]`.

use sim::{experiments::batch, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let table = batch::run(scale);
    println!("{}", table.render());
    write_csv(&table, "batch_engine").expect("write results/batch_engine.csv");
}
