//! Regenerates Fig. 9: `cargo run -p sim --release --bin fig9 [quick|default|paper]`.

use sim::{experiments::fig9, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let table = fig9::run(scale);
    println!("{}", table.render());
    // Trend view per topology: admitted vs request count.
    let csv = table.to_csv();
    let rows: Vec<Vec<String>> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    for topo in ["GEANT", "AS1755"] {
        let pick = |col: usize| -> Vec<(f64, f64)> {
            rows.iter()
                .filter(|r| r[0] == topo)
                .map(|r| (r[1].parse().unwrap_or(0.0), r[col].parse().unwrap_or(0.0)))
                .collect()
        };
        let cp = sim::Series::new("Online_CP", pick(2));
        let sp = sim::Series::new("SP", pick(3));
        println!(
            "{}",
            sim::render_chart(&format!("{topo}: admitted vs requests"), &[cp, sp], 50, 10)
        );
    }
    write_csv(&table, "fig9").expect("write results/fig9.csv");
}
