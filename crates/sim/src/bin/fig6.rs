//! Regenerates Fig. 6: `cargo run -p sim --release --bin fig6 [quick|default|paper]`.

use sim::{experiments::fig6, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let (cost, time) = fig6::run(scale);
    println!("{}", cost.render());
    println!("{}", time.render());
    write_csv(&cost, "fig6_cost").expect("write results/fig6_cost.csv");
    write_csv(&time, "fig6_time").expect("write results/fig6_time.csv");
}
