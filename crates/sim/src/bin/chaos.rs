//! Chaos replay on the fig5-scale topology:
//! `cargo run -p sim --release --bin chaos [seed...]`.
//!
//! Replays a timed workload with seeded failure/recovery events under
//! the self-healing repair engine, auditing every event. Each seed runs
//! **twice** — once with telemetry disabled and once with it enabled —
//! and the outcomes must be byte-identical, so CI gets both the
//! determinism check and the telemetry-is-side-effect-free check for
//! free; the binary exits non-zero otherwise. The per-seed outcomes
//! land in `results/chaos.json` and the accumulated telemetry snapshot
//! in `results/telemetry.json`.

use sim::experiments::chaos::{run_chaos, ChaosParams};

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse().unwrap_or_else(|_| {
                    eprintln!("usage: chaos [seed...]");
                    std::process::exit(2);
                })
            })
            .collect();
        if args.is_empty() {
            vec![11, 23, 47]
        } else {
            args
        }
    };

    let mut lines = Vec::new();
    for &seed in &seeds {
        let params = ChaosParams::fig5_scale(seed);
        telemetry::disable();
        let first = run_chaos(&params);
        telemetry::enable();
        let second = run_chaos(&params);
        assert_eq!(
            first, second,
            "chaos replay for seed {seed} diverged with telemetry enabled"
        );
        eprintln!(
            "chaos seed {seed}: {} offered, {} admitted, {} survived, \
             {} repaired, {} degraded, {} dropped, {} audits",
            first.offered,
            first.admitted,
            first.survived,
            first.repaired,
            first.degraded,
            first.dropped,
            first.audit_checks
        );
        lines.push(first.to_json());
    }

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!("[\n  {}\n]\n", lines.join(",\n  "));
    std::fs::write("results/chaos.json", json).expect("write results/chaos.json");
    let snapshot = telemetry::snapshot();
    std::fs::write("results/telemetry.json", snapshot.to_json())
        .expect("write results/telemetry.json");
    println!(
        "wrote results/chaos.json ({} seeds) and results/telemetry.json",
        seeds.len()
    );
}
