//! Chaos replay on the fig5-scale topology:
//! `cargo run -p sim --release --bin chaos [seed...]`.
//!
//! Two scenario families run per seed:
//!
//! * **chaos** — the timed workload with seeded failure/recovery toggles
//!   under the self-healing repair engine,
//! * **churn** — membership joins/leaves grafted onto live sessions,
//!   interleaved with fail-heaviest single-link failures, in reactive
//!   and proactive (best-effort and reserved backup-tree) modes.
//!
//! Every replay runs **twice** — once with telemetry disabled and once
//! with it enabled — and the outcomes must be byte-identical, so CI gets
//! both the determinism check and the telemetry-is-side-effect-free
//! check for free; the binary exits non-zero otherwise. It also asserts
//! that the proactive runs actually landed backup-tree swaps, so the
//! failover path can never silently regress into always-replanning. The
//! outcomes land in `results/chaos.json` (one object with a `"chaos"`
//! array and one array per churn mode) and the accumulated telemetry
//! snapshot in `results/telemetry.json`.

use nfv_engine::BackupPolicy;
use sim::experiments::chaos::{run_chaos, ChaosParams};
use sim::experiments::churn::{run_churn, ChurnMode, ChurnOutcome, ChurnParams};

/// Runs one churn replay twice (telemetry off, then on) and asserts the
/// outcomes are byte-identical.
fn churn_checked(seed: u64, mode: ChurnMode) -> ChurnOutcome {
    let params = ChurnParams::ci_scale(seed, mode);
    telemetry::disable();
    let first = run_churn(&params);
    telemetry::enable();
    let second = run_churn(&params);
    assert_eq!(
        first,
        second,
        "churn replay ({}) for seed {seed} diverged with telemetry enabled",
        mode.label()
    );
    first
}

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse().unwrap_or_else(|_| {
                    eprintln!("usage: chaos [seed...]");
                    std::process::exit(2);
                })
            })
            .collect();
        if args.is_empty() {
            vec![11, 23, 47]
        } else {
            args
        }
    };

    let mut chaos_lines = Vec::new();
    for &seed in &seeds {
        let params = ChaosParams::fig5_scale(seed);
        telemetry::disable();
        let first = run_chaos(&params);
        telemetry::enable();
        let second = run_chaos(&params);
        assert_eq!(
            first, second,
            "chaos replay for seed {seed} diverged with telemetry enabled"
        );
        eprintln!(
            "chaos seed {seed}: {} offered, {} admitted, {} survived, \
             {} repaired, {} degraded, {} dropped, {} audits",
            first.offered,
            first.admitted,
            first.survived,
            first.repaired,
            first.degraded,
            first.dropped,
            first.audit_checks
        );
        chaos_lines.push(first.to_json());
    }

    let modes = [
        ChurnMode::Reactive,
        ChurnMode::Proactive(BackupPolicy::BestEffort),
        ChurnMode::Proactive(BackupPolicy::Reserved),
    ];
    let mut churn_sections = Vec::new();
    let mut proactive_swaps = 0usize;
    for mode in modes {
        let mut lines = Vec::new();
        for &seed in &seeds {
            let out = churn_checked(seed, mode);
            eprintln!(
                "churn seed {seed} ({}): {} admitted, {} grafts, {} prunes, \
                 {} swaps, {} replans, {} plan events, {} audits",
                out.mode,
                out.admitted,
                out.grafts,
                out.prunes,
                out.backup_swaps,
                out.replanned,
                out.plan_events,
                out.audit_checks
            );
            if matches!(mode, ChurnMode::Proactive(_)) {
                proactive_swaps += out.backup_swaps;
            } else {
                assert_eq!(out.backup_swaps, 0, "reactive mode must never swap");
            }
            lines.push(out.to_json());
        }
        churn_sections.push(format!(
            "\"churn_{}\": [\n  {}\n]",
            mode.label().replace('-', "_").replace("proactive_", ""),
            lines.join(",\n  ")
        ));
    }
    assert!(
        proactive_swaps > 0,
        "proactive churn runs landed no backup-tree swaps — protection is inert"
    );

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\"chaos\": [\n  {}\n],\n{}}}\n",
        chaos_lines.join(",\n  "),
        churn_sections.join(",\n")
    );
    std::fs::write("results/chaos.json", json).expect("write results/chaos.json");
    let snapshot = telemetry::snapshot();
    std::fs::write("results/telemetry.json", snapshot.to_json())
        .expect("write results/telemetry.json");
    println!(
        "wrote results/chaos.json ({} seeds, chaos + 3 churn modes) and results/telemetry.json",
        seeds.len()
    );
}
