//! Hot-path benchmark snapshot: `cargo run -p sim --release --bin bench
//! [quick|full] [--check]`.
//!
//! Times the `Appro_Multi` combination scan — pruned + warm scratch vs.
//! the unpruned audit scan — on the paper's Fig. 5 configuration
//! (250-switch Waxman network, `K = 3`, one sweep per `D_max/|V|`
//! ratio), plus Mehlhorn vs. KMB on the same topology, and writes the
//! measurements to `BENCH_2.json` (hand-rolled JSON; the workspace has
//! no serde_json).
//!
//! With `--check`, the committed `BENCH_2.json` is read *first* and the
//! run fails (exit 1) if the freshly measured pruned-vs-unpruned speedup
//! regressed by more than 25% against the committed baseline — the CI
//! `bench-smoke` gate. Speedup ratios, not absolute times, are compared,
//! so the gate is robust to slow CI machines.

use nfv_multicast::{appro_multi_unpruned, appro_multi_with_scratch, ApproScratch};
use sim::{mean, time_it, waxman_sdn};
use std::fmt::Write as _;
use workload::RequestGenerator;

const N: usize = 250;
const K: usize = 3;
const RATIOS: [f64; 3] = [0.10, 0.15, 0.20];
/// Committed-baseline path, relative to the repo root (the working
/// directory of `cargo run`).
const SNAPSHOT: &str = "BENCH_2.json";
/// A run fails `--check` when its speedup drops below `baseline / 1.25`.
const MAX_REGRESSION: f64 = 1.25;

struct RatioPoint {
    ratio: f64,
    pruned_ms: f64,
    unpruned_ms: f64,
}

fn run_hot_sweep(requests_per_ratio: usize) -> Vec<RatioPoint> {
    use rand::SeedableRng;
    let sdn = waxman_sdn(N, 0);
    let mut points = Vec::new();
    for &ratio in &RATIOS {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut gen = RequestGenerator::new(N).with_dmax_ratio(ratio);
        let requests = gen.generate_batch(requests_per_ratio, &mut rng);
        let mut scratch = ApproScratch::new();
        let mut pruned_ms = Vec::new();
        let mut unpruned_ms = Vec::new();
        for req in &requests {
            let (fast, t_fast) = time_it(|| appro_multi_with_scratch(&sdn, req, K, &mut scratch));
            let (slow, t_slow) = time_it(|| appro_multi_unpruned(&sdn, req, K));
            assert_eq!(fast, slow, "pruned and unpruned scans diverged");
            pruned_ms.push(t_fast);
            unpruned_ms.push(t_slow);
        }
        points.push(RatioPoint {
            ratio,
            pruned_ms: mean(&pruned_ms),
            unpruned_ms: mean(&unpruned_ms),
        });
    }
    points
}

fn run_steiner_point() -> (f64, f64) {
    let sdn = waxman_sdn(N, 0);
    let g = sdn.graph();
    let terms: Vec<netgraph::NodeId> = (0..25).map(|i| netgraph::NodeId::new(i * 10)).collect();
    // Warm up, then average a few runs of each routine.
    let mut m_ms = Vec::new();
    let mut k_ms = Vec::new();
    for _ in 0..5 {
        let (mt, t) = time_it(|| steiner::mehlhorn(g, &terms).expect("connected"));
        m_ms.push(t);
        let (kt, t) = time_it(|| steiner::kmb(g, &terms).expect("connected"));
        k_ms.push(t);
        assert!(mt.cost() <= 2.0 * kt.cost() + 1e-6 && kt.cost() <= 2.0 * mt.cost() + 1e-6);
    }
    (mean(&m_ms), mean(&k_ms))
}

fn render_json(
    mode: &str,
    requests_per_ratio: usize,
    points: &[RatioPoint],
    mehlhorn_ms: f64,
    kmb_ms: f64,
) -> String {
    let pruned_total: f64 = points.iter().map(|p| p.pruned_ms).sum();
    let unpruned_total: f64 = points.iter().map(|p| p.unpruned_ms).sum();
    let hot_speedup = unpruned_total / pruned_total;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-v2\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"n\": {N}, \"k\": {K}, \"mode\": \"{mode}\", \"requests_per_ratio\": {requests_per_ratio} }},"
    );
    let _ = writeln!(out, "  \"hot_speedup\": {hot_speedup:.4},");
    out.push_str("  \"appro_multi_hot\": {\n    \"per_ratio\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{ \"ratio\": {:.2}, \"pruned_ms\": {:.3}, \"unpruned_ms\": {:.3}, \"speedup\": {:.4} }}{comma}",
            p.ratio,
            p.pruned_ms,
            p.unpruned_ms,
            p.unpruned_ms / p.pruned_ms
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(out, "    \"pruned_total_ms\": {pruned_total:.3},");
    let _ = writeln!(out, "    \"unpruned_total_ms\": {unpruned_total:.3}");
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"mehlhorn_vs_kmb\": {{ \"n\": {N}, \"terminals\": 25, \"mehlhorn_ms\": {mehlhorn_ms:.3}, \"kmb_ms\": {kmb_ms:.3}, \"speedup\": {:.4} }}",
        kmb_ms / mehlhorn_ms
    );
    out.push_str("}\n");
    out
}

/// Extracts the `"hot_speedup"` value from a committed snapshot without a
/// JSON parser dependency.
fn parse_hot_speedup(json: &str) -> Option<f64> {
    let key = "\"hot_speedup\":";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let mode = if args.iter().any(|a| a == "full") {
        "full"
    } else {
        "quick"
    };
    let requests_per_ratio = if mode == "full" { 8 } else { 4 };

    let baseline = if check {
        let json = std::fs::read_to_string(SNAPSHOT)
            .unwrap_or_else(|e| panic!("--check needs a committed {SNAPSHOT}: {e}"));
        let b = parse_hot_speedup(&json).expect("baseline has a hot_speedup field");
        println!("baseline hot_speedup: {b:.2}x");
        Some(b)
    } else {
        None
    };

    println!("bench: Appro_Multi hot path, n={N}, K={K}, mode={mode}");
    let points = run_hot_sweep(requests_per_ratio);
    for p in &points {
        println!(
            "  ratio {:.2}: pruned {:8.2} ms  unpruned {:8.2} ms  speedup {:.2}x",
            p.ratio,
            p.pruned_ms,
            p.unpruned_ms,
            p.unpruned_ms / p.pruned_ms
        );
    }
    let (mehlhorn_ms, kmb_ms) = run_steiner_point();
    println!(
        "  mehlhorn {mehlhorn_ms:.2} ms vs kmb {kmb_ms:.2} ms ({:.2}x)",
        kmb_ms / mehlhorn_ms
    );

    let json = render_json(mode, requests_per_ratio, &points, mehlhorn_ms, kmb_ms);
    let hot_speedup = parse_hot_speedup(&json).expect("own JSON is parseable");
    println!("hot_speedup: {hot_speedup:.2}x");

    if let Some(baseline) = baseline {
        // Artifact for inspection, without clobbering the committed
        // baseline the comparison ran against.
        std::fs::write("BENCH_2.new.json", &json).expect("write BENCH_2.new.json");
        let floor = baseline / MAX_REGRESSION;
        if hot_speedup < floor {
            eprintln!(
                "FAIL: hot_speedup {hot_speedup:.2}x regressed below {floor:.2}x \
                 (baseline {baseline:.2}x / {MAX_REGRESSION})"
            );
            std::process::exit(1);
        }
        println!("OK: within 25% of the committed baseline ({baseline:.2}x)");
    } else {
        std::fs::write(SNAPSHOT, &json).expect("write BENCH_2.json");
        println!("wrote {SNAPSHOT}");
    }
}
