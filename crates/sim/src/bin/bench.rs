//! Hot-path benchmark snapshot: `cargo run -p sim --release --bin bench
//! [quick|full|scale|pipeline] [--check]`.
//!
//! The default mode times the `Appro_Multi` combination scan — pruned +
//! warm scratch vs. the unpruned audit scan — on the paper's Fig. 5
//! configuration (250-switch Waxman network, `K = 3`, one sweep per
//! `D_max/|V|` ratio), plus Mehlhorn vs. KMB on the same topology, and
//! writes the measurements to `BENCH_2.json` (hand-rolled JSON; the
//! workspace has no serde_json).
//!
//! `scale` instead benchmarks the landmark-oracle layer on a 5 120-node
//! fat-tree: `Online_CP` with the oracle-ordered lazy candidate scan vs.
//! the exact scan (asserting byte-identical admissions along the way),
//! plus oracle-seeded vs. plain `Appro_Multi` through a bounded
//! [`PathCache`], writing `BENCH_3.json` with the headline
//! `oracle_speedup` ratio.
//!
//! `pipeline` benchmarks the streaming admission daemon: sustained
//! decisions/sec for the sequential loop, the `admit_batch` wave barrier,
//! and [`AdmissionPipeline`] on the same closed workloads (fig5-scale
//! Waxman and the 5 120-node fat-tree), asserting byte-identical
//! decisions across all three inside the binary and writing `BENCH_4.json`
//! with the headline `pipeline_speedup` (batch wall-clock over pipeline
//! wall-clock on the fat-tree row).
//!
//! With `--check`, the committed snapshot is read *first* and the run
//! fails (exit 1) if the freshly measured speedup regressed by more than
//! 25% against the committed baseline — the CI `bench-smoke` /
//! `scale-smoke` gates. (`scale --check` additionally enforces the
//! absolute ≥ 2x floor.) Speedup ratios, not absolute times, are
//! compared, so the gates are robust to slow CI machines.

use nfv_engine::{admit_batch, admit_sequential, AdmissionPipeline, EngineConfig, PipelineConfig};
use nfv_multicast::{
    appro_multi_cached, appro_multi_unpruned, appro_multi_with_scratch, ApproScratch, PathCache,
    PathCacheOptions,
};
use nfv_online::{OnlineAlgorithm, OnlineCp, TimedRequest};
use sim::{ba_sdn, fat_tree_sdn, mean, metro_sdn, time_it, waxman_sdn};
use std::fmt::Write as _;
use workload::RequestGenerator;

const N: usize = 250;
const K: usize = 3;
const RATIOS: [f64; 3] = [0.10, 0.15, 0.20];
/// Committed-baseline path, relative to the repo root (the working
/// directory of `cargo run`).
const SNAPSHOT: &str = "BENCH_2.json";
/// A run fails `--check` when its speedup drops below `baseline / 1.25`.
const MAX_REGRESSION: f64 = 1.25;

struct RatioPoint {
    ratio: f64,
    pruned_ms: f64,
    unpruned_ms: f64,
}

fn run_hot_sweep(requests_per_ratio: usize) -> Vec<RatioPoint> {
    use rand::SeedableRng;
    let sdn = waxman_sdn(N, 0);
    let mut points = Vec::new();
    for &ratio in &RATIOS {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut gen = RequestGenerator::new(N).with_dmax_ratio(ratio);
        let requests = gen.generate_batch(requests_per_ratio, &mut rng);
        let mut scratch = ApproScratch::new();
        let mut pruned_ms = Vec::new();
        let mut unpruned_ms = Vec::new();
        for req in &requests {
            let (fast, t_fast) = time_it(|| appro_multi_with_scratch(&sdn, req, K, &mut scratch));
            let (slow, t_slow) = time_it(|| appro_multi_unpruned(&sdn, req, K));
            assert_eq!(fast, slow, "pruned and unpruned scans diverged");
            pruned_ms.push(t_fast);
            unpruned_ms.push(t_slow);
        }
        points.push(RatioPoint {
            ratio,
            pruned_ms: mean(&pruned_ms),
            unpruned_ms: mean(&unpruned_ms),
        });
    }
    points
}

fn run_steiner_point() -> (f64, f64) {
    let sdn = waxman_sdn(N, 0);
    let g = sdn.graph();
    let terms: Vec<netgraph::NodeId> = (0..25).map(|i| netgraph::NodeId::new(i * 10)).collect();
    // Warm up, then average a few runs of each routine.
    let mut m_ms = Vec::new();
    let mut k_ms = Vec::new();
    for _ in 0..5 {
        let (mt, t) = time_it(|| steiner::mehlhorn(g, &terms).expect("connected"));
        m_ms.push(t);
        let (kt, t) = time_it(|| steiner::kmb(g, &terms).expect("connected"));
        k_ms.push(t);
        assert!(mt.cost() <= 2.0 * kt.cost() + 1e-6 && kt.cost() <= 2.0 * mt.cost() + 1e-6);
    }
    (mean(&m_ms), mean(&k_ms))
}

fn render_json(
    mode: &str,
    requests_per_ratio: usize,
    points: &[RatioPoint],
    mehlhorn_ms: f64,
    kmb_ms: f64,
) -> String {
    let pruned_total: f64 = points.iter().map(|p| p.pruned_ms).sum();
    let unpruned_total: f64 = points.iter().map(|p| p.unpruned_ms).sum();
    let hot_speedup = unpruned_total / pruned_total;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-v2\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"n\": {N}, \"k\": {K}, \"mode\": \"{mode}\", \"requests_per_ratio\": {requests_per_ratio} }},"
    );
    let _ = writeln!(out, "  \"hot_speedup\": {hot_speedup:.4},");
    out.push_str("  \"appro_multi_hot\": {\n    \"per_ratio\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{ \"ratio\": {:.2}, \"pruned_ms\": {:.3}, \"unpruned_ms\": {:.3}, \"speedup\": {:.4} }}{comma}",
            p.ratio,
            p.pruned_ms,
            p.unpruned_ms,
            p.unpruned_ms / p.pruned_ms
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(out, "    \"pruned_total_ms\": {pruned_total:.3},");
    let _ = writeln!(out, "    \"unpruned_total_ms\": {unpruned_total:.3}");
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"mehlhorn_vs_kmb\": {{ \"n\": {N}, \"terminals\": 25, \"mehlhorn_ms\": {mehlhorn_ms:.3}, \"kmb_ms\": {kmb_ms:.3}, \"speedup\": {:.4} }}",
        kmb_ms / mehlhorn_ms
    );
    out.push_str("}\n");
    out
}

/// Extracts a top-level numeric `"key": value` from a committed snapshot
/// without a JSON parser dependency.
fn parse_numeric_key(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json.get(start..)?;
    let end = rest.find([',', '\n', '}'])?;
    rest.get(..end)?.trim().parse().ok()
}

fn parse_hot_speedup(json: &str) -> Option<f64> {
    parse_numeric_key(json, "hot_speedup")
}

// ---------------------------------------------------------------------------
// `scale` mode: the landmark-oracle layer at 5k nodes.
// ---------------------------------------------------------------------------

/// Committed scaling baseline, relative to the repo root.
const SCALE_SNAPSHOT: &str = "BENCH_3.json";
/// Fat-tree radix: `k = 64` gives `k²/4 + k² = 5 120` nodes.
const SCALE_K: usize = 64;
const SCALE_SERVERS: usize = 32;
const SCALE_LANDMARKS: usize = 8;
const SCALE_ONLINE_REQUESTS: usize = 6;
const SCALE_APPRO_REQUESTS: usize = 3;
/// `scale --check` fails outright below this absolute speedup, however
/// low the committed baseline drifts.
const SCALE_FLOOR: f64 = 2.0;

struct OnlineScalePoint {
    exact_total_ms: f64,
    oracle_total_ms: f64,
    admitted: usize,
    requests: usize,
    pruned_candidates: u64,
}

/// Runs the same request sequence through the exact and the
/// oracle-ordered `Online_CP` scans on clones of one network, asserting
/// byte-identical decisions request by request.
fn run_scale_online(sdn: &sdn::Sdn, requests: &[sdn::MulticastRequest]) -> OnlineScalePoint {
    let mut exact_net = sdn.clone();
    let mut oracle_net = sdn.clone();
    let mut exact = OnlineCp::new();
    let mut fast = OnlineCp::new().with_oracle(SCALE_LANDMARKS);
    let pruned_before = telemetry::counter_value(telemetry::Counter::OnlineCandidatesPruned);
    let mut exact_total_ms = 0.0;
    let mut oracle_total_ms = 0.0;
    let mut admitted = 0;
    for req in requests {
        let (slow, t_slow) = time_it(|| exact.admit(&exact_net, req));
        let (fast_tree, t_fast) = time_it(|| fast.admit(&oracle_net, req));
        assert_eq!(
            slow, fast_tree,
            "oracle scan diverged from the exact scan on request {}",
            req.id
        );
        exact_total_ms += t_slow;
        oracle_total_ms += t_fast;
        if let (Some(a), Some(b)) = (slow, fast_tree) {
            exact_net
                .allocate(&a.allocation(req))
                .expect("admitted tree allocates");
            oracle_net
                .allocate(&b.allocation(req))
                .expect("admitted tree allocates");
            admitted += 1;
        }
    }
    OnlineScalePoint {
        exact_total_ms,
        oracle_total_ms,
        admitted,
        requests: requests.len(),
        pruned_candidates: telemetry::counter_value(telemetry::Counter::OnlineCandidatesPruned)
            - pruned_before,
    }
}

struct ApproScalePoint {
    plain_total_ms: f64,
    seeded_total_ms: f64,
    requests: usize,
    spt_hits: u64,
    spt_misses: u64,
    spt_evictions: u64,
}

/// Plans the same requests twice (cold + warm pass) through a plain
/// unbounded [`PathCache`] and through a bounded, oracle-seeded one,
/// asserting identical plans everywhere.
fn run_scale_appro(sdn: &sdn::Sdn, requests: &[sdn::MulticastRequest]) -> ApproScalePoint {
    let mut plain = PathCache::new(sdn);
    let mut plain_total_ms = 0.0;
    let mut reference = Vec::new();
    for pass in 0..2 {
        for req in requests {
            let (tree, t) = time_it(|| appro_multi_cached(sdn, req, 1, &mut plain));
            plain_total_ms += t;
            if pass == 0 {
                reference.push(tree);
            }
        }
    }

    let hits_before = telemetry::counter_value(telemetry::Counter::SptCacheHits);
    let misses_before = telemetry::counter_value(telemetry::Counter::SptCacheMisses);
    let mut seeded = PathCache::with_options(
        sdn,
        PathCacheOptions {
            capacity: Some(64),
            landmarks: SCALE_LANDMARKS,
        },
    );
    let mut seeded_total_ms = 0.0;
    for _ in 0..2 {
        for (req, expected) in requests.iter().zip(&reference) {
            let (tree, t) = time_it(|| appro_multi_cached(sdn, req, 1, &mut seeded));
            seeded_total_ms += t;
            assert_eq!(
                &tree, expected,
                "oracle-seeded plan diverged from the plain plan on request {}",
                req.id
            );
        }
    }
    ApproScalePoint {
        plain_total_ms,
        seeded_total_ms,
        requests: requests.len(),
        spt_hits: telemetry::counter_value(telemetry::Counter::SptCacheHits) - hits_before,
        spt_misses: telemetry::counter_value(telemetry::Counter::SptCacheMisses) - misses_before,
        spt_evictions: seeded.spt_evictions(),
    }
}

/// One auxiliary topology family benchmarked by `scale` alongside the
/// fat-tree gate row: the oracle-ordered vs. exact `Online_CP` scan on a
/// structurally different network shape.
struct TopoScalePoint {
    label: &'static str,
    n: usize,
    point: OnlineScalePoint,
}

/// Runs the oracle-vs-exact comparison on the Barabási–Albert and
/// metro-ring families (~4k nodes each): hub-dominated and sparse
/// high-diameter shapes the fat-tree row cannot represent. Informational
/// rows — the `--check` gate stays on the fat-tree `oracle_speedup`.
fn run_scale_topologies() -> Vec<TopoScalePoint> {
    use rand::SeedableRng;
    let mut rows = Vec::new();
    for (label, sdn) in [
        ("barabasi_albert", ba_sdn(4_096, SCALE_SERVERS, 0)),
        ("metro_rings", metro_sdn(64, 64, SCALE_SERVERS, 0)),
    ] {
        let n = sdn.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.001);
        let requests = gen.generate_batch(4, &mut rng);
        let point = run_scale_online(&sdn, &requests);
        assert!(point.admitted > 0, "{label} fixture admits nothing");
        println!(
            "  {label:>16} (n={n}): exact {:8.1} ms  oracle {:8.1} ms  speedup {:.2}x  ({}/{} admitted)",
            point.exact_total_ms,
            point.oracle_total_ms,
            point.exact_total_ms / point.oracle_total_ms,
            point.admitted,
            point.requests
        );
        rows.push(TopoScalePoint { label, n, point });
    }
    rows
}

fn render_scale_json(
    n: usize,
    online: &OnlineScalePoint,
    appro: &ApproScalePoint,
    topologies: &[TopoScalePoint],
) -> String {
    let oracle_speedup = online.exact_total_ms / online.oracle_total_ms;
    let hit_rate = if appro.spt_hits + appro.spt_misses > 0 {
        appro.spt_hits as f64 / (appro.spt_hits + appro.spt_misses) as f64
    } else {
        0.0
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-v3-scale\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"fat_tree_k\": {SCALE_K}, \"n\": {n}, \"servers\": {SCALE_SERVERS}, \"landmarks\": {SCALE_LANDMARKS}, \"online_requests\": {}, \"appro_requests\": {} }},",
        online.requests, appro.requests
    );
    let _ = writeln!(out, "  \"oracle_speedup\": {oracle_speedup:.4},");
    let _ = writeln!(
        out,
        "  \"online\": {{ \"exact_total_ms\": {:.3}, \"oracle_total_ms\": {:.3}, \"admitted\": {}, \"pruned_candidates\": {} }},",
        online.exact_total_ms, online.oracle_total_ms, online.admitted, online.pruned_candidates
    );
    let _ = writeln!(
        out,
        "  \"appro\": {{ \"plain_total_ms\": {:.3}, \"seeded_total_ms\": {:.3}, \"seeded_speedup\": {:.4} }},",
        appro.plain_total_ms,
        appro.seeded_total_ms,
        appro.plain_total_ms / appro.seeded_total_ms
    );
    let _ = writeln!(
        out,
        "  \"spt_cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {hit_rate:.4}, \"evictions\": {} }},",
        appro.spt_hits, appro.spt_misses, appro.spt_evictions
    );
    out.push_str("  \"topologies\": [\n");
    for (i, row) in topologies.iter().enumerate() {
        let comma = if i + 1 < topologies.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"label\": \"{}\", \"n\": {}, \"exact_total_ms\": {:.3}, \"oracle_total_ms\": {:.3}, \"speedup\": {:.4}, \"admitted\": {}, \"requests\": {} }}{comma}",
            row.label,
            row.n,
            row.point.exact_total_ms,
            row.point.oracle_total_ms,
            row.point.exact_total_ms / row.point.oracle_total_ms,
            row.point.admitted,
            row.point.requests
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn run_scale(check: bool) {
    telemetry::enable();
    // `NFV_SCALE_K` overrides the fat-tree radix for manual scaling
    // sweeps (the EXPERIMENTS.md table). Override runs print
    // measurements but never touch BENCH_3.json, and the CI gate always
    // runs at the committed default.
    let k_override: Option<usize> = std::env::var("NFV_SCALE_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k| k != SCALE_K);
    let fat_tree_k = k_override.unwrap_or(SCALE_K);
    assert!(
        !(check && k_override.is_some()),
        "--check compares against the committed baseline and cannot run with NFV_SCALE_K"
    );
    let baseline = if check {
        let json = std::fs::read_to_string(SCALE_SNAPSHOT)
            .unwrap_or_else(|e| panic!("--check needs a committed {SCALE_SNAPSHOT}: {e}"));
        let b = parse_numeric_key(&json, "oracle_speedup")
            .expect("baseline has an oracle_speedup field");
        println!("baseline oracle_speedup: {b:.2}x");
        Some(b)
    } else {
        None
    };

    let (sdn, build_ms) = time_it(|| fat_tree_sdn(fat_tree_k, SCALE_SERVERS, 0));
    let n = sdn.node_count();
    println!(
        "bench: scale, fat-tree k={fat_tree_k} (n={n}, built in {build_ms:.1} ms), \
         {SCALE_SERVERS} servers, {SCALE_LANDMARKS} landmarks"
    );

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut gen = RequestGenerator::new(n).with_dmax_ratio(0.001);
    let online_reqs = gen.generate_batch(SCALE_ONLINE_REQUESTS, &mut rng);
    let appro_reqs = gen.generate_batch(SCALE_APPRO_REQUESTS, &mut rng);

    let online = run_scale_online(&sdn, &online_reqs);
    assert!(online.admitted > 0, "scale fixture admits nothing");
    println!(
        "  online: exact {:8.1} ms  oracle {:8.1} ms  speedup {:.2}x  \
         ({}/{} admitted, {} candidates pruned)",
        online.exact_total_ms,
        online.oracle_total_ms,
        online.exact_total_ms / online.oracle_total_ms,
        online.admitted,
        online.requests,
        online.pruned_candidates
    );

    let appro = run_scale_appro(&sdn, &appro_reqs);
    println!(
        "  appro:  plain {:8.1} ms  seeded {:8.1} ms  speedup {:.2}x  \
         (spt cache: {} hits / {} misses / {} evictions)",
        appro.plain_total_ms,
        appro.seeded_total_ms,
        appro.plain_total_ms / appro.seeded_total_ms,
        appro.spt_hits,
        appro.spt_misses,
        appro.spt_evictions
    );

    let topologies = run_scale_topologies();

    let json = render_scale_json(n, &online, &appro, &topologies);
    let oracle_speedup = parse_numeric_key(&json, "oracle_speedup").expect("own JSON is parseable");
    println!("oracle_speedup: {oracle_speedup:.2}x");

    if k_override.is_some() {
        println!("(NFV_SCALE_K sweep run: snapshot not written)");
        return;
    }
    if let Some(baseline) = baseline {
        std::fs::write("BENCH_3.new.json", &json).expect("write BENCH_3.new.json");
        let floor = (baseline / MAX_REGRESSION).max(SCALE_FLOOR);
        if oracle_speedup < floor {
            eprintln!(
                "FAIL: oracle_speedup {oracle_speedup:.2}x below {floor:.2}x \
                 (baseline {baseline:.2}x / {MAX_REGRESSION}, absolute floor {SCALE_FLOOR}x)"
            );
            std::process::exit(1);
        }
        println!("OK: within 25% of the committed baseline ({baseline:.2}x) and above the {SCALE_FLOOR}x floor");
    } else {
        std::fs::write(SCALE_SNAPSHOT, &json).expect("write BENCH_3.json");
        println!("wrote {SCALE_SNAPSHOT}");
    }
}

// ---------------------------------------------------------------------------
// `pipeline` mode: streaming admission throughput, gated on BENCH_4.json.
// ---------------------------------------------------------------------------

/// Committed streaming-throughput baseline, relative to the repo root.
const PIPE_SNAPSHOT: &str = "BENCH_4.json";
/// `pipeline --check` fails outright when the pipeline is not at least
/// this much faster than the `admit_batch` wave barrier on the fat-tree
/// row, however low the committed baseline drifts.
const PIPE_FLOOR: f64 = 1.5;
/// Worker threads for both the batch baseline and the pipeline
/// (`NFV_PIPELINE_WORKERS` overrides for manual sweeps; override runs
/// never touch the snapshot). The batch engine gets the same explicit
/// count so the comparison is wave barrier vs. pipeline, not threaded
/// vs. sequential.
const PIPE_WORKERS: usize = 4;
const PIPE_WINDOW: usize = 6;
const PIPE_REFRESH: usize = 6;
/// Requests in the fig5-scale row (uncontended regime).
const PIPE_FIG5_REQUESTS: usize = 64;
/// Requests in the n=5120 fat-tree gate row (contended regime).
const PIPE_SCALE_REQUESTS: usize = 40;

/// One workload row: the same closed request sequence admitted three
/// ways, with byte-identical decisions asserted along the way.
struct PipelinePoint {
    label: &'static str,
    n: usize,
    k: usize,
    requests: usize,
    sequential_ms: f64,
    batch_ms: f64,
    pipeline_ms: f64,
    admitted: usize,
    batch_replanned: usize,
    pipe_hits: usize,
    pipe_replanned: usize,
    stalls: u64,
    snapshots: u64,
}

impl PipelinePoint {
    /// Requests decided per second of wall-clock, for one of the columns.
    fn rps(&self, total_ms: f64) -> f64 {
        self.requests as f64 / (total_ms / 1_000.0)
    }
}

/// Admits `requests` sequentially, through the wave-barrier batch engine,
/// and through the streaming pipeline (arrivals one second apart, holding
/// times effectively infinite so the closed workloads match), asserting
/// byte-identical decisions and residual state across all three.
fn run_pipeline_point(
    label: &'static str,
    sdn: &sdn::Sdn,
    requests: &[sdn::MulticastRequest],
    k: usize,
    workers: usize,
) -> PipelinePoint {
    let mut seq_net = sdn.clone();
    let (seq, sequential_ms) = time_it(|| admit_sequential(&mut seq_net, requests, k));

    let mut batch_net = sdn.clone();
    let config = EngineConfig::new(k).with_workers(workers);
    let ((batch, batch_report), batch_ms) =
        time_it(|| admit_batch(&mut batch_net, requests, &config));
    assert_eq!(seq, batch, "{label}: batch decisions diverged");
    assert_eq!(seq_net, batch_net, "{label}: batch residual state diverged");

    let stream: Vec<TimedRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, req)| TimedRequest::new(req.clone(), i as f64, f64::MAX))
        .collect();
    let pipe_net = sdn.clone();
    let pipe_cfg = PipelineConfig::new(k)
        .with_workers(workers)
        .with_window(PIPE_WINDOW)
        .with_refresh(PIPE_REFRESH);
    let (out, pipeline_ms) = time_it(move || {
        let mut pipeline = AdmissionPipeline::launch(pipe_net, pipe_cfg);
        for tr in stream {
            pipeline.push(tr);
        }
        pipeline.finish()
    });
    assert_eq!(seq, out.decisions, "{label}: pipeline decisions diverged");
    assert_eq!(
        seq_net, out.sdn,
        "{label}: pipeline residual state diverged"
    );

    PipelinePoint {
        label,
        n: sdn.node_count(),
        k,
        requests: requests.len(),
        sequential_ms,
        batch_ms,
        pipeline_ms,
        admitted: out.report.admitted,
        batch_replanned: batch_report.replanned,
        pipe_hits: out.report.speculative_hits,
        pipe_replanned: out.report.replanned,
        stalls: out.report.stalls,
        snapshots: out.report.snapshots_published,
    }
}

fn print_pipeline_point(p: &PipelinePoint) {
    println!(
        "  {:>14} (n={}, k={}, {} requests): seq {:8.1} ms  batch {:8.1} ms  pipeline {:8.1} ms",
        p.label, p.n, p.k, p.requests, p.sequential_ms, p.batch_ms, p.pipeline_ms
    );
    println!(
        "  {:>14}  {:6.1} / {:6.1} / {:6.1} decisions/s  speedup vs batch {:.2}x  \
         ({} admitted, batch replans {}, pipeline {} hits + {} replans, {} stalls, {} snapshots)",
        "",
        p.rps(p.sequential_ms),
        p.rps(p.batch_ms),
        p.rps(p.pipeline_ms),
        p.batch_ms / p.pipeline_ms,
        p.admitted,
        p.batch_replanned,
        p.pipe_hits,
        p.pipe_replanned,
        p.stalls,
        p.snapshots
    );
}

fn render_pipeline_json(workers: usize, points: &[PipelinePoint]) -> String {
    // The gate ratio comes from the last (fat-tree) row: the contended
    // regime where the wave barrier pays for its deferred suffixes.
    let gate = points.last().expect("at least one pipeline row");
    let pipeline_speedup = gate.batch_ms / gate.pipeline_ms;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-v4-pipeline\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"workers\": {workers}, \"window\": {PIPE_WINDOW}, \"refresh\": {PIPE_REFRESH} }},"
    );
    let _ = writeln!(out, "  \"pipeline_speedup\": {pipeline_speedup:.4},");
    out.push_str("  \"rows\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"label\": \"{}\", \"n\": {}, \"k\": {}, \"requests\": {},\n      \
             \"sequential_ms\": {:.3}, \"batch_ms\": {:.3}, \"pipeline_ms\": {:.3},\n      \
             \"sequential_rps\": {:.2}, \"batch_rps\": {:.2}, \"pipeline_rps\": {:.2},\n      \
             \"speedup_vs_batch\": {:.4}, \"admitted\": {}, \"batch_replanned\": {},\n      \
             \"pipeline_speculative_hits\": {}, \"pipeline_replanned\": {}, \"stalls\": {}, \"snapshots\": {} }}{comma}",
            p.label,
            p.n,
            p.k,
            p.requests,
            p.sequential_ms,
            p.batch_ms,
            p.pipeline_ms,
            p.rps(p.sequential_ms),
            p.rps(p.batch_ms),
            p.rps(p.pipeline_ms),
            p.batch_ms / p.pipeline_ms,
            p.admitted,
            p.batch_replanned,
            p.pipe_hits,
            p.pipe_replanned,
            p.stalls,
            p.snapshots
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_pipeline(check: bool) {
    telemetry::enable();
    // Any set NFV_PIPELINE_WORKERS is an override — even the default
    // worker count — so override runs never write the snapshot and
    // --check always refuses the env var. Junk values fail loudly
    // instead of silently running the gated configuration.
    let workers_override: Option<usize> = std::env::var("NFV_PIPELINE_WORKERS").ok().map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&w| w > 0)
            .unwrap_or_else(|| panic!("NFV_PIPELINE_WORKERS must be a positive integer, got {v:?}"))
    });
    assert!(
        !(check && workers_override.is_some()),
        "--check compares against the committed baseline and cannot run with NFV_PIPELINE_WORKERS"
    );
    let workers = workers_override.unwrap_or(PIPE_WORKERS);
    let baseline = if check {
        let json = std::fs::read_to_string(PIPE_SNAPSHOT)
            .unwrap_or_else(|e| panic!("--check needs a committed {PIPE_SNAPSHOT}: {e}"));
        let b = parse_numeric_key(&json, "pipeline_speedup")
            .expect("baseline has a pipeline_speedup field");
        println!("baseline pipeline_speedup: {b:.2}x");
        Some(b)
    } else {
        None
    };

    use rand::SeedableRng;
    println!("bench: pipeline, {workers} workers, window {PIPE_WINDOW}, refresh {PIPE_REFRESH}");

    // Fig. 5 scale: the paper's 250-switch Waxman setting with stock
    // demands — the uncontended regime, where the pipeline must merely
    // not lose to the wave barrier.
    let wax = waxman_sdn(N, 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut gen = RequestGenerator::new(N).with_dmax_ratio(0.15);
    let wax_reqs = gen.generate_batch(PIPE_FIG5_REQUESTS, &mut rng);
    let wax_point = run_pipeline_point("waxman_fig5", &wax, &wax_reqs, K, workers);
    print_pipeline_point(&wax_point);

    // The 5 120-node fat-tree with hot demands (400–900 Mbps against
    // 1–10 Gbps links): commits routinely cross feasibility thresholds,
    // so the wave barrier defers whole suffixes while the pipeline
    // replans only the requests actually disturbed. This is the gated
    // row.
    let ft = fat_tree_sdn(SCALE_K, SCALE_SERVERS, 0);
    let n_ft = ft.node_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut gen = RequestGenerator::new(n_ft)
        .with_dmax_ratio(0.0015)
        .with_bandwidth_range(400.0, 900.0);
    let ft_reqs = gen.generate_batch(PIPE_SCALE_REQUESTS, &mut rng);
    let ft_point = run_pipeline_point("fat_tree_5120", &ft, &ft_reqs, 2, workers);
    print_pipeline_point(&ft_point);

    let points = [wax_point, ft_point];
    let json = render_pipeline_json(workers, &points);
    let pipeline_speedup =
        parse_numeric_key(&json, "pipeline_speedup").expect("own JSON is parseable");
    println!("pipeline_speedup: {pipeline_speedup:.2}x");

    // The pipeline gauges/histograms ride along for the CI artifact.
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/telemetry.json", telemetry::snapshot().to_json())
        .expect("write results/telemetry.json");

    if workers_override.is_some() {
        println!("(NFV_PIPELINE_WORKERS sweep run: snapshot not written)");
        return;
    }
    if let Some(baseline) = baseline {
        std::fs::write("BENCH_4.new.json", &json).expect("write BENCH_4.new.json");
        let floor = (baseline / MAX_REGRESSION).max(PIPE_FLOOR);
        if pipeline_speedup < floor {
            eprintln!(
                "FAIL: pipeline_speedup {pipeline_speedup:.2}x below {floor:.2}x \
                 (baseline {baseline:.2}x / {MAX_REGRESSION}, absolute floor {PIPE_FLOOR}x)"
            );
            std::process::exit(1);
        }
        println!(
            "OK: within 25% of the committed baseline ({baseline:.2}x) and above the {PIPE_FLOOR}x floor"
        );
    } else {
        std::fs::write(PIPE_SNAPSHOT, &json).expect("write BENCH_4.json");
        println!("wrote {PIPE_SNAPSHOT}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    if args.iter().any(|a| a == "pipeline") {
        run_pipeline(check);
        return;
    }
    if args.iter().any(|a| a == "scale") {
        run_scale(check);
        return;
    }
    let mode = if args.iter().any(|a| a == "full") {
        "full"
    } else {
        "quick"
    };
    let requests_per_ratio = if mode == "full" { 8 } else { 4 };

    let baseline = if check {
        let json = std::fs::read_to_string(SNAPSHOT)
            .unwrap_or_else(|e| panic!("--check needs a committed {SNAPSHOT}: {e}"));
        let b = parse_hot_speedup(&json).expect("baseline has a hot_speedup field");
        println!("baseline hot_speedup: {b:.2}x");
        Some(b)
    } else {
        None
    };

    println!("bench: Appro_Multi hot path, n={N}, K={K}, mode={mode}");
    let points = run_hot_sweep(requests_per_ratio);
    for p in &points {
        println!(
            "  ratio {:.2}: pruned {:8.2} ms  unpruned {:8.2} ms  speedup {:.2}x",
            p.ratio,
            p.pruned_ms,
            p.unpruned_ms,
            p.unpruned_ms / p.pruned_ms
        );
    }
    let (mehlhorn_ms, kmb_ms) = run_steiner_point();
    println!(
        "  mehlhorn {mehlhorn_ms:.2} ms vs kmb {kmb_ms:.2} ms ({:.2}x)",
        kmb_ms / mehlhorn_ms
    );

    let json = render_json(mode, requests_per_ratio, &points, mehlhorn_ms, kmb_ms);
    let hot_speedup = parse_hot_speedup(&json).expect("own JSON is parseable");
    println!("hot_speedup: {hot_speedup:.2}x");

    if let Some(baseline) = baseline {
        // Artifact for inspection, without clobbering the committed
        // baseline the comparison ran against.
        std::fs::write("BENCH_2.new.json", &json).expect("write BENCH_2.new.json");
        let floor = baseline / MAX_REGRESSION;
        if hot_speedup < floor {
            eprintln!(
                "FAIL: hot_speedup {hot_speedup:.2}x regressed below {floor:.2}x \
                 (baseline {baseline:.2}x / {MAX_REGRESSION})"
            );
            std::process::exit(1);
        }
        println!("OK: within 25% of the committed baseline ({baseline:.2}x)");
    } else {
        std::fs::write(SNAPSHOT, &json).expect("write BENCH_2.json");
        println!("wrote {SNAPSHOT}");
    }
}
