//! Runs the ablation suite: `cargo run -p sim --release --bin ablation [quick|default|paper]`.

use sim::{experiments::ablation, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let names = [
        "ablation_cost_model",
        "ablation_threshold",
        "ablation_k",
        "ablation_steiner",
        "ablation_competitive",
        "ablation_local_search",
    ];
    for (table, name) in ablation::run(scale).iter().zip(names) {
        println!("{}", table.render());
        write_csv(table, name).unwrap_or_else(|e| panic!("write results/{name}.csv: {e}"));
    }
}
