//! Regenerates Fig. 5: `cargo run -p sim --release --bin fig5 [quick|default|paper]`.
//!
//! Runs with telemetry enabled and leaves the accumulated counter
//! snapshot in `results/telemetry.json` next to the CSV artifacts.

use sim::{experiments::fig5, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    telemetry::enable();
    let (cost, time) = fig5::run(scale);
    println!("{}", cost.render());
    println!("{}", time.render());
    write_csv(&cost, "fig5_cost").expect("write results/fig5_cost.csv");
    write_csv(&time, "fig5_time").expect("write results/fig5_time.csv");
    let snapshot = telemetry::snapshot();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/telemetry.json", snapshot.to_json())
        .expect("write results/telemetry.json");
    println!("wrote results/telemetry.json");
}
