//! Regenerates Fig. 5: `cargo run -p sim --release --bin fig5 [quick|default|paper]`.

use sim::{experiments::fig5, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let (cost, time) = fig5::run(scale);
    println!("{}", cost.render());
    println!("{}", time.render());
    write_csv(&cost, "fig5_cost").expect("write results/fig5_cost.csv");
    write_csv(&time, "fig5_time").expect("write results/fig5_time.csv");
}
