//! The online-algorithm arena:
//! `cargo run -p sim --release --bin arena [quick|default] [seed...]`.
//!
//! Sweeps every registered online admission policy (`Online_CP`,
//! `Online_CP_Multi`, `SP`, `LS_Online`, `EMP_Online`) across the four
//! adversarial workload regimes, scoring each cell against the offline
//! greedy benchmark — and, on the fixed 12-node small instance, against
//! the certified exact oracle. Every cell runs twice (telemetry off,
//! then on) and must produce identical outcomes, so the binary fails
//! loudly on any nondeterminism; CI additionally regenerates
//! `results/arena.json` and byte-compares the two files.

use sim::experiments::arena::{run_arena, ArenaParams};

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let scale = match args.peek().map(String::as_str) {
        Some("quick") | Some("default") => args.next().unwrap_or_default(),
        _ => "quick".to_string(),
    };
    let seeds: Vec<u64> = {
        let parsed: Vec<u64> = args
            .map(|a| {
                a.parse().unwrap_or_else(|_| {
                    eprintln!("usage: arena [quick|default] [seed...]");
                    std::process::exit(2);
                })
            })
            .collect();
        if parsed.is_empty() {
            vec![11, 23]
        } else {
            parsed
        }
    };

    let params = match scale.as_str() {
        "default" => ArenaParams::default_scale(seeds),
        _ => ArenaParams::ci_scale(seeds),
    };
    eprintln!(
        "arena: {} nodes, {} requests/cell, seeds {:?}",
        params.n, params.requests, params.seeds
    );

    let outcome = run_arena(&params);
    for table in outcome.tables() {
        println!("{}", table.render());
    }

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/arena.json", outcome.to_json()).expect("write results/arena.json");
    let snapshot = telemetry::snapshot();
    std::fs::write("results/telemetry.json", snapshot.to_json())
        .expect("write results/telemetry.json");
    println!(
        "wrote results/arena.json ({} cells + {} small-instance rows) and results/telemetry.json",
        outcome.cells.len(),
        outcome.small.len()
    );
}
