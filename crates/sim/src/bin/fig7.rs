//! Regenerates Fig. 7: `cargo run -p sim --release --bin fig7 [quick|default|paper]`.

use sim::{experiments::fig7, write_csv, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args();
    let table = fig7::run(scale);
    println!("{}", table.render());
    write_csv(&table, "fig7").expect("write results/fig7.csv");
}
