//! Minimal ASCII charts for terminal output.
//!
//! The `fig*` binaries print their series as tables (the source of
//! truth) and, where a trend matters, as a chart so the figure's shape
//! is visible without plotting the CSVs.

use std::fmt::Write as _;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (x ascending is not required but renders best).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    #[must_use]
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }
}

/// Renders one or more series as an ASCII scatter/line chart of the given
/// pixel grid size. Each series uses its own glyph; collisions show the
/// later series' glyph.
///
/// Returns an empty string when there are no points.
#[must_use]
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() || width < 2 || height < 2 {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>10.1} +{}", y_max, "-".repeat(width));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == height - 1 {
            format!("{y_min:>10.1}")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>11}{:-<w$}", "+", "", w = width + 1);
    let _ = writeln!(out, "{:>12.1}{:>w$.1}", x_min, x_max, w = width - 1);
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name))
        .collect();
    let _ = writeln!(out, "{:>12}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_in_bounds() {
        let s = Series::new("up", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        let chart = render_chart("demo", &[s], 20, 8);
        assert!(chart.contains("demo"));
        assert!(chart.contains('*'));
        assert!(chart.contains("up"));
        // Height rows plus borders plus legend.
        assert!(chart.lines().count() >= 11);
    }

    #[test]
    fn two_series_get_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let chart = render_chart("two", &[a, b], 12, 6);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
    }

    #[test]
    fn empty_series_render_nothing() {
        assert!(render_chart("x", &[], 10, 5).is_empty());
        let s = Series::new("e", vec![]);
        assert!(render_chart("x", &[s], 10, 5).is_empty());
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = Series::new("flat", vec![(1.0, 3.0), (1.0, 3.0)]);
        let chart = render_chart("flat", &[s], 10, 5);
        assert!(chart.contains('*'));
    }
}
