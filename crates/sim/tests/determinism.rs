//! Regression gate for planner determinism: the same sweep, run twice in
//! the same process, must produce byte-identical cost tables.
//!
//! This is the behavioural end of the `nfv-lint` D1 rule (no unordered
//! containers in result-affecting crates). The linter proves the *source*
//! contains no `HashMap`/`HashSet` in planner code; this test proves the
//! *output* actually repeats — catching any nondeterminism the static rule
//! cannot see (e.g. float reductions over an unordered upstream source, or
//! a future dependency that reintroduces randomized iteration).
//!
//! Only the cost table is compared: the time table contains wall-clock
//! measurements which legitimately differ between runs.

use sim::experiments::fig5;
use sim::ExperimentScale;

/// A reduced Fig. 5 sweep (two sizes, two ratios) keeps this under a few
/// seconds in debug builds while still exercising the full Appro_Multi /
/// Alg_One_Server pipeline on distinct topologies.
const SIZES: [usize; 2] = [50, 100];
const RATIOS: [f64; 2] = [0.10, 0.20];

#[test]
fn fig5_cost_table_is_byte_identical_across_runs() {
    let (cost_a, _time_a) = fig5::run_with(&SIZES, &RATIOS, ExperimentScale::quick());
    let (cost_b, _time_b) = fig5::run_with(&SIZES, &RATIOS, ExperimentScale::quick());
    let csv_a = cost_a.to_csv();
    let csv_b = cost_b.to_csv();
    assert!(
        !csv_a.trim().is_empty(),
        "sweep produced an empty cost table"
    );
    assert_eq!(
        csv_a, csv_b,
        "fig5 cost CSV differs between two in-process runs: planner output \
         depends on iteration order or other ambient state"
    );
}
