//! Property tests for the topology generators: connectivity, determinism,
//! and annotation invariants hold for arbitrary parameters.

use netgraph::{graph_stats, is_connected};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{
    annotate, barabasi_albert, erdos_renyi, fat_tree, grid, place_servers_random,
    place_servers_spread, AnnotationParams, Waxman,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn waxman_always_connected(n in 2usize..120, seed in any::<u64>(),
                               alpha in 0.05f64..0.9, beta in 0.05f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, pos) = Waxman::new(n)
            .with_alpha(alpha)
            .with_beta(beta)
            .generate(&mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(pos.len(), n);
        prop_assert!(is_connected(&g));
        prop_assert!(g.edge_count() >= n - 1);
    }

    #[test]
    fn erdos_renyi_always_connected(n in 2usize..80, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn barabasi_albert_edge_count_formula(n in 5usize..100, m in 1usize..4, seed in any::<u64>()) {
        prop_assume!(n > m);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng);
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        prop_assert_eq!(g.edge_count(), expected);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn grid_structure(rows in 1usize..10, cols in 1usize..10) {
        let g = grid(rows, cols);
        prop_assert_eq!(g.node_count(), rows * cols);
        prop_assert_eq!(g.edge_count(), rows * (cols - 1) + (rows - 1) * cols);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn fat_tree_structure(half in 1usize..5) {
        let k = 2 * half;
        let (g, layout) = fat_tree(k);
        prop_assert_eq!(layout.core.len(), half * half);
        prop_assert_eq!(g.node_count(), half * half + k * k);
        prop_assert!(is_connected(&g));
        // Every aggregation switch links half cores + half edges.
        for pod in &layout.aggregation {
            for &a in pod {
                prop_assert_eq!(g.degree(a), k);
            }
        }
    }

    #[test]
    fn server_placements_are_valid(n in 2usize..100, seed in any::<u64>(),
                                   fraction in 0.01f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        let random = place_servers_random(&g, fraction, &mut rng);
        prop_assert!(!random.is_empty());
        prop_assert!(random.len() <= n);
        let mut sorted = random.clone();
        sorted.dedup();
        prop_assert_eq!(&sorted, &random, "duplicates in placement");

        let count = random.len();
        let spread = place_servers_spread(&g, count);
        prop_assert_eq!(spread.len(), count);
    }

    #[test]
    fn annotation_preserves_structure(n in 2usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = Waxman::new(n).generate(&mut rng);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        prop_assert_eq!(sdn.node_count(), g.node_count());
        prop_assert_eq!(sdn.link_count(), g.edge_count());
        prop_assert_eq!(sdn.servers().len(), servers.len());
        // Endpoints preserved edge by edge.
        for (a, b) in g.edges().zip(sdn.graph().edges()) {
            prop_assert_eq!((a.u, a.v), (b.u, b.v));
        }
    }
}

#[test]
fn real_topologies_match_published_statistics() {
    let geant = topology::geant();
    let s = graph_stats(&geant.graph);
    assert_eq!((s.nodes, s.edges), (40, 61));
    assert!(s.average_degree > 2.5 && s.average_degree < 4.0);

    let isp = topology::as1755();
    let s = graph_stats(&isp.graph);
    assert_eq!((s.nodes, s.edges), (87, 161));
    assert!(s.average_degree > 3.0 && s.average_degree < 4.5);
    // Rocketfuel PoP maps are geometric and low-diameter.
    assert!(s.diameter <= 14.0);
}
