//! Classic random graph models: Erdős–Rényi and Barabási–Albert.
//!
//! Not used by the headline experiments (the paper's generator is
//! GT-ITM/Waxman) but exercised by robustness tests and ablation benches to
//! check the algorithms do not depend on Waxman's geometric structure.

use netgraph::{connected_components, Graph, NodeId};
use rand::Rng;

/// Samples an Erdős–Rényi `G(n, p)` graph with unit edge weights, then
/// repairs connectivity by chaining components together.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is outside `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId::new(i), NodeId::new(j), 1.0)
                    .expect("valid endpoints");
            }
        }
    }
    chain_components(&mut g);
    g
}

/// Samples a Barabási–Albert preferential-attachment graph: starts from a
/// small clique of `m + 1` nodes, then each new node attaches to `m`
/// existing nodes with probability proportional to degree. Unit weights.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more nodes than attachments");
    let mut g = Graph::with_nodes(n);
    // Degree-weighted urn: node id appears once per incident edge.
    let mut urn: Vec<usize> = Vec::new();
    // Seed clique.
    for i in 0..=m {
        for j in (i + 1)..=m {
            g.add_edge(NodeId::new(i), NodeId::new(j), 1.0)
                .expect("valid endpoints");
            urn.push(i);
            urn.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let pick = urn[rng.gen_range(0..urn.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &u in &chosen {
            g.add_edge(NodeId::new(v), NodeId::new(u), 1.0)
                .expect("valid endpoints");
            urn.push(v);
            urn.push(u);
        }
    }
    g
}

/// Connects components with unit-weight bridge edges (first node of each
/// component to the first node of the next).
fn chain_components(g: &mut Graph) {
    let comps = connected_components(g);
    for w in comps.windows(2) {
        g.add_edge(w[0][0], w[1][0], 1.0).expect("valid endpoints");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_is_connected_even_when_sparse() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(50, 0.01, &mut rng);
        assert_eq!(g.node_count(), 50);
        assert!(netgraph::is_connected(&g));
    }

    #[test]
    fn er_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let sparse = erdos_renyi(60, 0.05, &mut rng);
        let dense = erdos_renyi(60, 0.5, &mut rng);
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn er_p_one_is_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn ba_has_expected_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50;
        let m = 2;
        let g = barabasi_albert(n, m, &mut rng);
        // clique edges + m per added node
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        assert!(netgraph::is_connected(&g));
    }

    #[test]
    fn ba_produces_hubs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(200, 2, &mut rng);
        let max_deg = g.nodes().map(|n| g.degree(n)).max().unwrap();
        let avg_deg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_deg as f64 > 3.0 * avg_deg,
            "expected a hub: max {max_deg}, avg {avg_deg}"
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn er_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "need more nodes than attachments")]
    fn ba_rejects_small_n() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = barabasi_albert(3, 3, &mut rng);
    }
}
