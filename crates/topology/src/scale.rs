//! Scalable structured generators that stream edges straight into a
//! [`CsrGraph`] — no intermediate per-node adjacency `Vec`s.
//!
//! The classic generators in this crate build a [`netgraph::Graph`]
//! (`Vec<Vec<Neighbor>>`), which is one heap allocation per node — fine at
//! the paper's n=250, wasteful at the 10k+ scale the distance-oracle work
//! targets. The generators here emit a flat [`EdgeList`] instead, which
//! converts to a CSR snapshot with two counting-sort passes
//! ([`CsrGraph::from_edge_list`]) or, when an [`sdn::Sdn`] substrate is
//! needed, to a `Graph` in one pass with exactly the same edge ids and
//! adjacency order.
//!
//! Three families cover the evaluation's scaling stories:
//!
//! * [`fat_tree_edges`] — k-ary fat-tree/Clos data centers (parameterized
//!   radix); edge-order-identical to [`crate::fat_tree`].
//! * [`barabasi_albert_edges`] — preferential-attachment ISP-like graphs;
//!   stream-identical to [`crate::barabasi_albert`] for the same RNG.
//! * [`metro_rings_edges`] — concentric metro rings with radial spokes,
//!   the standard metro-aggregation shape.

use crate::structured::FatTreeLayout;
use netgraph::{CsrGraph, Graph, NodeId};
use rand::Rng;

/// A flat undirected edge list with a fixed node universe — the streaming
/// interchange format between the scalable generators and [`CsrGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList {
    nodes: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl EdgeList {
    /// An empty list over `nodes` nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        EdgeList {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Appends an undirected edge. Endpoints must be in range and distinct
    /// (checked when the list is materialised, not here — pushing is the
    /// hot loop).
    pub fn push(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.edges.push((u, v, w));
    }

    /// Number of nodes in the universe.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The raw edge triples, in insertion order (edge `i` becomes
    /// `EdgeId(i)` in both materialisations).
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId, f64)] {
        &self.edges
    }

    /// Materialises the CSR snapshot directly — the zero-`Graph` path.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    #[must_use]
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edge_list(self.nodes, &self.edges)
    }

    /// Materialises a [`Graph`] with identical node/edge ids and adjacency
    /// order, for callers that need the mutable-graph API (e.g.
    /// [`crate::annotate`]).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.nodes);
        for &(u, v, w) in &self.edges {
            g.add_edge(u, v, w)
                .expect("edge list endpoints are in range");
        }
        g
    }
}

/// [`crate::fat_tree`] as an edge stream: same ids, same layout, same edge
/// insertion order, without building the intermediate adjacency lists.
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
#[must_use]
pub fn fat_tree_edges(k: usize) -> (EdgeList, FatTreeLayout) {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree parameter must be even and >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let mut list = EdgeList::new(cores + k * k);
    let core: Vec<NodeId> = (0..cores).map(NodeId::new).collect();
    let mut aggregation = Vec::with_capacity(k);
    let mut edge = Vec::with_capacity(k);
    for pod in 0..k {
        let base = cores + pod * k;
        let aggs: Vec<NodeId> = (0..half).map(|i| NodeId::new(base + i)).collect();
        let edges: Vec<NodeId> = (0..half).map(|i| NodeId::new(base + half + i)).collect();
        for (ai, &a) in aggs.iter().enumerate() {
            for j in 0..half {
                if let Some(&c) = core.get(ai * half + j) {
                    list.push(a, c, 1.0);
                }
            }
            for &e in &edges {
                list.push(a, e, 1.0);
            }
        }
        aggregation.push(aggs);
        edge.push(edges);
    }
    (
        list,
        FatTreeLayout {
            core,
            aggregation,
            edge,
        },
    )
}

/// [`crate::barabasi_albert`] as an edge stream: for the same RNG state it
/// draws the same random sequence and emits the same edges in the same
/// order.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert_edges<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> EdgeList {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more nodes than attachments");
    let mut list = EdgeList::new(n);
    // Degree-weighted urn: node id appears once per incident edge.
    let mut urn: Vec<usize> = Vec::new();
    for i in 0..=m {
        for j in (i + 1)..=m {
            list.push(NodeId::new(i), NodeId::new(j), 1.0);
            urn.push(i);
            urn.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let pick = urn.get(rng.gen_range(0..urn.len())).copied();
            if let Some(pick) = pick {
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
        }
        for &u in &chosen {
            list.push(NodeId::new(v), NodeId::new(u), 1.0);
            urn.push(v);
            urn.push(u);
        }
    }
    list
}

/// Concentric metro/aggregation rings: `rings` rings of `ring_size` nodes
/// each, ring `r` node `i` having id `r * ring_size + i`. Each ring is a
/// unit-weight cycle; node `i` of ring `r` connects radially to node `i`
/// of ring `r + 1`. The result is connected for any positive parameters.
///
/// # Panics
///
/// Panics if either parameter is zero.
#[must_use]
pub fn metro_rings_edges(rings: usize, ring_size: usize) -> EdgeList {
    assert!(rings > 0 && ring_size > 0, "parameters must be positive");
    let mut list = EdgeList::new(rings * ring_size);
    for r in 0..rings {
        let base = r * ring_size;
        // Cycle within the ring (a 2-ring is a single edge, a 1-ring none).
        if ring_size >= 2 {
            let closing = if ring_size > 2 {
                ring_size
            } else {
                ring_size - 1
            };
            for i in 0..closing {
                let j = (i + 1) % ring_size;
                list.push(NodeId::new(base + i), NodeId::new(base + j), 1.0);
            }
        }
        // Radial spokes to the next ring out.
        if r + 1 < rings {
            for i in 0..ring_size {
                list.push(
                    NodeId::new(base + i),
                    NodeId::new(base + ring_size + i),
                    1.0,
                );
            }
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fat_tree_stream_matches_classic_generator() {
        for k in [2, 4, 6] {
            let (list, layout) = fat_tree_edges(k);
            let (g, classic_layout) = crate::fat_tree(k);
            assert_eq!(layout, classic_layout);
            assert_eq!(list.node_count(), g.node_count());
            assert_eq!(list.edge_count(), g.edge_count());
            // Same ids, same adjacency order: the CSR snapshots are equal.
            assert_eq!(list.to_csr(), CsrGraph::from_graph(&g));
            assert_eq!(CsrGraph::from_graph(&list.to_graph()), list.to_csr());
        }
    }

    #[test]
    fn fat_tree_stream_counts_and_connectivity() {
        let k = 8;
        let (list, _) = fat_tree_edges(k);
        assert_eq!(list.node_count(), k * k / 4 + k * k);
        // Per pod: (k/2) aggs x ((k/2) core links + (k/2) edge links).
        assert_eq!(list.edge_count(), k * (k / 2) * k);
        assert!(netgraph::is_connected(&list.to_graph()));
    }

    #[test]
    fn ba_stream_matches_classic_generator() {
        let (n, m) = (120, 3);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let list = barabasi_albert_edges(n, m, &mut rng_a);
        let g = crate::barabasi_albert(n, m, &mut rng_b);
        assert_eq!(list.to_csr(), CsrGraph::from_graph(&g));
    }

    #[test]
    fn ba_stream_is_deterministic_and_connected() {
        let (n, m) = (300, 2);
        let a = barabasi_albert_edges(n, m, &mut StdRng::seed_from_u64(7));
        let b = barabasi_albert_edges(n, m, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(a.edge_count(), expected);
        assert!(netgraph::is_connected(&a.to_graph()));
    }

    #[test]
    fn metro_rings_shape() {
        let list = metro_rings_edges(3, 6);
        assert_eq!(list.node_count(), 18);
        // 3 rings x 6 cycle edges + 2 x 6 spokes.
        assert_eq!(list.edge_count(), 3 * 6 + 2 * 6);
        let g = list.to_graph();
        assert!(netgraph::is_connected(&g));
        // Deterministic: no RNG involved.
        assert_eq!(list, metro_rings_edges(3, 6));
    }

    #[test]
    fn metro_rings_degenerate_sizes() {
        // 1x1: a single node, no edges.
        let dot = metro_rings_edges(1, 1);
        assert_eq!(dot.edge_count(), 0);
        // Rings of two collapse to one edge, not a doubled edge.
        let pair = metro_rings_edges(2, 2);
        assert_eq!(pair.edge_count(), 2 + 2);
        assert!(netgraph::is_connected(&pair.to_graph()));
        // A chain of 1-node rings is a path.
        let path = metro_rings_edges(4, 1);
        assert_eq!(path.edge_count(), 3);
        assert!(netgraph::is_connected(&path.to_graph()));
    }

    #[test]
    fn large_fat_tree_builds_csr_directly() {
        // k=20 -> 500 nodes, 4000 edges; enough to notice quadratic slips.
        let (list, _) = fat_tree_edges(20);
        let csr = list.to_csr();
        assert_eq!(csr.node_count(), 500);
        assert_eq!(csr.arc_count(), 2 * list.edge_count());
    }
}
