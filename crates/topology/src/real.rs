//! The two "real" topologies of the paper's evaluation (§VI-A).
//!
//! * [`geant`] — the pan-European GÉANT research network [5]: 40 PoPs and
//!   61 links, matching the public topology-zoo snapshot's size and mesh
//!   density. The embedded adjacency is an approximation of the 2012
//!   snapshot (exact link data is not redistributable); what the
//!   experiments rely on — size, diameter, European hub structure — is
//!   preserved.
//! * [`as1755`] — a Rocketfuel-scale ISP map standing in for AS1755
//!   (Ebone) [20]: 87 PoPs and 161 links, generated deterministically from
//!   a fixed geometric seed (spanning tree + shortest chords), reproducing
//!   the sparse PoP-level density of the published map.

use netgraph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A topology with human-readable node names.
#[derive(Debug, Clone)]
pub struct NamedTopology {
    /// Short identifier ("GEANT", "AS1755").
    pub name: &'static str,
    /// The graph (unit edge weights; annotation assigns costs).
    pub graph: Graph,
    /// One name per node, indexed by node id.
    pub node_names: Vec<String>,
}

impl NamedTopology {
    /// Looks a node up by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId::new)
    }
}

const GEANT_CITIES: [&str; 40] = [
    "Amsterdam",
    "Athens",
    "Belgrade",
    "Bratislava",
    "Brussels",
    "Bucharest",
    "Budapest",
    "Copenhagen",
    "Dublin",
    "Frankfurt",
    "Geneva",
    "Hamburg",
    "Helsinki",
    "Istanbul",
    "Kaunas",
    "Kiev",
    "Lisbon",
    "Ljubljana",
    "London",
    "Luxembourg",
    "Madrid",
    "Milan",
    "Moscow",
    "Nicosia",
    "Oslo",
    "Paris",
    "Prague",
    "Riga",
    "Rome",
    "Sofia",
    "Stockholm",
    "Tallinn",
    "Tirana",
    "Vienna",
    "Vilnius",
    "Warsaw",
    "Zagreb",
    "Zurich",
    "Malta",
    "Jerusalem",
];

const GEANT_LINKS: [(usize, usize); 61] = [
    (0, 18),  // Amsterdam - London
    (0, 9),   // Amsterdam - Frankfurt
    (0, 4),   // Amsterdam - Brussels
    (0, 11),  // Amsterdam - Hamburg
    (0, 8),   // Amsterdam - Dublin
    (18, 25), // London - Paris
    (18, 8),  // London - Dublin
    (18, 9),  // London - Frankfurt
    (18, 16), // London - Lisbon
    (25, 10), // Paris - Geneva
    (25, 20), // Paris - Madrid
    (25, 4),  // Paris - Brussels
    (25, 19), // Paris - Luxembourg
    (9, 10),  // Frankfurt - Geneva
    (9, 26),  // Frankfurt - Prague
    (9, 11),  // Frankfurt - Hamburg
    (9, 19),  // Frankfurt - Luxembourg
    (9, 37),  // Frankfurt - Zurich
    (9, 22),  // Frankfurt - Moscow
    (9, 39),  // Frankfurt - Jerusalem
    (10, 21), // Geneva - Milan
    (10, 37), // Geneva - Zurich
    (37, 21), // Zurich - Milan
    (21, 28), // Milan - Rome
    (21, 33), // Milan - Vienna
    (21, 1),  // Milan - Athens
    (28, 38), // Rome - Malta
    (28, 32), // Rome - Tirana
    (1, 29),  // Athens - Sofia
    (1, 23),  // Athens - Nicosia
    (1, 13),  // Athens - Istanbul
    (23, 39), // Nicosia - Jerusalem
    (33, 3),  // Vienna - Bratislava
    (33, 6),  // Vienna - Budapest
    (33, 26), // Vienna - Prague
    (33, 17), // Vienna - Ljubljana
    (6, 36),  // Budapest - Zagreb
    (6, 2),   // Budapest - Belgrade
    (6, 5),   // Budapest - Bucharest
    (5, 29),  // Bucharest - Sofia
    (5, 13),  // Bucharest - Istanbul
    (5, 15),  // Bucharest - Kiev
    (29, 2),  // Sofia - Belgrade
    (2, 36),  // Belgrade - Zagreb
    (17, 36), // Ljubljana - Zagreb
    (26, 3),  // Prague - Bratislava
    (26, 35), // Prague - Warsaw
    (35, 14), // Warsaw - Kaunas
    (14, 27), // Kaunas - Riga
    (14, 34), // Kaunas - Vilnius
    (34, 35), // Vilnius - Warsaw
    (27, 31), // Riga - Tallinn
    (31, 12), // Tallinn - Helsinki
    (12, 30), // Helsinki - Stockholm
    (30, 7),  // Stockholm - Copenhagen
    (30, 24), // Stockholm - Oslo
    (24, 7),  // Oslo - Copenhagen
    (7, 11),  // Copenhagen - Hamburg
    (35, 15), // Warsaw - Kiev
    (15, 22), // Kiev - Moscow
    (16, 20), // Lisbon - Madrid
];

/// The GÉANT pan-European topology: 40 nodes, 61 links, unit weights.
#[must_use]
pub fn geant() -> NamedTopology {
    let mut g = Graph::with_nodes(GEANT_CITIES.len());
    for &(u, v) in &GEANT_LINKS {
        g.add_edge(NodeId::new(u), NodeId::new(v), 1.0)
            .expect("embedded links are valid");
    }
    NamedTopology {
        name: "GEANT",
        graph: g,
        node_names: GEANT_CITIES.iter().map(|s| (*s).to_string()).collect(),
    }
}

/// The AS1755-scale ISP topology: 87 PoPs, 161 links, unit weights.
///
/// Construction (deterministic): 87 points from a fixed geometric seed; a
/// nearest-previous-neighbor spanning tree (86 edges); then the 75
/// shortest chords that are not already links. This reproduces the sparse
/// geometric structure of Rocketfuel PoP maps at exactly the published
/// node/link counts.
#[must_use]
pub fn as1755() -> NamedTopology {
    const N: usize = 87;
    const LINKS: usize = 161;
    let mut rng = StdRng::seed_from_u64(0x1755);
    let positions: Vec<(f64, f64)> = (0..N)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = positions[a];
        let (bx, by) = positions[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    };

    let mut g = Graph::with_nodes(N);
    let mut linked = std::collections::HashSet::new();
    // Spanning tree: connect every node to its nearest predecessor.
    for i in 1..N {
        let j = (0..i)
            .min_by(|&a, &b| dist(i, a).partial_cmp(&dist(i, b)).expect("finite"))
            .expect("i >= 1");
        g.add_edge(NodeId::new(i), NodeId::new(j), 1.0)
            .expect("valid endpoints");
        linked.insert((j.min(i), j.max(i)));
    }
    // Chords: shortest unused pairs.
    let mut candidates: Vec<(usize, usize)> = (0..N)
        .flat_map(|i| ((i + 1)..N).map(move |j| (i, j)))
        .filter(|p| !linked.contains(p))
        .collect();
    candidates.sort_by(|&(a, b), &(c, d)| dist(a, b).partial_cmp(&dist(c, d)).expect("finite"));
    for &(i, j) in candidates.iter().take(LINKS - (N - 1)) {
        g.add_edge(NodeId::new(i), NodeId::new(j), 1.0)
            .expect("valid endpoints");
    }

    NamedTopology {
        name: "AS1755",
        graph: g,
        node_names: (0..N).map(|i| format!("pop{i}")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geant_shape() {
        let t = geant();
        assert_eq!(t.graph.node_count(), 40);
        assert_eq!(t.graph.edge_count(), 61);
        assert!(netgraph::is_connected(&t.graph));
        assert_eq!(t.node_names.len(), 40);
    }

    #[test]
    fn geant_every_node_linked() {
        let t = geant();
        for n in t.graph.nodes() {
            assert!(
                t.graph.degree(n) >= 1,
                "{} is isolated",
                t.node_names[n.index()]
            );
        }
    }

    #[test]
    fn geant_frankfurt_is_a_hub() {
        let t = geant();
        let fra = t.node_by_name("Frankfurt").unwrap();
        assert!(t.graph.degree(fra) >= 6);
        assert!(t.node_by_name("Atlantis").is_none());
    }

    #[test]
    fn geant_reasonable_diameter() {
        let t = geant();
        // Hop diameter of the real GÉANT is ~6-8.
        let mut diameter = 0.0f64;
        for n in t.graph.nodes() {
            let spt = netgraph::dijkstra(&t.graph, n);
            for m in t.graph.nodes() {
                diameter = diameter.max(spt.distance(m).unwrap());
            }
        }
        assert!(diameter <= 9.0, "diameter {diameter} too large");
    }

    #[test]
    fn as1755_shape() {
        let t = as1755();
        assert_eq!(t.graph.node_count(), 87);
        assert_eq!(t.graph.edge_count(), 161);
        assert!(netgraph::is_connected(&t.graph));
    }

    #[test]
    fn as1755_is_deterministic() {
        let a = as1755();
        let b = as1755();
        let ea: Vec<_> = a.graph.edges().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.graph.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn as1755_is_sparse_like_an_isp() {
        let t = as1755();
        let avg_degree = 2.0 * t.graph.edge_count() as f64 / t.graph.node_count() as f64;
        assert!(
            avg_degree < 5.0,
            "avg degree {avg_degree} too dense for an ISP map"
        );
    }
}
