//! Plain-text edge-list I/O for topologies.
//!
//! The format is the lowest common denominator used by topology
//! collections (Rocketfuel `weights` files, topology-zoo exports):
//!
//! ```text
//! # comment lines start with '#'
//! <node-count>
//! <u> <v> [weight]
//! ...
//! ```
//!
//! Node ids are `0..node-count`; the weight defaults to `1.0`. This lets
//! users run the algorithms on their own measured topologies without
//! touching the generators.

use netgraph::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTopologyError {
    /// The header line (node count) is missing or not an integer.
    BadHeader(String),
    /// An edge line does not have 2–3 whitespace-separated fields.
    BadEdgeLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An endpoint index is out of range or a weight is invalid.
    BadEdge {
        /// 1-based line number in the input.
        line: usize,
        /// Why the edge was rejected.
        reason: String,
    },
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTopologyError::BadHeader(h) => {
                write!(f, "expected a node count header, got {h:?}")
            }
            ParseTopologyError::BadEdgeLine { line, content } => {
                write!(f, "line {line}: expected 'u v [weight]', got {content:?}")
            }
            ParseTopologyError::BadEdge { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl Error for ParseTopologyError {}

/// Parses an edge-list document into a graph.
///
/// # Errors
///
/// Returns a [`ParseTopologyError`] describing the first malformed line.
pub fn parse_edge_list(input: &str) -> Result<Graph, ParseTopologyError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseTopologyError::BadHeader("<empty input>".into()))?;
    let n: usize = header
        .parse()
        .map_err(|_| ParseTopologyError::BadHeader(header.to_string()))?;
    let mut g = Graph::with_nodes(n);

    for (line, content) in lines {
        let fields: Vec<&str> = content.split_whitespace().collect();
        if !(2..=3).contains(&fields.len()) {
            return Err(ParseTopologyError::BadEdgeLine {
                line,
                content: content.to_string(),
            });
        }
        let parse_node = |s: &str| -> Result<NodeId, ParseTopologyError> {
            let idx: usize = s.parse().map_err(|_| ParseTopologyError::BadEdge {
                line,
                reason: format!("{s:?} is not a node index"),
            })?;
            if idx >= n {
                return Err(ParseTopologyError::BadEdge {
                    line,
                    reason: format!("node {idx} out of range (n = {n})"),
                });
            }
            Ok(NodeId::new(idx))
        };
        let u = parse_node(fields[0])?;
        let v = parse_node(fields[1])?;
        let w: f64 = match fields.get(2) {
            None => 1.0,
            Some(s) => s.parse().map_err(|_| ParseTopologyError::BadEdge {
                line,
                reason: format!("{s:?} is not a weight"),
            })?,
        };
        g.add_edge(u, v, w)
            .map_err(|e| ParseTopologyError::BadEdge {
                line,
                reason: e.to_string(),
            })?;
    }
    Ok(g)
}

/// Serializes a graph as an edge-list document round-trippable through
/// [`parse_edge_list`].
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {} nodes, {} edges", g.node_count(), g.edge_count());
    let _ = writeln!(out, "{}", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "{} {} {}", e.u.index(), e.v.index(), e.weight);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let g = parse_edge_list("3\n0 1\n1 2 2.5\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(netgraph::EdgeId::new(0)).weight, 1.0);
        assert_eq!(g.edge(netgraph::EdgeId::new(1)).weight, 2.5);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse_edge_list("# hello\n\n2\n# edge below\n0 1 3\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn round_trip() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let (g, _) = crate::Waxman::new(25).generate(&mut rng);
        let doc = to_edge_list(&g);
        let parsed = parse_edge_list(&doc).unwrap();
        assert_eq!(parsed.node_count(), g.node_count());
        assert_eq!(parsed.edge_count(), g.edge_count());
        for (a, b) in g.edges().zip(parsed.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.weight - b.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_edge_list("abc\n"),
            Err(ParseTopologyError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list(""),
            Err(ParseTopologyError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_node() {
        let err = parse_edge_list("2\n0 5\n").unwrap_err();
        assert!(matches!(err, ParseTopologyError::BadEdge { line: 2, .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_malformed_edge_lines() {
        assert!(matches!(
            parse_edge_list("2\n0\n"),
            Err(ParseTopologyError::BadEdgeLine { .. })
        ));
        assert!(matches!(
            parse_edge_list("2\n0 1 2 3\n"),
            Err(ParseTopologyError::BadEdgeLine { .. })
        ));
        assert!(matches!(
            parse_edge_list("2\n0 1 x\n"),
            Err(ParseTopologyError::BadEdge { .. })
        ));
    }

    #[test]
    fn rejects_self_loop_via_graph_validation() {
        let err = parse_edge_list("2\n1 1\n").unwrap_err();
        assert!(err.to_string().contains("self-loop"));
    }
}
