//! Turning a raw graph into a fully parameterized [`Sdn`].
//!
//! §VI-A of the paper fixes the parameter ranges reproduced by
//! [`AnnotationParams::default`]:
//!
//! * link bandwidth capacity: 1 000 – 10 000 Mbps [11],
//! * server computing capacity: 4 000 – 12 000 MHz [8],
//! * servers at 10 % of the switches, randomly co-located,
//! * unit resource costs: link costs drawn from 0.5 – 2.0 per Mbps·hop,
//!   server costs from 0.05 – 0.2 per MHz. The paper charges
//!   pay-as-you-go unit prices but does not publish the price table; the
//!   calibration here puts a request's computing cost at roughly 5–20 %
//!   of its bandwidth cost, matching the paper's regime where the
//!   operational cost is bandwidth-dominated and extra chain instances
//!   (K > 1) pay off by shortening the distribution tree — the effect
//!   Fig. 5 measures. With computing priced comparably to bandwidth the
//!   multi-server tradeoff disappears and `Appro_Multi` degenerates to
//!   `K = 1` behaviour.

use netgraph::{Graph, NodeId};
use rand::Rng;
use sdn::{Sdn, SdnBuilder, SdnError};

/// Parameter ranges used when annotating a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationParams {
    /// Link bandwidth capacity range (Mbps).
    pub bandwidth_mbps: (f64, f64),
    /// Server computing capacity range (MHz).
    pub computing_mhz: (f64, f64),
    /// Unit bandwidth cost range.
    pub link_cost: (f64, f64),
    /// Unit computing cost range.
    pub server_cost: (f64, f64),
}

impl Default for AnnotationParams {
    fn default() -> Self {
        AnnotationParams {
            bandwidth_mbps: (1_000.0, 10_000.0),
            computing_mhz: (4_000.0, 12_000.0),
            link_cost: (0.5, 2.0),
            server_cost: (0.05, 0.2),
        }
    }
}

impl AnnotationParams {
    fn sample<R: Rng + ?Sized>(range: (f64, f64), rng: &mut R) -> f64 {
        if range.0 >= range.1 {
            range.0
        } else {
            rng.gen_range(range.0..range.1)
        }
    }
}

/// Selects `fraction` of the nodes (at least one) uniformly at random as
/// server locations — the paper's placement for synthetic topologies.
///
/// # Panics
///
/// Panics if the graph is empty or `fraction` is not in `(0, 1]`.
pub fn place_servers_random<R: Rng + ?Sized>(g: &Graph, fraction: f64, rng: &mut R) -> Vec<NodeId> {
    assert!(g.node_count() > 0, "cannot place servers in an empty graph");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "server fraction must be in (0, 1]"
    );
    let count = ((g.node_count() as f64 * fraction).round() as usize).max(1);
    let mut ids: Vec<NodeId> = g.nodes().collect();
    // Fisher-Yates prefix shuffle.
    for i in 0..count.min(ids.len()) {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    let mut chosen: Vec<NodeId> = ids.into_iter().take(count).collect();
    chosen.sort_unstable();
    chosen
}

/// Selects `count` server locations spread across the graph: repeatedly
/// picks the node maximizing hop distance to the already chosen set
/// (farthest-point heuristic, seeded by the highest-degree node).
/// Deterministic; used for the real topologies where the paper cites fixed
/// server deployments (\[7\], \[19\]).
///
/// # Panics
///
/// Panics if `count` is zero or exceeds the node count.
#[must_use]
pub fn place_servers_spread(g: &Graph, count: usize) -> Vec<NodeId> {
    assert!(count > 0, "need at least one server");
    assert!(count <= g.node_count(), "more servers than nodes");
    let seed = g
        .nodes()
        .max_by_key(|&n| (g.degree(n), std::cmp::Reverse(n)))
        .expect("non-empty graph");
    let mut chosen = vec![seed];
    while chosen.len() < count {
        // Multi-source BFS distance to the chosen set.
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut queue = std::collections::VecDeque::new();
        for &c in &chosen {
            dist[c.index()] = 0;
            queue.push_back(c);
        }
        while let Some(u) = queue.pop_front() {
            for nb in g.neighbors(u) {
                if dist[nb.node.index()] == usize::MAX {
                    dist[nb.node.index()] = dist[u.index()] + 1;
                    queue.push_back(nb.node);
                }
            }
        }
        let next = g
            .nodes()
            .filter(|n| !chosen.contains(n))
            .max_by_key(|&n| {
                let d = dist[n.index()];
                (if d == usize::MAX { 0 } else { d }, std::cmp::Reverse(n))
            })
            .expect("count <= node_count");
        chosen.push(next);
    }
    chosen.sort_unstable();
    chosen
}

/// Annotates a raw topology into an [`Sdn`]: every edge becomes a link
/// with sampled capacity and unit cost, and each node in `servers` gets a
/// server with sampled capacity and unit cost.
///
/// # Errors
///
/// Returns an error if `servers` references a node outside the graph.
pub fn annotate<R: Rng + ?Sized>(
    g: &Graph,
    servers: &[NodeId],
    params: &AnnotationParams,
    rng: &mut R,
) -> Result<Sdn, SdnError> {
    let mut b = SdnBuilder::new();
    for _ in g.nodes() {
        b.add_switch();
    }
    for &s in servers {
        let cap = AnnotationParams::sample(params.computing_mhz, rng);
        let cost = AnnotationParams::sample(params.server_cost, rng);
        b.attach_server(s, cap, cost)?;
    }
    for e in g.edges() {
        let cap = AnnotationParams::sample(params.bandwidth_mbps, rng);
        let cost = AnnotationParams::sample(params.link_cost, rng);
        b.add_link(e.u, e.v, cap, cost)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0)
                .unwrap();
        }
        g
    }

    #[test]
    fn annotation_respects_ranges() {
        let g = ring(30);
        let mut rng = StdRng::seed_from_u64(1);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        assert_eq!(sdn.node_count(), 30);
        assert_eq!(sdn.link_count(), 30);
        assert_eq!(sdn.servers().len(), 3);
        for e in sdn.graph().edges() {
            let cap = sdn.bandwidth_capacity(e.id);
            assert!((1_000.0..10_000.0).contains(&cap));
            assert!((0.5..2.0).contains(&e.weight));
        }
        for &s in sdn.servers() {
            let cap = sdn.computing_capacity(s).unwrap();
            assert!((4_000.0..12_000.0).contains(&cap));
        }
    }

    #[test]
    fn ten_percent_servers_rounds_and_floors_at_one() {
        let g = ring(5);
        let mut rng = StdRng::seed_from_u64(2);
        let s = place_servers_random(&g, 0.1, &mut rng);
        assert_eq!(s.len(), 1);
        let s = place_servers_random(&g, 1.0, &mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn random_placement_has_no_duplicates() {
        let g = ring(50);
        let mut rng = StdRng::seed_from_u64(3);
        let s = place_servers_random(&g, 0.3, &mut rng);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(s, dedup);
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn spread_placement_is_deterministic_and_spread() {
        let g = ring(20);
        let a = place_servers_spread(&g, 4);
        let b = place_servers_spread(&g, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // On a ring of 20, four spread servers should be >= 3 hops apart.
        for w in a.windows(2) {
            let gap = w[1].index() - w[0].index();
            assert!(gap >= 3, "servers {a:?} not spread");
        }
    }

    #[test]
    fn annotate_rejects_unknown_server_node() {
        let g = ring(4);
        let mut rng = StdRng::seed_from_u64(4);
        let err = annotate(
            &g,
            &[NodeId::new(99)],
            &AnnotationParams::default(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SdnError::UnknownNode(_)));
    }

    #[test]
    fn degenerate_range_uses_lower_bound() {
        let g = ring(4);
        let mut rng = StdRng::seed_from_u64(5);
        let params = AnnotationParams {
            bandwidth_mbps: (500.0, 500.0),
            ..AnnotationParams::default()
        };
        let sdn = annotate(&g, &[NodeId::new(0)], &params, &mut rng).unwrap();
        for e in sdn.graph().edges() {
            assert_eq!(sdn.bandwidth_capacity(e.id), 500.0);
        }
    }
}
