//! Structured topologies: 2-D grids and k-ary fat-trees.

use netgraph::{Graph, NodeId};

/// Builds a `rows × cols` grid with unit edge weights.
///
/// Node `(r, c)` has id `r · cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                g.add_edge(NodeId::new(i), NodeId::new(i + 1), 1.0)
                    .expect("valid endpoints");
            }
            if r + 1 < rows {
                g.add_edge(NodeId::new(i), NodeId::new(i + cols), 1.0)
                    .expect("valid endpoints");
            }
        }
    }
    g
}

/// Node roles within a [`fat_tree`], in id order.
///
/// For parameter `k` the ids are laid out as:
/// `[0, k²/4)` core switches, then per pod `k/2` aggregation followed by
/// `k/2` edge switches. (Hosts are not modelled — multicast endpoints are
/// edge switches, matching the paper's switch-level view of a DC network.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTreeLayout {
    /// The `(k/2)²` core switch ids.
    pub core: Vec<NodeId>,
    /// Aggregation switch ids, grouped by pod.
    pub aggregation: Vec<Vec<NodeId>>,
    /// Edge switch ids, grouped by pod.
    pub edge: Vec<Vec<NodeId>>,
}

/// Builds a `k`-ary fat-tree of switches (k pods, `(k/2)²` cores), unit
/// edge weights. Returns the graph and the role layout.
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
#[must_use]
pub fn fat_tree(k: usize) -> (Graph, FatTreeLayout) {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree parameter must be even and >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let mut g = Graph::with_nodes(cores + k * k); // cores + (agg + edge) per pod
    let core: Vec<NodeId> = (0..cores).map(NodeId::new).collect();
    let mut aggregation = Vec::with_capacity(k);
    let mut edge = Vec::with_capacity(k);
    for pod in 0..k {
        let base = cores + pod * k;
        let aggs: Vec<NodeId> = (0..half).map(|i| NodeId::new(base + i)).collect();
        let edges: Vec<NodeId> = (0..half).map(|i| NodeId::new(base + half + i)).collect();
        // Each aggregation switch connects to half the cores.
        for (ai, &a) in aggs.iter().enumerate() {
            for j in 0..half {
                let c = core[ai * half + j];
                g.add_edge(a, c, 1.0).expect("valid endpoints");
            }
            // Full bipartite agg-edge within the pod.
            for &e in &edges {
                g.add_edge(a, e, 1.0).expect("valid endpoints");
            }
        }
        aggregation.push(aggs);
        edge.push(edges);
    }
    (
        g,
        FatTreeLayout {
            core,
            aggregation,
            edge,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert!(netgraph::is_connected(&g));
    }

    #[test]
    fn grid_degree_bounds() {
        let g = grid(5, 5);
        for n in g.nodes() {
            let d = g.degree(n);
            assert!((2..=4).contains(&d));
        }
    }

    #[test]
    fn single_cell_grid() {
        let g = grid(1, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fat_tree_k4_shape() {
        let (g, layout) = fat_tree(4);
        assert_eq!(layout.core.len(), 4);
        assert_eq!(layout.aggregation.len(), 4);
        assert_eq!(layout.edge.len(), 4);
        assert_eq!(g.node_count(), 4 + 16);
        // Per pod: 2 aggs * (2 core links + 2 edge links) = 8 edges; 4 pods = 32.
        assert_eq!(g.edge_count(), 32);
        assert!(netgraph::is_connected(&g));
    }

    #[test]
    fn fat_tree_edge_switches_reach_each_other() {
        let (g, layout) = fat_tree(4);
        let a = layout.edge[0][0];
        let b = layout.edge[3][1];
        let spt = netgraph::dijkstra(&g, a);
        // edge -> agg -> core -> agg -> edge = 4 hops.
        assert_eq!(spt.distance(b), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn fat_tree_rejects_odd_k() {
        let _ = fat_tree(3);
    }
}
