//! # topology
//!
//! Network topology generation for the NFV-multicast evaluation:
//!
//! * [`Waxman`] — the GT-ITM-style random topology used for the paper's
//!   synthetic networks of 50–250 nodes (§VI-A). GT-ITM's flat random
//!   model *is* the Waxman model: nodes are placed in a unit square and
//!   connected with probability `α·exp(−d/(β·L))`.
//! * [`erdos_renyi`] / [`barabasi_albert`] — alternative random models for
//!   robustness tests and ablations.
//! * [`grid`] / [`fat_tree`] — structured topologies; the fat-tree backs
//!   the data-center example (multicasting for system monitoring).
//! * [`geant`] / [`as1755`] — the two "real" topologies of §VI: the
//!   pan-European GÉANT research network and a Rocketfuel-scale ISP map.
//! * [`annotate`] — turns a raw graph into an [`sdn::Sdn`] with the
//!   paper's capacity ranges (links 1 000–10 000 Mbps, servers
//!   4 000–12 000 MHz) and server placement (10 % of switches).
//!
//! All generators take an explicit RNG so experiments are reproducible
//! from a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod annotate;
mod io;
mod random;
mod real;
mod scale;
mod structured;
mod waxman;

pub use annotate::{annotate, place_servers_random, place_servers_spread, AnnotationParams};
pub use io::{parse_edge_list, to_edge_list, ParseTopologyError};
pub use random::{barabasi_albert, erdos_renyi};
pub use real::{as1755, geant, NamedTopology};
pub use scale::{barabasi_albert_edges, fat_tree_edges, metro_rings_edges, EdgeList};
pub use structured::{fat_tree, grid, FatTreeLayout};
pub use waxman::Waxman;
