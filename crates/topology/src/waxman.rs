//! The Waxman random topology model (the generator behind GT-ITM's flat
//! random graphs [6]).

use netgraph::{connected_components, Graph, NodeId};
use rand::Rng;

/// Parameters of the Waxman model.
///
/// Nodes are placed uniformly at random in the unit square; each node pair
/// `(u, v)` is linked with probability
///
/// ```text
/// P(u, v) = alpha · exp(−d(u, v) / (beta · L))
/// ```
///
/// where `d` is Euclidean distance and `L = √2` is the square's diameter.
/// Higher `alpha` raises overall edge density; higher `beta` favours long
/// links. After sampling, connectivity is repaired by linking the closest
/// node pairs of distinct components, so the result is always connected —
/// matching how GT-ITM-based studies post-process their graphs.
///
/// ```
/// use topology::Waxman;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (g, positions) = Waxman::new(50).generate(&mut rng);
/// assert_eq!(g.node_count(), 50);
/// assert_eq!(positions.len(), 50);
/// assert!(netgraph::is_connected(&g));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waxman {
    /// Number of nodes.
    pub n: usize,
    /// Edge density parameter `alpha` in `(0, 1]`.
    pub alpha: f64,
    /// Length-scale parameter `beta` in `(0, 1]`.
    pub beta: f64,
}

impl Waxman {
    /// Default parameters (`alpha = 0.2`, `beta = 0.15`), producing
    /// average degrees around 4 for 50–250 nodes — the sparse-ISP regime
    /// GT-ITM-based evaluations of this era simulate (Rocketfuel PoP maps
    /// average degree ≈ 3.7).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "waxman graph needs at least one node");
        Waxman {
            n,
            alpha: 0.2,
            beta: 0.15,
        }
    }

    /// Overrides the `alpha` density parameter.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Overrides the `beta` length-scale parameter.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        self.beta = beta;
        self
    }

    /// Samples a connected topology, returning the graph and node
    /// positions in the unit square. Edge weights are Euclidean lengths
    /// (annotation replaces them with unit costs later).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> (Graph, Vec<(f64, f64)>) {
        let n = self.n;
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let l = std::f64::consts::SQRT_2;
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(positions[i], positions[j]);
                let p = self.alpha * (-d / (self.beta * l)).exp();
                if rng.gen::<f64>() < p {
                    g.add_edge(NodeId::new(i), NodeId::new(j), d.max(1e-6))
                        .expect("valid endpoints and finite weight");
                }
            }
        }
        repair_connectivity(&mut g, &positions);
        (g, positions)
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Links the geometrically closest node pairs of distinct components until
/// the graph is connected.
fn repair_connectivity(g: &mut Graph, positions: &[(f64, f64)]) {
    loop {
        let comps = connected_components(g);
        if comps.len() <= 1 {
            return;
        }
        // Join the first component to its closest outside node.
        let first = &comps[0];
        let in_first: Vec<bool> = {
            let mut v = vec![false; g.node_count()];
            for &n in first {
                v[n.index()] = true;
            }
            v
        };
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for &a in first {
            for b in g.nodes() {
                if in_first[b.index()] {
                    continue;
                }
                let d = dist(positions[a.index()], positions[b.index()]);
                if best.is_none_or(|(bd, ..)| d < bd) {
                    best = Some((d, a, b));
                }
            }
        }
        let (d, a, b) = best.expect("second component exists");
        g.add_edge(a, b, d.max(1e-6))
            .expect("valid endpoints and finite weight");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_connected_graph() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, pos) = Waxman::new(80).generate(&mut rng);
            assert_eq!(g.node_count(), 80);
            assert_eq!(pos.len(), 80);
            assert!(netgraph::is_connected(&g), "seed {seed} disconnected");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g1, _) = Waxman::new(40).generate(&mut StdRng::seed_from_u64(42));
        let (g2, _) = Waxman::new(40).generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<(usize, usize)> = g1.edges().map(|e| (e.u.index(), e.v.index())).collect();
        let e2: Vec<(usize, usize)> = g2.edges().map(|e| (e.u.index(), e.v.index())).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn alpha_controls_density() {
        let sparse = Waxman::new(100).with_alpha(0.1);
        let dense = Waxman::new(100).with_alpha(0.9);
        let ms: usize = (0..3)
            .map(|s| {
                sparse
                    .generate(&mut StdRng::seed_from_u64(s))
                    .0
                    .edge_count()
            })
            .sum();
        let md: usize = (0..3)
            .map(|s| dense.generate(&mut StdRng::seed_from_u64(s)).0.edge_count())
            .sum();
        assert!(md > ms, "dense {md} should exceed sparse {ms}");
    }

    #[test]
    fn single_node_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let (g, _) = Waxman::new(1).generate(&mut rng);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Waxman::new(10).with_alpha(0.0);
    }

    #[test]
    fn weights_are_positive_distances() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, pos) = Waxman::new(60).generate(&mut rng);
        for e in g.edges() {
            assert!(e.weight > 0.0);
            let d = super::dist(pos[e.u.index()], pos[e.v.index()]);
            assert!((e.weight - d.max(1e-6)).abs() < 1e-12);
        }
    }
}
