// lint:allow-file(D2): opt-in wall-clock helpers; this module only exists
// behind the `timing` cargo feature and is never compiled into
// result-affecting builds, so determinism gates are unaffected.

//! Opt-in wall-clock timing helpers (cargo feature `timing`).
//!
//! Nothing in here feeds back into planner results: a [`Stopwatch`] only
//! reports durations to the caller, and the default build of the crate does
//! not compile this module at all. Keeping every time source behind this
//! feature is what lets the `D2` lint rule stay deny-clean and the chaos
//! replay gate stay byte-identical.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning its result and the wall-clock duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let watch = Stopwatch::start();
    let value = f();
    (value, watch.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_reports_nonnegative_time() {
        let (value, took) = time_it(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(took >= Duration::ZERO);
    }
}
