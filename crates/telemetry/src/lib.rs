//! Deterministic telemetry for the NFV multicast planner and engine.
//!
//! This crate is a process-global registry of named **counters**, **gauges**,
//! and fixed-bucket **histograms**, plus a structured **event log**. It is
//! deliberately dependency-free and deterministic by construction:
//!
//! * Every quantity recorded from result-affecting code is a logical count
//!   (runs, hits, prunes, waves, ...), never a wall-clock measurement.
//! * Events carry a logical sequence number (their position in the log), not
//!   a timestamp, and are only recorded from sequential control paths.
//! * Wall-clock helpers exist behind the opt-in `timing` cargo feature; the
//!   default build contains no time source at all, so the `D2` lint rule and
//!   the chaos byte-identical-replay gate stay green.
//!
//! Recording is gated on a global enable flag (off by default). When the
//! flag is off every record call is a single relaxed atomic load, and the
//! registry contents never change — so instrumented library code can run
//! under parallel test harnesses without cross-test interference. Binaries
//! that want the numbers (e.g. `sim --bin fig5`, `sim --bin chaos`) call
//! [`enable`] up front and [`snapshot`] at the end.
//!
//! Counter updates use relaxed atomics. In the one parallel region of the
//! workspace (speculative batch planning in `nfv-engine`), each wave does a
//! fixed amount of planning work regardless of thread interleaving, so the
//! *totals* are deterministic even though the update order is not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

#[cfg(feature = "timing")]
pub mod timing;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Every named counter in the registry.
///
/// Counters are monotonic `u64`s recorded from result-affecting code; they
/// must only ever count logical work (never time, never memory addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    // -- netgraph -----------------------------------------------------------
    /// Full Dijkstra executions (both plain and target-pruned variants).
    DijkstraRuns,
    /// Decrease-key operations performed by the indexed quad heap.
    HeapDecreaseKeys,
    /// Multi-source Voronoi closure constructions.
    VoronoiClosureBuilds,
    /// Shortest-path-tree cache hits (CSR SSSP cache).
    SptCacheHits,
    /// Shortest-path-tree cache misses (fresh Dijkstra required).
    SptCacheMisses,
    /// Shortest-path trees evicted from a bounded SSSP cache.
    SptCacheEvictions,
    /// Landmark distance-oracle constructions.
    OracleBuilds,
    // -- nfv_multicast ------------------------------------------------------
    /// `PathCache` admissions decided on the cheap full-graph fingerprint.
    PathCacheFastPath,
    /// `PathCache` admissions that needed the full pseudo-tree scan.
    PathCacheSlowPath,
    /// Candidate server combinations fully evaluated by `Appro_Multi`.
    CombosEvaluated,
    /// Combinations pruned by the LB1 attach-cost lower bound.
    CombosPrunedLb1,
    /// Combinations pruned by the LB2 spanning lower bound.
    CombosPrunedLb2,
    /// Combinations skipped because their winner vector was already seen.
    CombosDeduped,
    // -- nfv_online ---------------------------------------------------------
    /// Requests admitted by the online algorithm.
    OnlineAdmitted,
    /// Requests rejected by the online algorithm (any reason).
    OnlineRejected,
    /// Rejections because no feasible pseudo-tree exists.
    OnlineRejectedInfeasible,
    /// Rejections because the tree cost crossed the admission threshold.
    OnlineRejectedThreshold,
    /// Rejections at the final capacity check against the ledger.
    OnlineRejectedCapacity,
    /// Candidate servers skipped because the exponential cost saturated
    /// (utilisation at or above the sigma threshold).
    OnlineSaturatedServers,
    /// Candidate servers whose exact Steiner evaluation was skipped because
    /// the oracle lower bound already exceeded the incumbent admission cost.
    OnlineCandidatesPruned,
    /// Rejections by the Lukovszki–Schmid-style strategy because every
    /// feasible embedding exceeded the hop budget.
    OnlineHopBoundRejections,
    /// Rejections by the Even–Medina–Patt-Shamir-style strategy because
    /// the cheapest embedding was priced above the request's benefit.
    OnlinePriceRejections,
    /// Admission-graph cache hits inside `OnlineCp`.
    AdmissionCacheHits,
    /// Admission-graph rebuilds inside `OnlineCp`.
    AdmissionCacheRebuilds,
    /// Sessions departed and released back to the substrate.
    SessionsDeparted,
    // -- engine -------------------------------------------------------------
    /// Speculative planning waves executed by the batch engine.
    EngineWaves,
    /// Speculative plans committed without replanning.
    EngineSpeculativeCommits,
    /// Speculative plans invalidated and replanned sequentially.
    EngineReplans,
    /// Read-only `Sdn` snapshots published by the pipeline committer for
    /// the planner pool to plan against.
    PipelineSnapshots,
    /// Times the pipeline committer had to block because the head-of-line
    /// plan had not been delivered by a worker yet. Scheduling-dependent
    /// (see the crate docs): decisions stay deterministic, this count does
    /// not.
    PipelineStalls,
    /// Sessions found broken by a fault event.
    RepairBroken,
    /// Sessions fully rerouted by the repair loop.
    RepairRepaired,
    /// Sessions kept alive with a degraded terminal set.
    RepairDegraded,
    /// Sessions dropped by the repair loop.
    RepairDropped,
    /// Sessions deferred to a later repair pass.
    RepairDeferred,
    /// Invariant-auditor passes that completed clean.
    AuditPasses,
    /// Departures for sessions the manager does not know (guarded no-ops).
    DoubleRelease,
    /// Backup trees successfully precomputed at protection time.
    BackupPlanned,
    /// Broken sessions restored by swapping to a precomputed backup tree.
    BackupHits,
    /// Broken sessions whose backups did not cover the failure (fell back
    /// to a full reroute through the pending-repair queue).
    BackupMisses,
    /// Backup trees discarded without being used (session departed,
    /// grafted, pruned, re-optimized, or a sibling backup was chosen).
    BackupDiscarded,
    /// Destinations attached to live sessions by dynamic-Steiner grafting.
    Grafts,
    /// Destinations detached from live sessions with exact residual release.
    Prunes,
    /// Sessions re-optimized from scratch after drift crossed the bound.
    Reoptimizations,
    // -- sim / arena --------------------------------------------------------
    /// Arena cells scored: one (algorithm, workload, seed) simulation
    /// whose outcome row entered `results/arena.json`.
    ArenaCellsScored,
    // -- telemetry internal -------------------------------------------------
    /// Events discarded because the event log hit its capacity bound.
    EventsDropped,
}

impl Counter {
    /// Every counter, in registry (serialisation) order.
    pub const ALL: [Counter; 46] = [
        Counter::DijkstraRuns,
        Counter::HeapDecreaseKeys,
        Counter::VoronoiClosureBuilds,
        Counter::SptCacheHits,
        Counter::SptCacheMisses,
        Counter::SptCacheEvictions,
        Counter::OracleBuilds,
        Counter::PathCacheFastPath,
        Counter::PathCacheSlowPath,
        Counter::CombosEvaluated,
        Counter::CombosPrunedLb1,
        Counter::CombosPrunedLb2,
        Counter::CombosDeduped,
        Counter::OnlineAdmitted,
        Counter::OnlineRejected,
        Counter::OnlineRejectedInfeasible,
        Counter::OnlineRejectedThreshold,
        Counter::OnlineRejectedCapacity,
        Counter::OnlineSaturatedServers,
        Counter::OnlineCandidatesPruned,
        Counter::OnlineHopBoundRejections,
        Counter::OnlinePriceRejections,
        Counter::AdmissionCacheHits,
        Counter::AdmissionCacheRebuilds,
        Counter::SessionsDeparted,
        Counter::EngineWaves,
        Counter::EngineSpeculativeCommits,
        Counter::EngineReplans,
        Counter::PipelineSnapshots,
        Counter::PipelineStalls,
        Counter::RepairBroken,
        Counter::RepairRepaired,
        Counter::RepairDegraded,
        Counter::RepairDropped,
        Counter::RepairDeferred,
        Counter::AuditPasses,
        Counter::DoubleRelease,
        Counter::BackupPlanned,
        Counter::BackupHits,
        Counter::BackupMisses,
        Counter::BackupDiscarded,
        Counter::Grafts,
        Counter::Prunes,
        Counter::Reoptimizations,
        Counter::ArenaCellsScored,
        Counter::EventsDropped,
    ];

    /// Stable snake_case name used in JSON and text snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::DijkstraRuns => "dijkstra_runs",
            Counter::HeapDecreaseKeys => "heap_decrease_keys",
            Counter::VoronoiClosureBuilds => "voronoi_closure_builds",
            Counter::SptCacheHits => "spt_cache_hits",
            Counter::SptCacheMisses => "spt_cache_misses",
            Counter::SptCacheEvictions => "spt_cache_evictions",
            Counter::OracleBuilds => "oracle_builds",
            Counter::PathCacheFastPath => "path_cache_fast_path",
            Counter::PathCacheSlowPath => "path_cache_slow_path",
            Counter::CombosEvaluated => "combos_evaluated",
            Counter::CombosPrunedLb1 => "combos_pruned_lb1",
            Counter::CombosPrunedLb2 => "combos_pruned_lb2",
            Counter::CombosDeduped => "combos_deduped",
            Counter::OnlineAdmitted => "online_admitted",
            Counter::OnlineRejected => "online_rejected",
            Counter::OnlineRejectedInfeasible => "online_rejected_infeasible",
            Counter::OnlineRejectedThreshold => "online_rejected_threshold",
            Counter::OnlineRejectedCapacity => "online_rejected_capacity",
            Counter::OnlineSaturatedServers => "online_saturated_servers",
            Counter::OnlineCandidatesPruned => "online_candidates_pruned",
            Counter::OnlineHopBoundRejections => "online_hop_bound_rejections",
            Counter::OnlinePriceRejections => "online_price_rejections",
            Counter::AdmissionCacheHits => "admission_cache_hits",
            Counter::AdmissionCacheRebuilds => "admission_cache_rebuilds",
            Counter::SessionsDeparted => "sessions_departed",
            Counter::EngineWaves => "engine_waves",
            Counter::EngineSpeculativeCommits => "engine_speculative_commits",
            Counter::EngineReplans => "engine_replans",
            Counter::PipelineSnapshots => "pipeline_snapshots",
            Counter::PipelineStalls => "pipeline_stalls",
            Counter::RepairBroken => "repair_broken",
            Counter::RepairRepaired => "repair_repaired",
            Counter::RepairDegraded => "repair_degraded",
            Counter::RepairDropped => "repair_dropped",
            Counter::RepairDeferred => "repair_deferred",
            Counter::AuditPasses => "audit_passes",
            Counter::DoubleRelease => "double_release",
            Counter::BackupPlanned => "backup_planned",
            Counter::BackupHits => "backup_hits",
            Counter::BackupMisses => "backup_misses",
            Counter::BackupDiscarded => "backup_discarded",
            Counter::Grafts => "grafts",
            Counter::Prunes => "prunes",
            Counter::Reoptimizations => "reoptimizations",
            Counter::ArenaCellsScored => "arena_cells_scored",
            Counter::EventsDropped => "events_dropped",
        }
    }
}

const COUNTER_COUNT: usize = Counter::ALL.len();

static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// Every named gauge in the registry. Gauges hold the most recent value of a
/// level-style quantity (set, not accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Live sessions currently holding resources.
    ActiveSessions,
    /// Sessions parked in the repair retry queue.
    PendingRepairs,
    /// Speculative plans currently in flight inside the admission
    /// pipeline's bounded window.
    PipelineDepth,
    /// Bandwidth units currently held by `Reserved`-policy backup trees
    /// (the standing capacity overhead of proactive protection).
    ReservedBackupBandwidth,
}

impl Gauge {
    /// Every gauge, in registry order.
    pub const ALL: [Gauge; 4] = [
        Gauge::ActiveSessions,
        Gauge::PendingRepairs,
        Gauge::PipelineDepth,
        Gauge::ReservedBackupBandwidth,
    ];

    /// Stable snake_case name used in JSON and text snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ActiveSessions => "active_sessions",
            Gauge::PendingRepairs => "pending_repairs",
            Gauge::PipelineDepth => "pipeline_depth",
            Gauge::ReservedBackupBandwidth => "reserved_backup_bandwidth",
        }
    }
}

const GAUGE_COUNT: usize = Gauge::ALL.len();

static GAUGES: [AtomicU64; GAUGE_COUNT] = [const { AtomicU64::new(0) }; GAUGE_COUNT];

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Every named histogram in the registry. All histograms share the same
/// fixed power-of-two bucket layout (see [`HIST_EDGES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Requests planned per speculative batch wave.
    BatchWaveSize,
    /// Sessions broken per fault event handed to the repair loop.
    RepairBatchBroken,
    /// Combinations evaluated per `Appro_Multi` scan.
    CombosPerScan,
    /// Snapshot staleness at plan validation: how many snapshot epochs
    /// the pipeline published between a plan's dispatch and its commit.
    /// Scheduling-dependent (see the crate docs).
    SnapshotStaleness,
    /// Completed plans queued behind the head-of-line request when a
    /// pipeline commit lands (out-of-order completions waiting their
    /// turn). Scheduling-dependent (see the crate docs).
    CommitQueueWait,
    /// Edges added to a session's tree per graft (0 for already-covered
    /// destinations).
    GraftAttachEdges,
    /// Accumulated drift as an integer percentage of the session's current
    /// tree cost, observed at each drift check.
    DriftRatioPct,
    /// Planner invocations needed to restore one broken session: 0 for a
    /// backup-tree swap, ≥1 for a reactive replan — the logical failover
    /// latency (plan-events, not wall clock).
    FailoverPlanEvents,
}

impl Hist {
    /// Every histogram, in registry order.
    pub const ALL: [Hist; 8] = [
        Hist::BatchWaveSize,
        Hist::RepairBatchBroken,
        Hist::CombosPerScan,
        Hist::SnapshotStaleness,
        Hist::CommitQueueWait,
        Hist::GraftAttachEdges,
        Hist::DriftRatioPct,
        Hist::FailoverPlanEvents,
    ];

    /// Stable snake_case name used in JSON and text snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::BatchWaveSize => "batch_wave_size",
            Hist::RepairBatchBroken => "repair_batch_broken",
            Hist::CombosPerScan => "combos_per_scan",
            Hist::SnapshotStaleness => "snapshot_staleness",
            Hist::CommitQueueWait => "commit_queue_wait",
            Hist::GraftAttachEdges => "graft_attach_edges",
            Hist::DriftRatioPct => "drift_ratio_pct",
            Hist::FailoverPlanEvents => "failover_plan_events",
        }
    }
}

/// Inclusive upper edges of the shared histogram buckets; one extra overflow
/// bucket captures everything above the last edge.
pub const HIST_EDGES: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

const HIST_COUNT: usize = Hist::ALL.len();
const BUCKET_COUNT: usize = HIST_EDGES.len() + 1;

static HISTOGRAMS: [AtomicU64; HIST_COUNT * BUCKET_COUNT] =
    [const { AtomicU64::new(0) }; HIST_COUNT * BUCKET_COUNT];

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A structured telemetry event. Events are enum-shaped (never free-form
/// strings) and are only recorded from sequential control paths, so their
/// sequence numbers are deterministic across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A departure arrived for a session the manager does not know; the
    /// resources were already released and the call was a guarded no-op.
    UnknownDeparture {
        /// Raw id of the departing request.
        request: u64,
    },
    /// A broken session was fully rerouted.
    SessionRepaired {
        /// Raw id of the repaired request.
        request: u64,
    },
    /// A broken session was kept alive with a reduced terminal set.
    SessionDegraded {
        /// Raw id of the degraded request.
        request: u64,
        /// Number of terminals shed to keep the session alive.
        shed_terminals: u64,
    },
    /// A broken session could not be repaired and was dropped.
    SessionDropped {
        /// Raw id of the dropped request.
        request: u64,
    },
    /// A broken session was deferred to a later repair pass.
    SessionDeferred {
        /// Raw id of the deferred request.
        request: u64,
    },
    /// A broken session was restored by swapping to a precomputed backup
    /// tree (no replanning).
    SessionFailedOver {
        /// Raw id of the failed-over request.
        request: u64,
    },
    /// A new destination was attached to a live session by grafting.
    SessionGrafted {
        /// Raw id of the grafted session.
        request: u64,
        /// Raw node id of the attached destination.
        destination: u64,
    },
    /// A destination was detached from a live session.
    SessionPruned {
        /// Raw id of the pruned session.
        request: u64,
        /// Raw node id of the detached destination.
        destination: u64,
    },
    /// A drifted session was re-optimized against a fresh plan.
    SessionReoptimized {
        /// Raw id of the re-optimized request.
        request: u64,
    },
}

impl Event {
    /// Stable snake_case tag used in JSON and text snapshots.
    pub const fn kind(self) -> &'static str {
        match self {
            Event::UnknownDeparture { .. } => "unknown_departure",
            Event::SessionRepaired { .. } => "session_repaired",
            Event::SessionDegraded { .. } => "session_degraded",
            Event::SessionDropped { .. } => "session_dropped",
            Event::SessionDeferred { .. } => "session_deferred",
            Event::SessionFailedOver { .. } => "session_failed_over",
            Event::SessionGrafted { .. } => "session_grafted",
            Event::SessionPruned { .. } => "session_pruned",
            Event::SessionReoptimized { .. } => "session_reoptimized",
        }
    }

    /// The request id the event refers to.
    pub const fn request(self) -> u64 {
        match self {
            Event::UnknownDeparture { request }
            | Event::SessionRepaired { request }
            | Event::SessionDegraded { request, .. }
            | Event::SessionDropped { request }
            | Event::SessionDeferred { request }
            | Event::SessionFailedOver { request }
            | Event::SessionGrafted { request, .. }
            | Event::SessionPruned { request, .. }
            | Event::SessionReoptimized { request } => request,
        }
    }

    /// Secondary payload (0 when the variant carries none).
    pub const fn arg(self) -> u64 {
        match self {
            Event::SessionDegraded { shed_terminals, .. } => shed_terminals,
            Event::SessionGrafted { destination, .. }
            | Event::SessionPruned { destination, .. } => destination,
            _ => 0,
        }
    }

    /// Rebuild an event from its serialised `(kind, request, arg)` triple.
    pub fn from_parts(kind: &str, request: u64, arg: u64) -> Option<Event> {
        match kind {
            "unknown_departure" => Some(Event::UnknownDeparture { request }),
            "session_repaired" => Some(Event::SessionRepaired { request }),
            "session_degraded" => Some(Event::SessionDegraded {
                request,
                shed_terminals: arg,
            }),
            "session_dropped" => Some(Event::SessionDropped { request }),
            "session_deferred" => Some(Event::SessionDeferred { request }),
            "session_failed_over" => Some(Event::SessionFailedOver { request }),
            "session_grafted" => Some(Event::SessionGrafted {
                request,
                destination: arg,
            }),
            "session_pruned" => Some(Event::SessionPruned {
                request,
                destination: arg,
            }),
            "session_reoptimized" => Some(Event::SessionReoptimized { request }),
            _ => None,
        }
    }
}

/// An event together with its logical sequence number (position in the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// 0-based position of the event in the log.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

/// Hard bound on the in-memory event log; further events increment
/// [`Counter::EventsDropped`] instead of growing the log.
pub const MAX_EVENTS: usize = 4096;

static EVENTS: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());

fn events_lock() -> std::sync::MutexGuard<'static, Vec<EventRecord>> {
    match EVENTS.lock() {
        Ok(guard) => guard,
        // A panic while holding the log lock cannot corrupt a Vec of Copy
        // records; recover the data rather than propagating the poison.
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Global enable gate and recording API
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on. Off by default so instrumented library code is inert
/// under parallel test harnesses.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static ZERO_CELL: AtomicU64 = AtomicU64::new(0);

fn counter_cell(c: Counter) -> &'static AtomicU64 {
    // The index is always in range by construction; the fallback cell keeps
    // this total without indexing panics.
    COUNTERS.get(c as usize).unwrap_or(&ZERO_CELL)
}

fn gauge_cell(g: Gauge) -> &'static AtomicU64 {
    GAUGES.get(g as usize).unwrap_or(&ZERO_CELL)
}

fn hist_cell(h: Hist, bucket: usize) -> &'static AtomicU64 {
    HISTOGRAMS
        .get(h as usize * BUCKET_COUNT + bucket)
        .unwrap_or(&ZERO_CELL)
}

/// Increment a counter by one.
#[inline]
pub fn hit(c: Counter) {
    add(c, 1);
}

/// Increment a counter by `n`.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !is_enabled() {
        return;
    }
    counter_cell(c).fetch_add(n, Ordering::Relaxed);
}

/// Read a counter's current value (works even while disabled).
pub fn counter_value(c: Counter) -> u64 {
    counter_cell(c).load(Ordering::Relaxed)
}

/// Set a gauge to `v`.
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if !is_enabled() {
        return;
    }
    gauge_cell(g).store(v, Ordering::Relaxed);
}

/// Read a gauge's current value (works even while disabled).
pub fn gauge_value(g: Gauge) -> u64 {
    gauge_cell(g).load(Ordering::Relaxed)
}

/// Record one observation `v` into histogram `h`.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if !is_enabled() {
        return;
    }
    let bucket = HIST_EDGES
        .iter()
        .position(|&edge| v <= edge)
        .unwrap_or(HIST_EDGES.len());
    hist_cell(h, bucket).fetch_add(1, Ordering::Relaxed);
}

/// Append a structured event to the log. Must only be called from
/// sequential control paths so sequence numbers stay deterministic.
pub fn record(event: Event) {
    if !is_enabled() {
        return;
    }
    let mut log = events_lock();
    if log.len() >= MAX_EVENTS {
        drop(log);
        counter_cell(Counter::EventsDropped).fetch_add(1, Ordering::Relaxed);
        return;
    }
    let seq = log.len() as u64;
    log.push(EventRecord { seq, event });
}

/// Zero every counter, gauge, and histogram and clear the event log.
/// Does not change the enabled flag.
pub fn reset() {
    for cell in COUNTERS
        .iter()
        .chain(GAUGES.iter())
        .chain(HISTOGRAMS.iter())
    {
        cell.store(0, Ordering::Relaxed);
    }
    events_lock().clear();
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of the whole registry, suitable for serialisation,
/// diffing, and regression pinning.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, in registry order.
    pub gauges: Vec<(String, u64)>,
    /// One entry per histogram, in registry order.
    pub histograms: Vec<HistogramSnapshot>,
    /// The event log in sequence order.
    pub events: Vec<EventRecord>,
}

/// Frozen contents of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// The histogram's registry name.
    pub name: String,
    /// `(inclusive_upper_edge, count)` per bucket; the final bucket uses
    /// `u64::MAX` as its edge and holds the overflow count.
    pub buckets: Vec<(u64, u64)>,
    /// Total number of observations.
    pub total: u64,
}

/// Capture the current registry contents.
pub fn snapshot() -> Snapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name().to_owned(), counter_value(c)))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| (g.name().to_owned(), gauge_value(g)))
        .collect();
    let histograms = Hist::ALL
        .iter()
        .map(|&h| {
            let mut buckets = Vec::with_capacity(BUCKET_COUNT);
            let mut total = 0u64;
            for b in 0..BUCKET_COUNT {
                let edge = HIST_EDGES.get(b).copied().unwrap_or(u64::MAX);
                let count = hist_cell(h, b).load(Ordering::Relaxed);
                total += count;
                buckets.push((edge, count));
            }
            HistogramSnapshot {
                name: h.name().to_owned(),
                buckets,
                total,
            }
        })
        .collect();
    let events = events_lock().clone();
    Snapshot {
        counters,
        gauges,
        histograms,
        events,
    }
}

impl Snapshot {
    /// Serialise to the stable JSON shape written to `results/telemetry.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, hist) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"total\": {}, \"buckets\": [",
                hist.name, hist.total
            );
            for (j, (edge, count)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{edge}, {count}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, rec) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"seq\": {}, \"kind\": \"{}\", \"request\": {}, \"arg\": {}}}",
                rec.seq,
                rec.event.kind(),
                rec.event.request(),
                rec.event.arg()
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a snapshot previously produced by [`Snapshot::to_json`].
    /// Accepts any whitespace layout; returns `None` on malformed input or
    /// on an unknown event kind.
    pub fn from_json(text: &str) -> Option<Snapshot> {
        json::parse_snapshot(text)
    }

    /// Render a human-readable text report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        out.push_str("== gauges ==\n");
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        out.push_str("== histograms ==\n");
        for hist in &self.histograms {
            let _ = write!(out, "  {:<28} total={}", hist.name, hist.total);
            for (edge, count) in &hist.buckets {
                if *count == 0 {
                    continue;
                }
                if *edge == u64::MAX {
                    let _ = write!(out, "  inf:{count}");
                } else {
                    let _ = write!(out, "  le{edge}:{count}");
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "== events ({}) ==", self.events.len());
        for rec in &self.events {
            let _ = write!(
                out,
                "  [{}] {} request={}",
                rec.seq,
                rec.event.kind(),
                rec.event.request()
            );
            if let Event::SessionDegraded { shed_terminals, .. } = rec.event {
                let _ = write!(out, " shed_terminals={shed_terminals}");
            }
            out.push('\n');
        }
        out
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the snapshot shape
// ---------------------------------------------------------------------------

mod json {
    //! A tiny recursive-descent reader for exactly the JSON subset that
    //! [`Snapshot::to_json`](super::Snapshot::to_json) emits: objects with
    //! string keys, arrays, unsigned integers, and plain (escape-free)
    //! strings. Kept in-tree so the round-trip regression test needs no
    //! external JSON dependency.

    use super::{Event, EventRecord, HistogramSnapshot, Snapshot};

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn new(text: &'a str) -> Self {
            Reader {
                bytes: text.as_bytes(),
                pos: 0,
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn require(&mut self, b: u8) -> Option<()> {
            self.skip_ws();
            if self.bump()? == b {
                Some(())
            } else {
                None
            }
        }

        /// `true` if the next non-whitespace byte is `b` (consumed if so).
        fn eat(&mut self, b: u8) -> bool {
            self.skip_ws();
            if self.peek() == Some(b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn string(&mut self) -> Option<String> {
            self.require(b'"')?;
            let start = self.pos;
            loop {
                match self.bump()? {
                    b'"' => break,
                    b'\\' => return None, // writer never emits escapes
                    _ => {}
                }
            }
            let raw = self.bytes.get(start..self.pos - 1)?;
            String::from_utf8(raw.to_vec()).ok()
        }

        fn u64(&mut self) -> Option<u64> {
            self.skip_ws();
            let mut value: u64 = 0;
            let mut any = false;
            while let Some(b @ b'0'..=b'9') = self.peek() {
                value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
                self.pos += 1;
                any = true;
            }
            if any {
                Some(value)
            } else {
                None
            }
        }

        /// `{"name": value, ...}` with integer values.
        fn u64_map(&mut self) -> Option<Vec<(String, u64)>> {
            self.require(b'{')?;
            let mut out = Vec::new();
            if self.eat(b'}') {
                return Some(out);
            }
            loop {
                let key = self.string()?;
                self.require(b':')?;
                let value = self.u64()?;
                out.push((key, value));
                if self.eat(b'}') {
                    return Some(out);
                }
                self.require(b',')?;
            }
        }

        fn key(&mut self, expected: &str) -> Option<()> {
            let key = self.string()?;
            if key == expected {
                self.require(b':')
            } else {
                None
            }
        }

        fn histogram(&mut self) -> Option<HistogramSnapshot> {
            self.require(b'{')?;
            self.key("name")?;
            let name = self.string()?;
            self.require(b',')?;
            self.key("total")?;
            let total = self.u64()?;
            self.require(b',')?;
            self.key("buckets")?;
            self.require(b'[')?;
            let mut buckets = Vec::new();
            if !self.eat(b']') {
                loop {
                    self.require(b'[')?;
                    let edge = self.u64()?;
                    self.require(b',')?;
                    let count = self.u64()?;
                    self.require(b']')?;
                    buckets.push((edge, count));
                    if self.eat(b']') {
                        break;
                    }
                    self.require(b',')?;
                }
            }
            self.require(b'}')?;
            Some(HistogramSnapshot {
                name,
                buckets,
                total,
            })
        }

        fn event(&mut self) -> Option<EventRecord> {
            self.require(b'{')?;
            self.key("seq")?;
            let seq = self.u64()?;
            self.require(b',')?;
            self.key("kind")?;
            let kind = self.string()?;
            self.require(b',')?;
            self.key("request")?;
            let request = self.u64()?;
            self.require(b',')?;
            self.key("arg")?;
            let arg = self.u64()?;
            self.require(b'}')?;
            let event = Event::from_parts(&kind, request, arg)?;
            Some(EventRecord { seq, event })
        }
    }

    pub(super) fn parse_snapshot(text: &str) -> Option<Snapshot> {
        let mut r = Reader::new(text);
        r.require(b'{')?;
        r.key("counters")?;
        let counters = r.u64_map()?;
        r.require(b',')?;
        r.key("gauges")?;
        let gauges = r.u64_map()?;
        r.require(b',')?;
        r.key("histograms")?;
        r.require(b'[')?;
        let mut histograms = Vec::new();
        if !r.eat(b']') {
            loop {
                histograms.push(r.histogram()?);
                if r.eat(b']') {
                    break;
                }
                r.require(b',')?;
            }
        }
        r.require(b',')?;
        r.key("events")?;
        r.require(b'[')?;
        let mut events = Vec::new();
        if !r.eat(b']') {
            loop {
                events.push(r.event()?);
                if r.eat(b']') {
                    break;
                }
                r.require(b',')?;
            }
        }
        r.require(b'}')?;
        r.skip_ws();
        if r.peek().is_some() {
            return None;
        }
        Some(Snapshot {
            counters,
            gauges,
            histograms,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests share one process-global registry, so everything that
    // mutates it lives in this single test; the cargo test harness may run
    // `#[test]` fns in parallel threads.
    #[test]
    fn registry_record_snapshot_roundtrip() {
        reset();
        // Disabled: recording is inert.
        disable();
        hit(Counter::DijkstraRuns);
        gauge_set(Gauge::ActiveSessions, 9);
        observe(Hist::BatchWaveSize, 3);
        record(Event::SessionDropped { request: 1 });
        assert_eq!(counter_value(Counter::DijkstraRuns), 0);
        assert_eq!(gauge_value(Gauge::ActiveSessions), 0);
        assert!(snapshot().events.is_empty());

        // Enabled: everything lands.
        enable();
        hit(Counter::DijkstraRuns);
        add(Counter::CombosEvaluated, 41);
        gauge_set(Gauge::ActiveSessions, 7);
        observe(Hist::BatchWaveSize, 1);
        observe(Hist::BatchWaveSize, 1);
        observe(Hist::BatchWaveSize, 5);
        observe(Hist::BatchWaveSize, 1_000_000);
        record(Event::UnknownDeparture { request: 42 });
        record(Event::SessionDegraded {
            request: 3,
            shed_terminals: 2,
        });
        disable();

        assert_eq!(counter_value(Counter::DijkstraRuns), 1);
        assert_eq!(counter_value(Counter::CombosEvaluated), 41);
        assert_eq!(gauge_value(Gauge::ActiveSessions), 7);

        let snap = snapshot();
        assert_eq!(snap.counter("combos_evaluated"), Some(41));
        assert_eq!(snap.counter("no_such_counter"), None);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events.first().map(|r| r.seq), Some(0));
        assert_eq!(
            snap.events.get(1).map(|r| r.event),
            Some(Event::SessionDegraded {
                request: 3,
                shed_terminals: 2
            })
        );
        let wave = snap
            .histograms
            .iter()
            .find(|h| h.name == "batch_wave_size")
            .expect("batch_wave_size histogram present");
        assert_eq!(wave.total, 4);
        assert_eq!(wave.buckets.first(), Some(&(1, 2)));
        assert_eq!(wave.buckets.last(), Some(&(u64::MAX, 1)));

        // JSON round-trip is exact.
        let json = snap.to_json();
        assert_eq!(Snapshot::from_json(&json), Some(snap.clone()));
        // Text rendering mentions the non-zero rows.
        let text = snap.to_text();
        assert!(text.contains("combos_evaluated"));
        assert!(text.contains("session_degraded"));

        reset();
        assert_eq!(counter_value(Counter::DijkstraRuns), 0);
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn registry_order_matches_discriminants() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert_eq!(Snapshot::from_json(""), None);
        assert_eq!(Snapshot::from_json("{}"), None);
        assert_eq!(Snapshot::from_json("{\"counters\": {\"a\": 1}"), None);
        let good = Snapshot::default().to_json();
        assert!(Snapshot::from_json(&good).is_some());
        assert_eq!(Snapshot::from_json(&format!("{good}x")), None);
    }
}
