//! Self-healing admission: session bookkeeping, failure impact detection,
//! and bounded replanning on the surviving residual graph.
//!
//! A [`SessionManager`] owns the set of *committed* sessions together with
//! an inverted membership index (link → sessions, server → sessions), so
//! that after a failure event the set of broken sessions is found without
//! scanning every tree. [`SessionManager::repair`] then:
//!
//! 1. releases every broken session's allocation (the ledger survives
//!    failures — see `Sdn::fail_link` — so releases are exact),
//! 2. replans each one with `Appro_Multi_Cap` on the alive-masked
//!    residual graph, in **ascending request-id order** with a bounded
//!    per-session attempt budget, so repair storms are byte-reproducible,
//! 3. under [`RepairPolicy::Degrade`], a session whose full destination
//!    set no longer fits is replanned on the subset of destinations still
//!    reachable from the source — only the unreachable ones are shed.
//!
//! Sessions that exhaust their attempt budget are dropped; sessions with
//! budget left stay *pending* inside the manager and are retried on the
//! next [`SessionManager::repair`] call (typically after a recovery
//! event restores some capacity).

use crate::resilience::{BackupTree, ResilienceConfig};
use netgraph::{EdgeId, NodeId, UnionFind};
use nfv_multicast::{appro_multi_cap_with_scratch, Admission, ApproScratch, PseudoMulticastTree};
use sdn::{Allocation, MulticastRequest, RequestId, Sdn, SdnError};
use std::collections::{BTreeMap, BTreeSet};

/// What to do with sessions a failure breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Replan the full destination set on the surviving graph.
    #[default]
    FullReroute,
    /// Try a full reroute first; if that fails, drop the destinations cut
    /// off from the source and replan the reachable remainder.
    Degrade,
    /// Broken sessions are torn down immediately, no replanning.
    Reject,
}

/// Tuning knobs for [`SessionManager::repair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Replan policy for broken sessions.
    pub policy: RepairPolicy,
    /// Server budget `K` passed to `Appro_Multi_Cap` when replanning.
    pub k: usize,
    /// Maximum replanning attempts per session across repair calls.
    /// `0` means broken sessions are rejected outright (no attempt).
    pub max_retries: usize,
}

impl RepairConfig {
    /// Full-reroute policy with a single replanning attempt per session.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one server is required (K >= 1)");
        RepairConfig {
            policy: RepairPolicy::FullReroute,
            k,
            max_retries: 1,
        }
    }

    /// Sets the repair policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RepairPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-session attempt budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// A committed session: the request, its tree, and the exact allocation
/// held in the network ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedSession {
    /// The admitted request (for degraded sessions, the *reduced* one).
    pub request: MulticastRequest,
    /// The pseudo-multicast tree serving it.
    pub tree: PseudoMulticastTree,
    /// The allocation currently charged to the network for it.
    pub allocation: Allocation,
}

/// Outcome of [`SessionManager::depart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Departure {
    /// The session was committed; its resources were released.
    Released,
    /// The session was awaiting repair (already released); the pending
    /// replan was cancelled.
    Cancelled,
    /// The session was unknown — already torn down (e.g. dropped by the
    /// repair engine) or never admitted. The departure is a no-op.
    Unknown,
}

#[derive(Debug, Clone)]
struct PendingRepair {
    request: MulticastRequest,
    attempts: usize,
}

/// One broken session detached from the network, awaiting either a
/// backup-tree swap or a reactive replan.
struct Casualty {
    id: RequestId,
    request: MulticastRequest,
    backups: Vec<BackupTree>,
}

/// What one [`SessionManager::repair`] call did, in ascending request-id
/// order within each category.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Sessions newly broken by failures since the last call (released
    /// and queued for replanning this call).
    pub broken: Vec<RequestId>,
    /// Sessions restored by swapping to a precomputed backup tree —
    /// O(commit), no planner invocation.
    pub swapped: Vec<RequestId>,
    /// Sessions recommitted with their full destination set.
    pub repaired: Vec<RequestId>,
    /// Sessions recommitted on a reduced destination set, with the number
    /// of destinations shed.
    pub degraded: Vec<(RequestId, usize)>,
    /// Sessions torn down for good (policy `Reject`, or attempt budget
    /// exhausted).
    pub dropped: Vec<RequestId>,
    /// Sessions still pending with attempt budget left; retried on the
    /// next call.
    pub deferred: Vec<RequestId>,
    /// Planner invocations spent restoring broken/pending sessions (the
    /// logical repair latency — backup-tree swaps contribute zero;
    /// re-protection planning is not counted).
    pub plan_events: u64,
}

impl RepairReport {
    /// `true` when the call found nothing to do and changed nothing.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.broken.is_empty()
            && self.swapped.is_empty()
            && self.repaired.is_empty()
            && self.degraded.is_empty()
            && self.dropped.is_empty()
            && self.deferred.is_empty()
    }
}

/// Owns committed sessions and heals them across failure events.
///
/// All bookkeeping is `BTreeMap`-backed, so iteration — and therefore
/// every repair decision — is deterministic in request-id order.
#[derive(Debug, Clone, Default)]
pub struct SessionManager {
    pub(crate) sessions: BTreeMap<RequestId, CommittedSession>,
    link_members: BTreeMap<EdgeId, BTreeSet<RequestId>>,
    server_members: BTreeMap<NodeId, BTreeSet<RequestId>>,
    pending: BTreeMap<RequestId, PendingRepair>,
    double_release_count: u64,
    /// Proactive protection knobs; `None` disables backups, grafting
    /// drift tracking, and re-optimization (the pre-resilience behavior).
    pub(crate) resilience: Option<ResilienceConfig>,
    /// Precomputed backup trees per protected session.
    pub(crate) backups: BTreeMap<RequestId, Vec<BackupTree>>,
    /// Accumulated graft/prune cost drift per session, vs the cost of its
    /// last full plan.
    pub(crate) drift: BTreeMap<RequestId, f64>,
}

impl SessionManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Number of committed sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// `true` when `id` is committed (not merely pending repair).
    #[must_use]
    pub fn contains(&self, id: RequestId) -> bool {
        self.sessions.contains_key(&id)
    }

    /// The committed session for `id`, if any.
    #[must_use]
    pub fn session(&self, id: RequestId) -> Option<&CommittedSession> {
        self.sessions.get(&id)
    }

    /// Iterates committed sessions in ascending request-id order.
    pub fn sessions(&self) -> impl Iterator<Item = (RequestId, &CommittedSession)> {
        self.sessions.iter().map(|(&id, s)| (id, s))
    }

    /// Request ids currently awaiting a repair attempt.
    #[must_use]
    pub fn pending_repairs(&self) -> Vec<RequestId> {
        self.pending.keys().copied().collect()
    }

    /// How many departures arrived for sessions that no longer held any
    /// resources (the double-release guard fired).
    #[must_use]
    pub fn double_release_count(&self) -> u64 {
        self.double_release_count
    }

    /// Runs `Appro_Multi_Cap` for `request` and commits the tree on
    /// success. Returns `Ok(true)` if admitted and committed.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors from [`Sdn::allocate`], and rejects a
    /// request whose id is already committed or pending.
    pub fn admit(
        &mut self,
        sdn: &mut Sdn,
        request: &MulticastRequest,
        k: usize,
        scratch: &mut ApproScratch,
    ) -> Result<bool, SdnError> {
        match appro_multi_cap_with_scratch(sdn, request, k, scratch) {
            Admission::Admitted(tree) => {
                self.commit(sdn, request.clone(), tree)?;
                Ok(true)
            }
            Admission::Rejected => Ok(false),
        }
    }

    /// Allocates `tree`'s resources and records the session.
    ///
    /// # Errors
    ///
    /// Returns [`SdnError::InfeasibleRequest`] for a duplicate session id,
    /// and propagates allocation errors (in which case nothing is
    /// recorded).
    pub fn commit(
        &mut self,
        sdn: &mut Sdn,
        request: MulticastRequest,
        tree: PseudoMulticastTree,
    ) -> Result<(), SdnError> {
        let id = request.id;
        if self.sessions.contains_key(&id) || self.pending.contains_key(&id) {
            return Err(SdnError::InfeasibleRequest {
                reason: format!("session {id:?} is already tracked"),
            });
        }
        let allocation = tree.allocation(&request);
        sdn.allocate(&allocation)?;
        self.index(id, &allocation);
        self.sessions.insert(
            id,
            CommittedSession {
                request,
                tree,
                allocation,
            },
        );
        Ok(())
    }

    /// Tears a session down. Committed sessions release their resources;
    /// pending ones only cancel the queued replan (their resources were
    /// released when the failure broke them); unknown ids are a guarded
    /// no-op — never a double release. The guard is surfaced through the
    /// telemetry registry (an `UnknownDeparture` event plus the shared
    /// `double_release` counter) rather than stderr: library crates must
    /// not write to the process's streams.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors from [`Sdn::release`].
    pub fn depart(&mut self, sdn: &mut Sdn, id: RequestId) -> Result<Departure, SdnError> {
        if let Some(s) = self.sessions.remove(&id) {
            self.unindex(id, &s.allocation);
            sdn.release(&s.allocation)?;
            self.discard_backups(sdn, id);
            self.drift.remove(&id);
            telemetry::hit(telemetry::Counter::SessionsDeparted);
            telemetry::gauge_set(telemetry::Gauge::ActiveSessions, self.sessions.len() as u64);
            return Ok(Departure::Released);
        }
        if self.pending.remove(&id).is_some() {
            // A pending session's own allocation was already released when
            // it broke, and its backups were consumed by that same repair
            // pass — but purge defensively so a departed id can never leak
            // a reservation.
            self.discard_backups(sdn, id);
            self.drift.remove(&id);
            telemetry::gauge_set(telemetry::Gauge::PendingRepairs, self.pending.len() as u64);
            return Ok(Departure::Cancelled);
        }
        self.double_release_count += 1;
        telemetry::hit(telemetry::Counter::DoubleRelease);
        telemetry::record(telemetry::Event::UnknownDeparture { request: id.0 });
        Ok(Departure::Unknown)
    }

    /// Committed sessions whose footprint touches a failed link or
    /// server, in ascending request-id order.
    #[must_use]
    pub fn broken_sessions(&self, sdn: &Sdn) -> Vec<RequestId> {
        let mut broken: BTreeSet<RequestId> = BTreeSet::new();
        for e in sdn.failed_links() {
            if let Some(members) = self.link_members.get(&e) {
                broken.extend(members.iter().copied());
            }
        }
        for v in sdn.failed_servers() {
            if let Some(members) = self.server_members.get(&v) {
                broken.extend(members.iter().copied());
            }
        }
        broken.into_iter().collect()
    }

    /// Detects sessions broken by failures, releases them, and replans
    /// them (plus any still-pending earlier casualties) under `config`.
    ///
    /// Deterministic: sessions are processed in ascending request-id
    /// order and the planner itself is deterministic, so the same network
    /// state and failure history yield a byte-identical report.
    pub fn repair(
        &mut self,
        sdn: &mut Sdn,
        config: &RepairConfig,
        scratch: &mut ApproScratch,
    ) -> RepairReport {
        let mut report = RepairReport {
            broken: self.broken_sessions(sdn),
            ..RepairReport::default()
        };
        telemetry::add(telemetry::Counter::RepairBroken, report.broken.len() as u64);
        if !report.broken.is_empty() {
            telemetry::observe(
                telemetry::Hist::RepairBatchBroken,
                report.broken.len() as u64,
            );
        }
        // Detach every casualty first: release its allocation *and* its
        // reserved backup capacity, so the swap/replan phase below sees the
        // full surviving residual.
        let mut casualties: Vec<Casualty> = Vec::with_capacity(report.broken.len());
        for &id in &report.broken {
            let s = self
                .sessions
                .remove(&id)
                .expect("invariant: broken_sessions only lists committed sessions"); // lint:allow(P1): broken_sessions is built from the committed-session index
            self.unindex(id, &s.allocation);
            sdn.release(&s.allocation)
                .expect("invariant: a committed allocation releases cleanly"); // lint:allow(P1): a committed allocation was applied, so release balances
            self.drift.remove(&id);
            let backups = self.backups.remove(&id).unwrap_or_default();
            for b in &backups {
                if b.reserved {
                    sdn.release(&b.allocation)
                        // lint:allow(P1): the reservation was applied at protect time, so release balances
                        .expect("invariant: a charged reservation releases cleanly");
                }
            }
            casualties.push(Casualty {
                id,
                request: s.request,
                backups,
            });
        }

        // Failover phase: swap each casualty to its precomputed backup
        // tree when one avoids every dead element and still fits — an
        // O(commit) restore, zero planner invocations. The rest falls back
        // to the reactive pending-repair queue.
        for c in casualties {
            let candidates = c.backups.len();
            let chosen = c.backups.into_iter().find(|b| {
                b.allocation.links().all(|(e, _)| sdn.is_link_alive(e))
                    && b.allocation.servers().all(|(v, _)| sdn.is_server_alive(v))
                    && sdn.can_allocate(&b.allocation)
            });
            if let Some(b) = chosen {
                self.commit(sdn, c.request, b.tree)
                    .expect("invariant: a fitting backup tree commits cleanly"); // lint:allow(P1): fit was just checked against the live residual
                telemetry::hit(telemetry::Counter::BackupHits);
                telemetry::add(
                    telemetry::Counter::BackupDiscarded,
                    candidates.saturating_sub(1) as u64,
                );
                telemetry::observe(telemetry::Hist::FailoverPlanEvents, 0);
                telemetry::record(telemetry::Event::SessionFailedOver { request: c.id.0 });
                report.swapped.push(c.id);
            } else {
                if self.resilience.is_some() {
                    telemetry::hit(telemetry::Counter::BackupMisses);
                }
                telemetry::add(telemetry::Counter::BackupDiscarded, candidates as u64);
                self.pending.insert(
                    c.id,
                    PendingRepair {
                        request: c.request,
                        attempts: 0,
                    },
                );
            }
        }
        self.update_reserved_gauge();

        let queue: Vec<RequestId> = self.pending.keys().copied().collect();
        for id in queue {
            let entry = &self.pending[&id];
            if config.policy == RepairPolicy::Reject || entry.attempts >= config.max_retries {
                self.pending.remove(&id);
                telemetry::hit(telemetry::Counter::RepairDropped);
                telemetry::record(telemetry::Event::SessionDropped { request: id.0 });
                report.dropped.push(id);
                continue;
            }
            let request = entry.request.clone();

            report.plan_events += 1;
            if let Admission::Admitted(tree) =
                appro_multi_cap_with_scratch(sdn, &request, config.k, scratch)
            {
                self.pending.remove(&id);
                self.commit(sdn, request, tree)
                    .expect("invariant: a replanned tree fits the residual it was planned on"); // lint:allow(P1): replanning ran on the exact residual being committed
                telemetry::hit(telemetry::Counter::RepairRepaired);
                telemetry::observe(telemetry::Hist::FailoverPlanEvents, 1);
                telemetry::record(telemetry::Event::SessionRepaired { request: id.0 });
                report.repaired.push(id);
                continue;
            }

            if config.policy == RepairPolicy::Degrade {
                if let Some(reduced) = reachable_subrequest(sdn, &request) {
                    let shed = request.destinations.len() - reduced.destinations.len();
                    report.plan_events += 1;
                    if let Admission::Admitted(tree) =
                        appro_multi_cap_with_scratch(sdn, &reduced, config.k, scratch)
                    {
                        self.pending.remove(&id);
                        self.commit(sdn, reduced, tree)
                            .expect("invariant: a degraded tree fits the residual"); // lint:allow(P1): the degraded tree was planned on this exact residual
                        telemetry::hit(telemetry::Counter::RepairDegraded);
                        telemetry::observe(telemetry::Hist::FailoverPlanEvents, 2);
                        telemetry::record(telemetry::Event::SessionDegraded {
                            request: id.0,
                            shed_terminals: shed as u64,
                        });
                        report.degraded.push((id, shed));
                        continue;
                    }
                }
            }

            let entry = self
                .pending
                .get_mut(&id)
                .expect("invariant: unrepaired session is still pending"); // lint:allow(P1): id was inserted into pending in the detach pass above
            entry.attempts += 1;
            if entry.attempts >= config.max_retries {
                self.pending.remove(&id);
                telemetry::hit(telemetry::Counter::RepairDropped);
                telemetry::record(telemetry::Event::SessionDropped { request: id.0 });
                report.dropped.push(id);
            } else {
                telemetry::hit(telemetry::Counter::RepairDeferred);
                telemetry::record(telemetry::Event::SessionDeferred { request: id.0 });
                report.deferred.push(id);
            }
        }
        // Every restored session lost its backups when it broke (or never
        // had any); re-protect so the next failure can swap again.
        if self.resilience.is_some() {
            let restored: BTreeSet<RequestId> = report
                .swapped
                .iter()
                .chain(report.repaired.iter())
                .chain(report.degraded.iter().map(|(id, _)| id))
                .copied()
                .collect();
            for id in restored {
                let _ = self.protect(sdn, id, scratch);
            }
        }
        telemetry::gauge_set(telemetry::Gauge::PendingRepairs, self.pending.len() as u64);
        telemetry::gauge_set(telemetry::Gauge::ActiveSessions, self.sessions.len() as u64);
        report
    }

    pub(crate) fn index(&mut self, id: RequestId, allocation: &Allocation) {
        for (e, _) in allocation.links() {
            self.link_members.entry(e).or_default().insert(id);
        }
        for (v, _) in allocation.servers() {
            self.server_members.entry(v).or_default().insert(id);
        }
    }

    pub(crate) fn unindex(&mut self, id: RequestId, allocation: &Allocation) {
        for (e, _) in allocation.links() {
            if let Some(members) = self.link_members.get_mut(&e) {
                members.remove(&id);
                if members.is_empty() {
                    self.link_members.remove(&e);
                }
            }
        }
        for (v, _) in allocation.servers() {
            if let Some(members) = self.server_members.get_mut(&v) {
                members.remove(&id);
                if members.is_empty() {
                    self.server_members.remove(&v);
                }
            }
        }
    }
}

/// The sub-request keeping only destinations still connected to the
/// source through usable links (alive, residual ≥ `b`). Returns `None`
/// when nothing would be shed (degradation cannot help) or when no
/// destination survives.
fn reachable_subrequest(sdn: &Sdn, request: &MulticastRequest) -> Option<MulticastRequest> {
    let g = sdn.graph();
    let mut uf = UnionFind::new(g.node_count());
    for e in g.edges() {
        if sdn.is_link_alive(e.id)
            && sdn.residual_bandwidth(e.id) + sdn::CAPACITY_EPS >= request.bandwidth
        {
            uf.union(e.u.index(), e.v.index());
        }
    }
    let reachable: Vec<NodeId> = request
        .destinations
        .iter()
        .copied()
        .filter(|d| uf.connected(request.source.index(), d.index()))
        .collect();
    if reachable.is_empty() || reachable.len() == request.destinations.len() {
        return None;
    }
    MulticastRequest::try_new(
        request.id,
        request.source,
        reachable,
        request.bandwidth,
        request.chain.clone(),
    )
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn::{NfvType, SdnBuilder, ServiceChain};

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Firewall])
    }

    /// s - m1(server) - d with an alternative longer route s - a - m2 - d,
    /// plus a spur d - x reaching a second destination.
    fn fixture() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let m1 = bld.add_server(1_000.0, 1.0);
        let a = bld.add_switch();
        let m2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        let x = bld.add_switch();
        let e0 = bld.add_link(s, m1, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(m1, d, 1_000.0, 1.0).unwrap();
        let e2 = bld.add_link(s, a, 1_000.0, 2.0).unwrap();
        let e3 = bld.add_link(a, m2, 1_000.0, 2.0).unwrap();
        let e4 = bld.add_link(m2, d, 1_000.0, 2.0).unwrap();
        let e5 = bld.add_link(d, x, 1_000.0, 1.0).unwrap();
        (
            bld.build().unwrap(),
            vec![s, m1, a, m2, d, x],
            vec![e0, e1, e2, e3, e4, e5],
        )
    }

    fn req(v: &[NodeId], id: u64, dests: Vec<NodeId>) -> MulticastRequest {
        MulticastRequest::new(RequestId(id), v[0], dests, 100.0, chain())
    }

    #[test]
    fn repair_reroutes_a_broken_session() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        let r = req(&v, 0, vec![v[4]]);
        assert!(mgr.admit(&mut sdn, &r, 1, &mut scratch).unwrap());
        assert_eq!(
            mgr.session(RequestId(0)).unwrap().tree.servers_used(),
            vec![v[1]]
        );

        sdn.fail_link(e[1]).unwrap();
        let report = mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        assert_eq!(report.broken, vec![RequestId(0)]);
        assert_eq!(report.repaired, vec![RequestId(0)]);
        assert!(report.dropped.is_empty());
        // Rerouted via m2, and the membership index moved with it.
        let s = mgr.session(RequestId(0)).unwrap();
        assert_eq!(s.tree.servers_used(), vec![v[3]]);
        assert_eq!(mgr.broken_sessions(&sdn), Vec::<RequestId>::new());
    }

    #[test]
    fn repair_is_a_no_op_without_failures() {
        let (mut sdn, v, _) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        let before = sdn.clone();
        let report = mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        assert!(report.is_quiet());
        assert_eq!(sdn, before);
    }

    #[test]
    fn reject_policy_and_zero_retries_both_tear_down() {
        for cfg in [
            RepairConfig::new(1).with_policy(RepairPolicy::Reject),
            RepairConfig::new(1).with_max_retries(0),
        ] {
            let (mut sdn, v, e) = fixture();
            let mut mgr = SessionManager::new();
            let mut scratch = ApproScratch::new();
            assert!(mgr
                .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
                .unwrap());
            sdn.fail_link(e[1]).unwrap();
            let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
            assert_eq!(report.dropped, vec![RequestId(0)]);
            assert!(report.repaired.is_empty());
            assert!(mgr.is_empty());
            // The broken session's hold was released despite the drop.
            assert_eq!(sdn.residual_bandwidth(e[0]), sdn.bandwidth_capacity(e[0]));
        }
    }

    #[test]
    fn degrade_sheds_only_unreachable_destinations() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        // Two destinations: d (v[4]) and the spur x (v[5]).
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4], v[5]]), 1, &mut scratch)
            .unwrap());
        // Cut the spur: x becomes unreachable, d is still fine.
        sdn.fail_link(e[5]).unwrap();
        let cfg = RepairConfig::new(1).with_policy(RepairPolicy::Degrade);
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(report.degraded, vec![(RequestId(0), 1)]);
        let s = mgr.session(RequestId(0)).unwrap();
        assert_eq!(s.request.destinations, vec![v[4]]);
        s.tree.validate(&sdn, &s.request).unwrap();
        // Full-reroute policy would have dropped the session instead.
        let (mut sdn2, v2, e2) = fixture();
        let mut mgr2 = SessionManager::new();
        assert!(mgr2
            .admit(&mut sdn2, &req(&v2, 0, vec![v2[4], v2[5]]), 1, &mut scratch)
            .unwrap());
        sdn2.fail_link(e2[5]).unwrap();
        let report2 = mgr2.repair(&mut sdn2, &RepairConfig::new(1), &mut scratch);
        assert_eq!(report2.dropped, vec![RequestId(0)]);
    }

    #[test]
    fn pending_session_retries_after_recovery() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        // Cut both routes into d: no replan can succeed yet.
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_link(e[4]).unwrap();
        let cfg = RepairConfig::new(1).with_max_retries(3);
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(report.deferred, vec![RequestId(0)]);
        assert_eq!(mgr.pending_repairs(), vec![RequestId(0)]);
        // A recovery event restores the cheap route; the next repair call
        // heals the deferred session.
        sdn.recover_link(e[1]).unwrap();
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(report.repaired, vec![RequestId(0)]);
        assert!(mgr.pending_repairs().is_empty());
    }

    #[test]
    fn depart_guards_against_double_release() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        assert_eq!(
            mgr.depart(&mut sdn, RequestId(0)).unwrap(),
            Departure::Released
        );
        // Second departure for the same id: guarded no-op.
        assert_eq!(
            mgr.depart(&mut sdn, RequestId(0)).unwrap(),
            Departure::Unknown
        );
        assert_eq!(mgr.double_release_count(), 1);
        assert_eq!(sdn.residual_bandwidth(e[0]), sdn.bandwidth_capacity(e[0]));
        // Departing a session the repair engine dropped is also a no-op.
        assert!(mgr
            .admit(&mut sdn, &req(&v, 1, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_link(e[4]).unwrap();
        let cfg = RepairConfig::new(1).with_max_retries(1);
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(report.dropped, vec![RequestId(1)]);
        assert_eq!(
            mgr.depart(&mut sdn, RequestId(1)).unwrap(),
            Departure::Unknown
        );
        assert_eq!(mgr.double_release_count(), 2);
    }

    #[test]
    fn depart_cancels_a_pending_repair() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_link(e[4]).unwrap();
        let cfg = RepairConfig::new(1).with_max_retries(5);
        mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(mgr.pending_repairs(), vec![RequestId(0)]);
        assert_eq!(
            mgr.depart(&mut sdn, RequestId(0)).unwrap(),
            Departure::Cancelled
        );
        assert!(mgr.pending_repairs().is_empty());
        assert_eq!(mgr.double_release_count(), 0);
    }

    #[test]
    fn departed_pending_session_is_never_replanned_after_recovery() {
        let (mut sdn, v, e) = fixture();
        let fresh = sdn.clone();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        // Break the session beyond repair, leaving it pending.
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_link(e[4]).unwrap();
        let cfg = RepairConfig::new(1).with_max_retries(5);
        mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(mgr.pending_repairs(), vec![RequestId(0)]);
        // The user departs while the session awaits repair.
        assert_eq!(
            mgr.depart(&mut sdn, RequestId(0)).unwrap(),
            Departure::Cancelled
        );
        // Capacity comes back — the repair pass must not resurrect the
        // departed session.
        sdn.recover_link(e[1]).unwrap();
        sdn.recover_link(e[4]).unwrap();
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert!(report.is_quiet());
        assert!(mgr.is_empty());
        assert!(mgr.pending_repairs().is_empty());
        assert_eq!(sdn, fresh);
    }

    #[test]
    fn duplicate_commit_is_rejected() {
        let (mut sdn, v, _) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        let r = req(&v, 0, vec![v[4]]);
        assert!(mgr.admit(&mut sdn, &r, 1, &mut scratch).unwrap());
        let err = mgr.admit(&mut sdn, &r, 1, &mut scratch).unwrap_err();
        assert!(matches!(err, SdnError::InfeasibleRequest { .. }));
    }
}
