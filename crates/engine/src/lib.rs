//! # nfv-engine
//!
//! High-throughput batch admission for NFV-enabled multicast requests.
//!
//! The sequential admission loop (`Appro_Multi_Cap` per request, then
//! commit) is dominated by path computation. This crate splits a batch
//! into **parallel speculative planning waves** against a shared
//! read-only snapshot of the network, each followed by a **deterministic
//! sequential commit phase** that validates each plan against the live
//! residual state: the longest undisturbed prefix commits, a disturbed
//! suffix is re-planned by the next parallel wave, and after a bounded
//! number of waves the remainder is finished with inline sequential
//! replans. When only one worker is available the engine short-circuits
//! to the plain sequential loop. The outcome is byte-identical to
//! [`admit_sequential`] in every case, at a fraction of the wall-clock
//! time for non-conflicting batches on multicore hosts.
//!
//! For *unbounded streams* — arrivals, departures, and faults arriving
//! forever — [`pipeline::AdmissionPipeline`] replaces the wave barrier
//! with a continuous plan/commit pipeline: workers plan a bounded
//! in-flight window against versioned snapshots while the committer
//! commits in strict arrival order, validating each speculative plan with
//! the same disturbance check (shared via the crate's `spec` helpers), so
//! streaming decisions stay byte-identical to the sequential reference
//! too.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
mod batch;
pub mod pipeline;
pub mod repair;
pub mod resilience;
mod spec;

pub use audit::{audit, AuditError, Auditor, CacheStamp};
pub use batch::{admit_batch, admit_sequential, BatchReport, EngineConfig};
pub use pipeline::{
    run_stream, AdmissionPipeline, FaultEvent, PipelineConfig, PipelineOutcome, PipelineReport,
    StreamEvent,
};
pub use repair::{
    CommittedSession, Departure, RepairConfig, RepairPolicy, RepairReport, SessionManager,
};
pub use resilience::{BackupPolicy, BackupTree, GraftOutcome, PruneOutcome, ResilienceConfig};
