//! Batch admission: parallel speculative planning + sequential commit.

use crate::spec::{feasibility_disturbed, validate_speculative, TouchedSet};
use nfv_multicast::{appro_multi_cap_with_scratch, Admission, ApproScratch};
use sdn::{MulticastRequest, Sdn};

/// Tuning knobs for [`admit_batch`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum servers per request (the paper's `K`).
    pub k: usize,
    /// Worker threads for the planning phase (`0` = available parallelism).
    pub workers: usize,
    /// Maximum parallel planning waves before the remainder of the batch
    /// is finished with inline sequential replans. Bounds the worst-case
    /// planning work under heavy contention.
    pub max_waves: usize,
}

impl EngineConfig {
    /// A config with `k` servers, automatic worker count, and the default
    /// wave bound.
    #[must_use]
    pub fn new(k: usize) -> Self {
        EngineConfig {
            k,
            workers: 0,
            max_waves: 4,
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the planning-wave bound.
    #[must_use]
    pub fn with_max_waves(mut self, max_waves: usize) -> Self {
        self.max_waves = max_waves.max(1);
        self
    }

    fn effective_workers(&self, batch_len: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, batch_len.max(1))
    }
}

/// Statistics from one [`admit_batch`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Commits taken straight from a parallel speculative plan.
    pub speculative_hits: usize,
    /// Extra planning passes beyond each request's first: deferred
    /// requests re-planned by later waves plus inline sequential replans,
    /// all caused by an earlier commit moving a feasible subgraph.
    pub replanned: usize,
    /// Distinct touched elements scanned by the commit loop's disturbance
    /// checks, summed over validated requests. The touched set is
    /// deduplicated, so an element loaded by many commits in one wave is
    /// counted (and checked) once per pending request, not once per
    /// commit.
    pub disturbance_checks: usize,
}

/// The reference implementation: admits `requests` strictly one at a time,
/// committing each admitted allocation before planning the next request.
// lint:entry(api)
pub fn admit_sequential(sdn: &mut Sdn, requests: &[MulticastRequest], k: usize) -> Vec<Admission> {
    let mut scratch = ApproScratch::new();
    requests
        .iter()
        .map(|req| {
            let adm = appro_multi_cap_with_scratch(sdn, req, k, &mut scratch);
            if let Admission::Admitted(tree) = &adm {
                sdn.allocate(&tree.allocation(req))
                    .expect("admitted tree fits residual capacities"); // lint:allow(P1): the tree was planned on this exact residual state
            }
            adm
        })
        .collect()
}

/// Admits a batch of requests with parallel speculative planning and a
/// deterministic sequential commit phase.
///
/// Decisions (admit/reject **and** the chosen trees) are byte-identical to
/// [`admit_sequential`] on the same request order: a speculative plan is
/// committed only when no earlier commit changed the request's feasible
/// subgraph (the set of links with residual bandwidth ≥ `b_k` and servers
/// with residual computing ≥ `C(SC_k)`); otherwise the request is
/// re-planned against the live state, exactly as the sequential loop
/// would.
///
/// Planning runs in **waves**: each wave plans the undecided tail of the
/// batch in parallel against the live state, then commits the longest
/// prefix whose feasible subgraphs the wave's own commits did not
/// disturb. A disturbed suffix is deferred to the next wave (so replans
/// are parallel too); after [`EngineConfig::max_waves`] waves — or when a
/// wave is not worth its thread overhead — the remainder is finished
/// inline, one sequential replan at a time.
// lint:entry(api)
pub fn admit_batch(
    sdn: &mut Sdn,
    requests: &[MulticastRequest],
    config: &EngineConfig,
) -> (Vec<Admission>, BatchReport) {
    let mut report = BatchReport::default();
    if requests.is_empty() {
        return (Vec::new(), report);
    }
    if config.effective_workers(requests.len()) == 1 {
        // No parallelism to exploit: speculation would only add wasted
        // planning work on top of the sequential loop it must replay.
        let decisions = admit_sequential(sdn, requests, config.k);
        report.admitted = decisions
            .iter()
            .filter(|d| matches!(d, Admission::Admitted(_)))
            .count();
        report.rejected = decisions.len() - report.admitted;
        return (decisions, report);
    }

    let mut decisions: Vec<Option<Admission>> = Vec::new();
    decisions.resize_with(requests.len(), || None);
    // Indices of requests not yet decided, always in batch order.
    let mut pending: Vec<usize> = (0..requests.len()).collect();
    let mut wave = 0usize;
    // Working memory for inline sequential replans, reused across waves.
    let mut inline_scratch = ApproScratch::new();

    while !pending.is_empty() {
        wave += 1;
        telemetry::hit(telemetry::Counter::EngineWaves);
        telemetry::observe(telemetry::Hist::BatchWaveSize, pending.len() as u64);
        let workers = config.effective_workers(pending.len());

        // Snapshot of the usable (alive-masked) residual state this wave's
        // plans are based on — the same view the planners read, so the
        // disturbance predicate compares like with like.
        let snap_bandwidth: Vec<f64> = sdn
            .graph()
            .edges()
            .map(|e| sdn.usable_bandwidth(e.id))
            .collect();
        let snap_computing: Vec<Option<f64>> = sdn
            .graph()
            .nodes()
            .map(|v| sdn.usable_computing(v))
            .collect();

        // Plan the pending tail in parallel against the live state. Each
        // worker owns a contiguous slice and its own scratch; the network
        // is shared read-only. Plans are raw `CapPlan`s — the accumulated
        // load check is deferred to the commit loop, which knows the
        // state each tree is actually charged to.
        let mut plans: Vec<Option<nfv_multicast::CapPlan>> = Vec::new();
        plans.resize_with(pending.len(), || None);
        let chunk = pending.len().div_ceil(workers);
        {
            let snapshot: &Sdn = sdn;
            std::thread::scope(|scope| {
                for (idx_chunk, plan_chunk) in pending.chunks(chunk).zip(plans.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        let mut cache = nfv_multicast::PathCache::new(snapshot);
                        for (&i, slot) in idx_chunk.iter().zip(plan_chunk.iter_mut()) {
                            *slot = Some(nfv_multicast::appro_multi_cap_plan_cached(
                                snapshot,
                                &requests[i],
                                config.k,
                                &mut cache,
                            ));
                        }
                    });
                }
            });
        }
        if wave > 1 {
            report.replanned += pending.len();
            telemetry::add(telemetry::Counter::EngineReplans, pending.len() as u64);
        }

        // Commit in batch order. Track which links/servers this wave's
        // commits touched (deduplicated); a plan is valid only if none of
        // them crossed the request's feasibility threshold since the wave
        // snapshot.
        let mut touched = TouchedSet::new();
        // Deferring a disturbed suffix to another parallel wave only pays
        // when there are threads to spread it over and waves left.
        let defer_allowed = workers > 1 && wave < config.max_waves;
        let mut committed = 0usize;
        let mut inline_tail = false;
        for (pos, (&i, plan)) in pending.iter().zip(plans).enumerate() {
            let req = &requests[i];
            report.disturbance_checks += touched.len();
            let disturbed = feasibility_disturbed(
                &touched,
                |e| {
                    snap_bandwidth
                        .get(e.index())
                        .copied()
                        .unwrap_or(f64::NEG_INFINITY)
                },
                |v| snap_computing.get(v.index()).copied().flatten(),
                sdn,
                req,
            );
            if disturbed && defer_allowed && !inline_tail {
                // Defer the rest of the batch to the next parallel wave.
                break;
            }
            let decision = if disturbed {
                // The feasible subgraph moved under this request: replay
                // the sequential decision exactly, inline.
                inline_tail = true;
                report.replanned += 1;
                telemetry::hit(telemetry::Counter::EngineReplans);
                appro_multi_cap_with_scratch(sdn, req, config.k, &mut inline_scratch)
            } else {
                // Identical feasible subgraph => the plan is the tree the
                // sequential loop would have computed. Its accumulated-
                // load check runs against the *live* state — only the
                // live verdict matches the sequential decision.
                report.speculative_hits += 1;
                telemetry::hit(telemetry::Counter::EngineSpeculativeCommits);
                // lint:allow(P1): the planning pass above filled every pending slot
                validate_speculative(plan.expect("every pending request was planned"), req, sdn)
            };

            if let Admission::Admitted(tree) = &decision {
                let alloc = tree.allocation(req);
                sdn.allocate(&alloc)
                    .expect("admitted tree fits residual capacities"); // lint:allow(P1): the tree was planned on this exact residual state
                touched.absorb(&alloc);
                report.admitted += 1;
            } else {
                report.rejected += 1;
            }
            decisions[i] = Some(decision);
            committed = pos + 1;
        }
        pending.drain(..committed);
    }

    let decisions = decisions
        .into_iter()
        .map(|d| d.expect("every request was decided")) // lint:allow(P1): the decision loop above decided every request
        .collect();
    (decisions, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sdn::{NfvType, RequestId, SdnBuilder, ServiceChain};

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Firewall])
    }

    /// A ring of `n` switches with servers sprinkled every 4 nodes and
    /// moderate capacities so contention is real.
    fn ring_sdn(n: usize, seed: u64) -> Sdn {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bld = SdnBuilder::new();
        let nodes: Vec<_> = (0..n).map(|_| bld.add_switch()).collect();
        for i in 0..n {
            bld.add_link(nodes[i], nodes[(i + 1) % n], 600.0, rng.gen_range(0.5..2.0))
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            bld.attach_server(nodes[i], 2_000.0, rng.gen_range(0.5..2.0))
                .unwrap();
        }
        bld.build().unwrap()
    }

    fn random_requests(n_nodes: usize, count: usize, seed: u64) -> Vec<MulticastRequest> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        (0..count)
            .map(|i| {
                let src = rng.gen_range(0..n_nodes);
                let mut dests = Vec::new();
                for _ in 0..rng.gen_range(1..=3) {
                    let d = rng.gen_range(0..n_nodes);
                    if d != src && !dests.contains(&netgraph::NodeId::new(d)) {
                        dests.push(netgraph::NodeId::new(d));
                    }
                }
                if dests.is_empty() {
                    dests.push(netgraph::NodeId::new((src + 1) % n_nodes));
                }
                MulticastRequest::new(
                    RequestId(i as u64),
                    netgraph::NodeId::new(src),
                    dests,
                    rng.gen_range(50.0..200.0),
                    chain(),
                )
            })
            .collect()
    }

    #[test]
    fn batch_equals_sequential_under_contention() {
        for seed in 0..6u64 {
            let requests = random_requests(24, 40, seed);
            let mut seq_net = ring_sdn(24, seed);
            let mut batch_net = seq_net.clone();
            let seq = admit_sequential(&mut seq_net, &requests, 2);
            let (batch, report) = admit_batch(
                &mut batch_net,
                &requests,
                &EngineConfig::new(2).with_workers(4),
            );
            assert_eq!(seq, batch, "seed {seed}: decisions diverged");
            assert_eq!(seq_net, batch_net, "seed {seed}: residual state diverged");
            assert_eq!(report.admitted + report.rejected, requests.len());
        }
    }

    #[test]
    fn single_worker_batch_also_matches() {
        let requests = random_requests(16, 20, 7);
        let mut seq_net = ring_sdn(16, 7);
        let mut batch_net = seq_net.clone();
        let seq = admit_sequential(&mut seq_net, &requests, 1);
        let (batch, _) = admit_batch(
            &mut batch_net,
            &requests,
            &EngineConfig::new(1).with_workers(1),
        );
        assert_eq!(seq, batch);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut net = ring_sdn(8, 0);
        let before = net.clone();
        let (decisions, report) = admit_batch(&mut net, &[], &EngineConfig::new(2));
        assert!(decisions.is_empty());
        assert_eq!(report, BatchReport::default());
        assert_eq!(net, before);
    }

    #[test]
    fn disturbance_scan_deduplicates_shared_elements() {
        // Four identical requests on a single path s - v - d: every
        // admitted tree loads the same two links and one server.
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v = bld.add_server(1e9, 1.0);
        let d = bld.add_switch();
        bld.add_link(s, v, 1e9, 1.0).unwrap();
        bld.add_link(v, d, 1e9, 1.0).unwrap();
        let mut net = bld.build().unwrap();
        let requests: Vec<MulticastRequest> = (0..4)
            .map(|i| MulticastRequest::new(RequestId(i), s, vec![d], 100.0, chain()))
            .collect();
        let (decisions, report) =
            admit_batch(&mut net, &requests, &EngineConfig::new(1).with_workers(2));
        assert!(decisions
            .iter()
            .all(|d| matches!(d, Admission::Admitted(_))));
        assert_eq!(report.speculative_hits, 4);
        // The touched set holds 3 distinct elements after the first
        // commit, so requests 1..3 scan 3 elements each (9 total). The
        // old Vec bookkeeping accumulated one entry per element per
        // commit and would have scanned 3 + 6 + 9 = 18.
        assert_eq!(report.disturbance_checks, 9);
    }

    #[test]
    fn uncontended_batch_commits_speculatively() {
        // Huge capacities: no commit ever crosses a feasibility threshold,
        // so every plan is a speculative hit.
        let mut bld = SdnBuilder::new();
        let nodes: Vec<_> = (0..8).map(|_| bld.add_switch()).collect();
        for i in 0..8 {
            bld.add_link(nodes[i], nodes[(i + 1) % 8], 1e9, 1.0)
                .unwrap();
        }
        bld.attach_server(nodes[0], 1e9, 1.0).unwrap();
        let mut net = bld.build().unwrap();
        let requests = random_requests(8, 16, 3);
        let (_, report) = admit_batch(&mut net, &requests, &EngineConfig::new(1).with_workers(2));
        assert_eq!(report.replanned, 0);
        assert_eq!(report.speculative_hits, 16);
        assert_eq!(report.admitted, 16);
    }
}
