//! Invariant auditor for the admission/repair lifecycle.
//!
//! After every commit, release, or repair the network ledger, the session
//! bookkeeping, and the planner caches must agree. [`audit`] checks:
//!
//! 1. **Residual conservation** — for every link and server, the residual
//!    equals capacity minus the summed load of the live committed
//!    sessions (the [`SessionManager`] is assumed to own every
//!    allocation in the network).
//! 2. **Tree health** — every committed tree passes structural
//!    validation against its (possibly degraded) request and touches no
//!    failed link or server.
//! 3. **Cache freshness** — via [`Auditor::check_caches`], any cache
//!    claiming to be synced with the network (e.g.
//!    `PathCache::synced_version`, `OnlineCp::cached_version`) must
//!    report the current `Sdn::version`; serving from an older version
//!    is exactly the stale-read bug the version counter exists to stop.
//!
//! The checks are `O(sessions × footprint)` — far too slow for the hot
//! path, so [`Auditor`] gates them: on by default in debug builds, opt-in
//! for release builds via the `NFV_AUDIT=1` environment variable (chaos
//! runs set it), and always available unconditionally through [`audit`].

use crate::repair::SessionManager;
use netgraph::{EdgeId, NodeId};
use sdn::{RequestId, Sdn};
use std::collections::BTreeMap;
use std::fmt;

/// An invariant violation found by the auditor. Any variant here is a
/// bug in the engine, never a property of the workload.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// A link's residual disagrees with capacity minus live session load.
    ResidualBandwidthMismatch {
        /// The offending link.
        link: EdgeId,
        /// Capacity minus the summed live loads.
        expected: f64,
        /// What the ledger reports.
        actual: f64,
    },
    /// A server's residual disagrees with capacity minus live load.
    ResidualComputingMismatch {
        /// The offending server.
        server: NodeId,
        /// Capacity minus the summed live loads.
        expected: f64,
        /// What the ledger reports.
        actual: f64,
    },
    /// A committed tree failed structural validation.
    InvalidTree {
        /// The session whose tree is broken.
        session: RequestId,
        /// The validator's explanation.
        reason: String,
    },
    /// A committed tree still touches a failed link or server — the
    /// repair engine should have caught it.
    DeadElementInTree {
        /// The session left on a dead element.
        session: RequestId,
        /// Which element is dead.
        what: String,
    },
    /// A cache claims to be synced but was built at an older network
    /// version.
    StaleCache {
        /// Which cache (e.g. `"PathCache"`).
        cache: &'static str,
        /// The version the cache was built at.
        cached_version: u64,
        /// The network's current version.
        network_version: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::ResidualBandwidthMismatch {
                link,
                expected,
                actual,
            } => write!(
                f,
                "residual bandwidth of {link} is {actual} but live sessions imply {expected}"
            ),
            AuditError::ResidualComputingMismatch {
                server,
                expected,
                actual,
            } => write!(
                f,
                "residual computing of {server} is {actual} but live sessions imply {expected}"
            ),
            AuditError::InvalidTree { session, reason } => {
                write!(f, "tree of session {session:?} is invalid: {reason}")
            }
            AuditError::DeadElementInTree { session, what } => {
                write!(f, "session {session:?} still occupies failed {what}")
            }
            AuditError::StaleCache {
                cache,
                cached_version,
                network_version,
            } => write!(
                f,
                "cache {cache} was built at version {cached_version} \
                 but the network is at version {network_version}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// A cache's claim of which network version it is synced with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStamp {
    /// Cache name for diagnostics.
    pub cache: &'static str,
    /// The `Sdn::version` the cache was last rebuilt against.
    pub version: u64,
}

/// Runs every ledger/tree invariant check unconditionally.
///
/// Assumes `manager` owns all allocations currently in `sdn`; an
/// allocation made behind the manager's back is reported as a residual
/// mismatch (that is the point — nothing may bypass the bookkeeping).
///
/// # Errors
///
/// The first violated invariant, see [`AuditError`].
pub fn audit(sdn: &Sdn, manager: &SessionManager) -> Result<(), AuditError> {
    // Accumulate the live load per element across committed sessions.
    let mut link_load: BTreeMap<EdgeId, f64> = BTreeMap::new();
    let mut server_load: BTreeMap<NodeId, f64> = BTreeMap::new();
    for (_, s) in manager.sessions() {
        for (e, l) in s.allocation.links() {
            *link_load.entry(e).or_insert(0.0) += l;
        }
        for (v, l) in s.allocation.servers() {
            *server_load.entry(v).or_insert(0.0) += l;
        }
    }
    // Reserved backup trees hold real ledger capacity too (policy
    // `Reserved`); best-effort backups hold none and contribute nothing.
    for alloc in manager.backup_reservations() {
        for (e, l) in alloc.links() {
            *link_load.entry(e).or_insert(0.0) += l;
        }
        for (v, l) in alloc.servers() {
            *server_load.entry(v).or_insert(0.0) += l;
        }
    }

    for e in sdn.graph().edges() {
        let cap = sdn.bandwidth_capacity(e.id);
        let expected = cap - link_load.get(&e.id).copied().unwrap_or(0.0);
        let actual = sdn.residual_bandwidth(e.id);
        if (expected - actual).abs() > sdn::VALIDATE_REL_TOL * (1.0 + cap) {
            return Err(AuditError::ResidualBandwidthMismatch {
                link: e.id,
                expected,
                actual,
            });
        }
    }
    for &v in sdn.servers() {
        let cap = sdn.computing_capacity(v).expect("listed server"); // lint:allow(P1): v is drawn from servers()
        let expected = cap - server_load.get(&v).copied().unwrap_or(0.0);
        let actual = sdn.residual_computing(v).expect("listed server"); // lint:allow(P1): v is drawn from servers()
        if (expected - actual).abs() > sdn::VALIDATE_REL_TOL * (1.0 + cap) {
            return Err(AuditError::ResidualComputingMismatch {
                server: v,
                expected,
                actual,
            });
        }
    }

    for (id, s) in manager.sessions() {
        if let Err(reason) = s.tree.validate(sdn, &s.request) {
            return Err(AuditError::InvalidTree {
                session: id,
                reason,
            });
        }
        for (e, _) in s.allocation.links() {
            if !sdn.is_link_alive(e) {
                return Err(AuditError::DeadElementInTree {
                    session: id,
                    what: format!("link {e}"),
                });
            }
        }
        for (v, _) in s.allocation.servers() {
            if !sdn.is_server_alive(v) {
                return Err(AuditError::DeadElementInTree {
                    session: id,
                    what: format!("server {v}"),
                });
            }
        }
    }
    telemetry::hit(telemetry::Counter::AuditPasses);
    Ok(())
}

/// Gated auditor: on in debug builds, opt-in (`NFV_AUDIT=1`) in release.
#[derive(Debug, Clone, Copy)]
pub struct Auditor {
    enabled: bool,
}

impl Auditor {
    /// An auditor with explicit gating.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Auditor { enabled }
    }

    /// Default gating: enabled in debug builds, or when the
    /// `NFV_AUDIT` environment variable is `1` (chaos/CI runs).
    #[must_use]
    pub fn from_env() -> Self {
        // lint:allow(D2): one-shot opt-in gate read at construction; it toggles
        // whether invariants are *checked*, never what the planners compute.
        let opted_in = std::env::var("NFV_AUDIT")
            .map(|v| v == "1")
            .unwrap_or(false);
        Auditor::new(cfg!(debug_assertions) || opted_in)
    }

    /// Whether checks actually run.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runs [`audit`] when enabled; a no-op otherwise.
    ///
    /// # Errors
    ///
    /// See [`audit`].
    pub fn check(&self, sdn: &Sdn, manager: &SessionManager) -> Result<(), AuditError> {
        if !self.enabled {
            return Ok(());
        }
        audit(sdn, manager)
    }

    /// Verifies that every synced cache stamp matches the live network
    /// version. Only pass stamps for caches that *claim* to be synced —
    /// a cache that will lazily rebuild on next use has no stamp to
    /// check.
    ///
    /// # Errors
    ///
    /// [`AuditError::StaleCache`] for the first mismatched stamp.
    pub fn check_caches(&self, sdn: &Sdn, stamps: &[CacheStamp]) -> Result<(), AuditError> {
        if !self.enabled {
            return Ok(());
        }
        for s in stamps {
            if s.version != sdn.version() {
                return Err(AuditError::StaleCache {
                    cache: s.cache,
                    cached_version: s.version,
                    network_version: sdn.version(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{RepairConfig, SessionManager};
    use nfv_multicast::ApproScratch;
    use sdn::{Allocation, MulticastRequest, NfvType, SdnBuilder, ServiceChain};

    fn fixture() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let m1 = bld.add_server(1_000.0, 1.0);
        let a = bld.add_switch();
        let m2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        let e0 = bld.add_link(s, m1, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(m1, d, 1_000.0, 1.0).unwrap();
        let e2 = bld.add_link(s, a, 1_000.0, 2.0).unwrap();
        let e3 = bld.add_link(a, m2, 1_000.0, 2.0).unwrap();
        let e4 = bld.add_link(m2, d, 1_000.0, 2.0).unwrap();
        (
            bld.build().unwrap(),
            vec![s, m1, a, m2, d],
            vec![e0, e1, e2, e3, e4],
        )
    }

    fn req(v: &[NodeId], id: u64) -> MulticastRequest {
        MulticastRequest::new(
            sdn::RequestId(id),
            v[0],
            vec![v[4]],
            100.0,
            ServiceChain::new(vec![NfvType::Firewall]),
        )
    }

    #[test]
    fn clean_lifecycle_passes() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        audit(&sdn, &mgr).unwrap();
        assert!(mgr.admit(&mut sdn, &req(&v, 0), 1, &mut scratch).unwrap());
        assert!(mgr.admit(&mut sdn, &req(&v, 1), 1, &mut scratch).unwrap());
        audit(&sdn, &mgr).unwrap();
        mgr.depart(&mut sdn, sdn::RequestId(0)).unwrap();
        audit(&sdn, &mgr).unwrap();
        sdn.fail_link(e[1]).unwrap();
        mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        audit(&sdn, &mgr).unwrap();
    }

    #[test]
    fn detects_allocation_behind_the_managers_back() {
        let (mut sdn, v, e) = fixture();
        let mgr = SessionManager::new();
        let mut rogue = Allocation::new(sdn::RequestId(99));
        rogue.add_link(e[0], 50.0);
        sdn.allocate(&rogue).unwrap();
        let err = audit(&sdn, &mgr).unwrap_err();
        assert!(matches!(
            err,
            AuditError::ResidualBandwidthMismatch { link, .. } if link == e[0]
        ));
        let _ = v;
    }

    #[test]
    fn detects_session_left_on_a_dead_element() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::new();
        let mut scratch = ApproScratch::new();
        assert!(mgr.admit(&mut sdn, &req(&v, 0), 1, &mut scratch).unwrap());
        // Failure happened, but repair has not run yet: the tree is dead.
        sdn.fail_link(e[1]).unwrap();
        let err = audit(&sdn, &mgr).unwrap_err();
        assert!(matches!(err, AuditError::DeadElementInTree { .. }));
        // Repair clears the violation.
        mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        audit(&sdn, &mgr).unwrap();
    }

    #[test]
    fn stale_cache_stamp_is_reported() {
        let (mut sdn, v, _) = fixture();
        let auditor = Auditor::new(true);
        auditor
            .check_caches(
                &sdn,
                &[CacheStamp {
                    cache: "PathCache",
                    version: sdn.version(),
                }],
            )
            .unwrap();
        // Bump the version; the old stamp is now stale.
        let old = CacheStamp {
            cache: "PathCache",
            version: sdn.version(),
        };
        let mut a = Allocation::new(sdn::RequestId(0));
        a.add_link(netgraph::EdgeId::new(0), 1.0);
        sdn.allocate(&a).unwrap();
        let err = auditor.check_caches(&sdn, &[old]).unwrap_err();
        assert!(matches!(
            err,
            AuditError::StaleCache {
                cache: "PathCache",
                ..
            }
        ));
        let _ = v;
    }

    #[test]
    fn disabled_auditor_is_silent() {
        let (mut sdn, _, e) = fixture();
        let mgr = SessionManager::new();
        let mut rogue = Allocation::new(sdn::RequestId(99));
        rogue.add_link(e[0], 50.0);
        sdn.allocate(&rogue).unwrap();
        let off = Auditor::new(false);
        off.check(&sdn, &mgr).unwrap();
        off.check_caches(
            &sdn,
            &[CacheStamp {
                cache: "x",
                version: 0,
            }],
        )
        .unwrap();
        assert!(Auditor::new(true).check(&sdn, &mgr).is_err());
    }
}
