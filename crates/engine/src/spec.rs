//! Shared plan/validate/commit helpers for speculative admission.
//!
//! Both the wave-barrier batch engine ([`crate::admit_batch`]) and the
//! streaming pipeline ([`crate::pipeline`]) follow the same contract: a
//! plan computed against an older residual state may be committed iff no
//! commit or release since that state crossed the request's feasibility
//! thresholds — the set of links with *usable* (alive-masked) bandwidth
//! `>= b_k` and servers with usable computing `>= C(SC_k)` (both with the
//! shared [`sdn::CAPACITY_EPS`] slack). Planners define the feasible
//! subgraph through the usable view ([`Sdn::usable_bandwidth`] /
//! [`Sdn::usable_computing`]), so the predicate reads the same view on
//! both the snapshot and live sides.
//!
//! The sequential decision is a function of **two** residual reads, and
//! the speculative protocol covers each with a different mechanism:
//!
//! 1. **The feasible subgraph** (per-element single-threshold bits)
//!    determines which tree Algorithm 1 yields. The touched-set predicate
//!    [`feasibility_disturbed`] certifies that no bit flipped between the
//!    snapshot and the live state, so an undisturbed
//!    [`CapPlan`](nfv_multicast::CapPlan) *is* the plan the sequential
//!    loop would have computed on the live state.
//! 2. **The accumulated multi-traversal load check**: a tree can traverse
//!    one link in both an ingress path and the distribution structure, so
//!    admission needs `j·b_k` residual on such a link (`j` ≥ 2) — a
//!    threshold the single-`b_k` subgraph bits cannot see. Speculations
//!    therefore carry the *raw* planned tree (before that check), and
//!    [`validate_speculative`] resolves it against the **live** residuals
//!    at commit time. Collapsing the planner output to admit/reject on
//!    the snapshot would be unsound in both directions: a tree unfit on
//!    the snapshot can fit after releases, and vice versa.
//!
//! The touched-set mechanism only tracks *residual* movement (commits and
//! releases). Liveness flips are invisible to it by design: both engines
//! guarantee that no speculative plan ever spans a liveness change — the
//! batch engine admits no faults mid-batch, and the pipeline drains its
//! window on every fault and force-republishes its snapshot before the
//! next plan is dispatched (see [`crate::pipeline`]).
//!
//! This module holds the pieces both engines share: the deduplicated
//! touched-element set, the threshold-crossing predicate, and the final
//! live-state resolution of an undisturbed speculative plan.

use nfv_multicast::{Admission, CapPlan};
use sdn::{Allocation, MulticastRequest, Sdn};
use std::collections::BTreeSet;

/// Deduplicated set of links and servers whose residuals moved since a
/// snapshot was taken.
///
/// Earlier the batch engine kept plain `Vec`s that accumulated one entry
/// per commit per element, so an element shared by many committed trees
/// was re-checked once per tree on every pending request — `O(touched ×
/// pending)` with `touched` counting duplicates. Sets keep the scan
/// proportional to the number of *distinct* disturbed elements.
#[derive(Debug, Clone, Default)]
pub struct TouchedSet {
    /// Links whose residual bandwidth changed.
    pub links: BTreeSet<netgraph::EdgeId>,
    /// Servers whose residual computing changed.
    pub servers: BTreeSet<netgraph::NodeId>,
}

impl TouchedSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        TouchedSet::default()
    }

    /// Number of distinct touched elements (links + servers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len() + self.servers.len()
    }

    /// `true` when nothing was touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.servers.is_empty()
    }

    /// Records every link and server `alloc` loads (a commit) or frees
    /// (a release) — both directions can flip a feasibility bit.
    pub fn absorb(&mut self, alloc: &Allocation) {
        for (e, _) in alloc.links() {
            self.links.insert(e);
        }
        for (v, _) in alloc.servers() {
            self.servers.insert(v);
        }
    }
}

/// Whether any touched element crossed `request`'s feasibility threshold
/// between the snapshot the plan was computed on (read through
/// `then_bandwidth` / `then_computing`) and the live state `now`.
///
/// Both sides are the alive-masked *usable* view the planners see:
/// `then_bandwidth` / `then_computing` must mirror
/// [`Sdn::usable_bandwidth`] / [`Sdn::usable_computing`] on the snapshot
/// (`then_computing` returns `None` for nodes that are not servers), and
/// the live side reads the same accessors on `now`.
pub fn feasibility_disturbed(
    touched: &TouchedSet,
    then_bandwidth: impl Fn(netgraph::EdgeId) -> f64,
    then_computing: impl Fn(netgraph::NodeId) -> Option<f64>,
    now: &Sdn,
    request: &MulticastRequest,
) -> bool {
    let b = request.bandwidth;
    let demand = request.computing_demand();
    let link_flipped = touched.links.iter().any(|&e| {
        let feasible_then = then_bandwidth(e) + sdn::CAPACITY_EPS >= b;
        let feasible_now = now.usable_bandwidth(e) + sdn::CAPACITY_EPS >= b;
        feasible_then != feasible_now
    });
    if link_flipped {
        return true;
    }
    touched.servers.iter().any(|&v| {
        let feasible_then = then_computing(v).is_some_and(|r| r + sdn::CAPACITY_EPS >= demand);
        let feasible_now = now
            .usable_computing(v)
            .is_some_and(|r| r + sdn::CAPACITY_EPS >= demand);
        feasible_then != feasible_now
    })
}

/// Final resolution of an undisturbed speculative plan against the live
/// state: the feasible subgraph is identical, so the planned tree (or the
/// absence of one) is exactly what the sequential loop would compute on
/// the live state — and the decision then hinges on the *accumulated*
/// load check (a tree may traverse one link several times), which must
/// run against the live residuals it is about to be charged to. The
/// snapshot-side verdict of that check is irrelevant and deliberately not
/// part of [`CapPlan`]: only the live verdict matches the sequential
/// decision.
#[must_use]
pub fn validate_speculative(plan: CapPlan, request: &MulticastRequest, now: &Sdn) -> Admission {
    plan.admit(now, request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{EdgeId, NodeId};
    use sdn::RequestId;

    #[test]
    fn absorb_deduplicates_across_allocations() {
        let mut touched = TouchedSet::new();
        let mut a = Allocation::new(RequestId(0));
        a.add_link(EdgeId::new(0), 100.0);
        a.add_link(EdgeId::new(1), 100.0);
        a.add_server(NodeId::new(5), 400.0);
        let mut b = Allocation::new(RequestId(1));
        b.add_link(EdgeId::new(1), 50.0);
        b.add_link(EdgeId::new(2), 50.0);
        b.add_server(NodeId::new(5), 200.0);

        touched.absorb(&a);
        assert_eq!(touched.len(), 3);
        touched.absorb(&b);
        // Link 1 and server 5 are shared: the set holds the union, not
        // one entry per commit.
        assert_eq!(touched.links.len(), 3);
        assert_eq!(touched.servers.len(), 1);
        assert_eq!(touched.len(), 4);
        touched.absorb(&a);
        assert_eq!(touched.len(), 4, "re-absorbing must not grow the set");
    }
}
