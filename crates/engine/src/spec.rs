//! Shared plan/validate/commit helpers for speculative admission.
//!
//! Both the wave-barrier batch engine ([`crate::admit_batch`]) and the
//! streaming pipeline ([`crate::pipeline`]) follow the same contract: a
//! plan computed against an older residual state may be committed iff no
//! commit or release since that state crossed the request's feasibility
//! thresholds — the set of links with residual bandwidth `>= b_k` and
//! servers with residual computing `>= C(SC_k)` (both with the shared
//! [`sdn::CAPACITY_EPS`] slack). The planner's output depends on the
//! residual state only through that feasible subgraph, so an undisturbed
//! plan *is* the tree the sequential loop would have computed.
//!
//! This module holds the pieces both engines share: the deduplicated
//! touched-element set, the threshold-crossing predicate, and the final
//! live-state validation of an undisturbed speculative plan.

use nfv_multicast::Admission;
use sdn::{Allocation, MulticastRequest, Sdn};
use std::collections::BTreeSet;

/// Deduplicated set of links and servers whose residuals moved since a
/// snapshot was taken.
///
/// Earlier the batch engine kept plain `Vec`s that accumulated one entry
/// per commit per element, so an element shared by many committed trees
/// was re-checked once per tree on every pending request — `O(touched ×
/// pending)` with `touched` counting duplicates. Sets keep the scan
/// proportional to the number of *distinct* disturbed elements.
#[derive(Debug, Clone, Default)]
pub struct TouchedSet {
    /// Links whose residual bandwidth changed.
    pub links: BTreeSet<netgraph::EdgeId>,
    /// Servers whose residual computing changed.
    pub servers: BTreeSet<netgraph::NodeId>,
}

impl TouchedSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        TouchedSet::default()
    }

    /// Number of distinct touched elements (links + servers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len() + self.servers.len()
    }

    /// `true` when nothing was touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.servers.is_empty()
    }

    /// Records every link and server `alloc` loads (a commit) or frees
    /// (a release) — both directions can flip a feasibility bit.
    pub fn absorb(&mut self, alloc: &Allocation) {
        for (e, _) in alloc.links() {
            self.links.insert(e);
        }
        for (v, _) in alloc.servers() {
            self.servers.insert(v);
        }
    }
}

/// Whether any touched element crossed `request`'s feasibility threshold
/// between the snapshot the plan was computed on (read through
/// `then_bandwidth` / `then_computing`) and the live state `now`.
///
/// `then_computing` returns `None` for nodes that are not servers —
/// mirroring [`Sdn::residual_computing`] on the snapshot side.
pub fn feasibility_disturbed(
    touched: &TouchedSet,
    then_bandwidth: impl Fn(netgraph::EdgeId) -> f64,
    then_computing: impl Fn(netgraph::NodeId) -> Option<f64>,
    now: &Sdn,
    request: &MulticastRequest,
) -> bool {
    let b = request.bandwidth;
    let demand = request.computing_demand();
    let link_flipped = touched.links.iter().any(|&e| {
        let feasible_then = then_bandwidth(e) + sdn::CAPACITY_EPS >= b;
        let feasible_now = now.residual_bandwidth(e) + sdn::CAPACITY_EPS >= b;
        feasible_then != feasible_now
    });
    if link_flipped {
        return true;
    }
    touched.servers.iter().any(|&v| {
        let feasible_then = then_computing(v).is_some_and(|r| r + sdn::CAPACITY_EPS >= demand);
        let feasible_now = now
            .residual_computing(v)
            .is_some_and(|r| r + sdn::CAPACITY_EPS >= demand);
        feasible_then != feasible_now
    })
}

/// Final validation of an undisturbed speculative plan against the live
/// state: the feasible subgraph is identical, so the tree is the one the
/// sequential loop would have computed, but its *accumulated* load check
/// (a tree may traverse one link several times) must run against the
/// live residuals it is about to be charged to.
#[must_use]
pub fn validate_speculative(plan: Admission, request: &MulticastRequest, now: &Sdn) -> Admission {
    match plan {
        Admission::Admitted(tree) => {
            if now.can_allocate(&tree.allocation(request)) {
                Admission::Admitted(tree)
            } else {
                Admission::Rejected
            }
        }
        Admission::Rejected => Admission::Rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{EdgeId, NodeId};
    use sdn::RequestId;

    #[test]
    fn absorb_deduplicates_across_allocations() {
        let mut touched = TouchedSet::new();
        let mut a = Allocation::new(RequestId(0));
        a.add_link(EdgeId::new(0), 100.0);
        a.add_link(EdgeId::new(1), 100.0);
        a.add_server(NodeId::new(5), 400.0);
        let mut b = Allocation::new(RequestId(1));
        b.add_link(EdgeId::new(1), 50.0);
        b.add_link(EdgeId::new(2), 50.0);
        b.add_server(NodeId::new(5), 200.0);

        touched.absorb(&a);
        assert_eq!(touched.len(), 3);
        touched.absorb(&b);
        // Link 1 and server 5 are shared: the set holds the union, not
        // one entry per commit.
        assert_eq!(touched.links.len(), 3);
        assert_eq!(touched.servers.len(), 1);
        assert_eq!(touched.len(), 4);
        touched.absorb(&a);
        assert_eq!(touched.len(), 4, "re-absorbing must not grow the set");
    }
}
