//! Streaming admission: a continuous plan/commit pipeline over an
//! unbounded arrival/departure stream.
//!
//! [`admit_batch`](crate::admit_batch) processes one closed batch with a
//! hard barrier between every planning wave and its commit phase: workers
//! idle while the committer runs, the committer waits on the slowest
//! planner, and a disturbed suffix is re-planned wholesale by the next
//! wave. [`AdmissionPipeline`] removes the barrier. A bounded window of
//! in-flight requests is planned by worker threads against versioned
//! read-only [`Sdn`] snapshots while the caller's thread — the single
//! **committer** — commits decisions in strict arrival order, so planning
//! for request `n + w` overlaps the commit of request `n`.
//!
//! ## Determinism
//!
//! Each speculative plan is validated with the same feasibility-threshold
//! disturbance check the batch engine uses (see [`crate::spec`]): the
//! committer tracks, per snapshot epoch, the deduplicated set of links
//! and servers that commits and releases touched, and a plan commits
//! speculatively only when none of them crossed the request's feasibility
//! threshold between its snapshot and the live state. Workers ship the
//! *raw* planned tree ([`nfv_multicast::CapPlan`], before the accumulated
//! multi-traversal load check), and the committer resolves that check
//! against the live residuals at commit time — a tree unfit on its
//! snapshot can become fit after departures release capacity, so only
//! the live verdict reproduces the sequential decision. A disturbed (or
//! lost) plan is re-planned inline on the live state — exactly the
//! sequential decision. Decisions, trees, and the final residual state
//! are therefore **byte-identical to the sequential reference**
//! regardless of worker count, window size, or thread scheduling; the
//! property tests in `tests/tests/pipeline_properties.rs` pin this.
//!
//! Pipeline *telemetry* is the deliberate exception: stall counts,
//! snapshot staleness, and commit-queue depth measure scheduling, so they
//! vary run to run. No telemetry `Event`s are recorded from worker
//! threads (events carry logical sequence numbers; only the committer
//! records them), which keeps the event log deterministic.
//!
//! ## Services
//!
//! The committer is an event loop with pluggable services: admission
//! (always on), repair (enable with [`PipelineConfig::with_repair`] —
//! fault events then trigger [`SessionManager::repair`]), and the
//! invariant auditor (debug builds, or `NFV_AUDIT=1`). Fault events drain
//! the window first and force the next snapshot publish past the refresh
//! throttle, so no speculative plan ever straddles a liveness change —
//! neither one in flight when the fault lands, nor one planned afterwards
//! against a stale pre-fault snapshot.

use crate::audit::Auditor;
use crate::repair::{RepairConfig, RepairReport, SessionManager};
use crate::spec::{feasibility_disturbed, validate_speculative, TouchedSet};
use netgraph::{EdgeId, NodeId};
use nfv_multicast::{appro_multi_cap_with_scratch, Admission, ApproScratch, CapPlan};
use nfv_online::TimedRequest;
use sdn::{MulticastRequest, RequestId, Sdn, SdnError};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for [`AdmissionPipeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Maximum servers per request (the paper's `K`).
    pub k: usize,
    /// Planner worker threads. `0` disables speculation entirely: every
    /// request is planned inline at commit time on the live state — the
    /// sequential reference the pipelined modes must reproduce. (Unlike
    /// [`crate::EngineConfig`], `0` does *not* mean "auto": a streaming
    /// daemon's thread budget is an explicit deployment choice.)
    pub workers: usize,
    /// Maximum in-flight speculative plans. Bounds both memory and the
    /// worst-case staleness of a plan's snapshot.
    pub window: usize,
    /// Publish a fresh snapshot once at least this many state mutations
    /// (commits + releases + faults) happened since the last one. `1`
    /// republishes on any staleness, minimizing replans at the cost of
    /// one `Sdn` clone per mutation burst.
    pub refresh: usize,
    /// Repair service: when set, fault events injected via
    /// [`AdmissionPipeline::inject`] run [`SessionManager::repair`] with
    /// this config after applying the fault.
    pub repair: Option<RepairConfig>,
    /// Proactive protection: when set, every admission is followed by
    /// [`SessionManager::protect`], so a later fault can restore the
    /// session with a precomputed backup-tree swap instead of a replan.
    pub resilience: Option<crate::resilience::ResilienceConfig>,
}

impl PipelineConfig {
    /// A config with `k` servers, no planner threads (inline reference
    /// mode), a window of 8, and per-mutation snapshot refresh.
    #[must_use]
    pub fn new(k: usize) -> Self {
        PipelineConfig {
            k,
            workers: 0,
            window: 8,
            refresh: 1,
            repair: None,
            resilience: None,
        }
    }

    /// Sets the planner worker count (`0` = inline reference mode).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the in-flight window bound (clamped to at least 1).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the snapshot refresh threshold (clamped to at least 1).
    #[must_use]
    pub fn with_refresh(mut self, refresh: usize) -> Self {
        self.refresh = refresh.max(1);
        self
    }

    /// Enables the repair service.
    #[must_use]
    pub fn with_repair(mut self, repair: RepairConfig) -> Self {
        self.repair = Some(repair);
        self
    }

    /// Enables proactive backup-tree protection.
    #[must_use]
    pub fn with_resilience(mut self, resilience: crate::resilience::ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }
}

/// A liveness event injected into the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A link goes down.
    FailLink(EdgeId),
    /// A failed link comes back.
    RecoverLink(EdgeId),
    /// A server (its computing capacity) goes down.
    FailServer(NodeId),
    /// A failed server comes back.
    RecoverServer(NodeId),
}

/// One element of a mixed arrival/fault stream, for
/// [`run_stream`]-style drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A timed request arrival (its departure is implied by
    /// [`TimedRequest::duration`]).
    Arrival(TimedRequest),
    /// A link/server failure or recovery.
    Fault(FaultEvent),
}

/// Statistics from one pipeline run.
///
/// `admitted`, `rejected`, `replanned` + `speculative_hits`, and
/// `departed` are deterministic for a given stream and config family —
/// any worker count ≥ 1 yields the same decisions. `stalls`,
/// `snapshots_published`, and `disturbance_checks` measure *scheduling*
/// and may vary run to run; they are reported for observability, never
/// gated on byte-equality.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Commits taken straight from a speculative plan.
    pub speculative_hits: usize,
    /// Plans invalidated by a feasibility-threshold crossing and
    /// re-planned inline by the committer.
    pub replanned: usize,
    /// Sessions released because their departure time passed.
    pub departed: usize,
    /// Read-only snapshots published for the planner pool.
    pub snapshots_published: u64,
    /// Times the committer blocked waiting for the head-of-line plan.
    pub stalls: u64,
    /// Distinct touched elements scanned by disturbance checks.
    pub disturbance_checks: usize,
}

/// Everything a finished pipeline hands back.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The network with every decision applied.
    pub sdn: Sdn,
    /// Decisions in strict arrival order.
    pub decisions: Vec<Admission>,
    /// Run statistics.
    pub report: PipelineReport,
    /// The session store (live sessions, pending repairs, guards).
    pub sessions: SessionManager,
}

/// A planning job shipped to the worker pool.
struct PlanJob {
    seq: u64,
    request: MulticastRequest,
    snapshot: Arc<Sdn>,
}

/// A worker's answer. `plan: None` means the planner panicked; the
/// committer re-plans inline, reproducing the panic deterministically on
/// its own thread.
struct PlanResult {
    seq: u64,
    plan: Option<CapPlan>,
}

/// An arrival whose speculative plan is still outstanding.
struct InFlight {
    seq: u64,
    timed: TimedRequest,
    epoch: u64,
    snapshot: Arc<Sdn>,
}

/// How the decision for one arrival is obtained at commit time.
enum Speculation {
    /// No worker pool: plan inline (the sequential reference).
    Inline,
    /// The worker panicked; plan inline to surface it deterministically.
    Lost,
    /// A speculative plan from snapshot `epoch` — the raw planned tree,
    /// its accumulated-load check still pending against the live state.
    Plan {
        plan: CapPlan,
        epoch: u64,
        snapshot: Arc<Sdn>,
    },
}

/// The streaming admission daemon. See the [module docs](self).
///
/// The caller's thread is the committer: [`AdmissionPipeline::push`]
/// dispatches the arrival to the worker pool and, when the window is
/// full, commits the head-of-line decision before returning. Feed
/// arrivals in nondecreasing arrival-time order (generators and
/// `run_dynamic` both produce sorted streams).
pub struct AdmissionPipeline {
    cfg: PipelineConfig,
    sdn: Sdn,
    sessions: SessionManager,
    /// Scheduled departure time per admitted session.
    deadlines: BTreeMap<RequestId, f64>,
    window: VecDeque<InFlight>,
    /// Out-of-order worker results parked until their turn.
    reorder: BTreeMap<u64, Option<CapPlan>>,
    /// Per-epoch deduplicated sets of elements commits/releases touched
    /// while that epoch's snapshot was current.
    deltas: BTreeMap<u64, TouchedSet>,
    snapshot: Arc<Sdn>,
    epoch: u64,
    mutations_since_publish: usize,
    next_seq: u64,
    /// Whether any state-changing fault was ever injected. Without a
    /// repair service, sessions may then legitimately straddle dead
    /// elements, so the tree-health audit stands down.
    faulted: bool,
    last_arrival: f64,
    decisions: Vec<Admission>,
    report: PipelineReport,
    scratch: ApproScratch,
    auditor: Auditor,
    jobs: Option<mpsc::Sender<PlanJob>>,
    results: mpsc::Receiver<PlanResult>,
    handles: Vec<JoinHandle<()>>,
}

impl AdmissionPipeline {
    /// Starts the daemon: spawns `config.workers` planner threads (none
    /// for `workers == 0`) and publishes the initial snapshot.
    #[must_use]
    pub fn launch(sdn: Sdn, config: PipelineConfig) -> Self {
        let config = PipelineConfig {
            window: config.window.max(1),
            refresh: config.refresh.max(1),
            ..config
        };
        let snapshot = Arc::new(sdn.clone());
        let (job_tx, job_rx) = mpsc::channel::<PlanJob>();
        let (result_tx, result_rx) = mpsc::channel::<PlanResult>();
        let mut handles = Vec::with_capacity(config.workers);
        let jobs = if config.workers == 0 {
            None
        } else {
            let shared = Arc::new(Mutex::new(job_rx));
            for _ in 0..config.workers {
                let rx = Arc::clone(&shared);
                let tx = result_tx.clone();
                let k = config.k;
                handles.push(std::thread::spawn(move || worker_loop(&rx, &tx, k)));
            }
            Some(job_tx)
        };
        let mut deltas = BTreeMap::new();
        deltas.insert(0u64, TouchedSet::new());
        let mut report = PipelineReport::default();
        if jobs.is_some() {
            report.snapshots_published = 1;
            telemetry::hit(telemetry::Counter::PipelineSnapshots);
        }
        AdmissionPipeline {
            cfg: config,
            sdn,
            sessions: config
                .resilience
                .map_or_else(SessionManager::new, SessionManager::with_resilience),
            deadlines: BTreeMap::new(),
            window: VecDeque::new(),
            reorder: BTreeMap::new(),
            deltas,
            snapshot,
            epoch: 0,
            mutations_since_publish: 0,
            next_seq: 0,
            faulted: false,
            last_arrival: f64::NEG_INFINITY,
            decisions: Vec::new(),
            report,
            scratch: ApproScratch::new(),
            auditor: Auditor::from_env(),
            jobs,
            results: result_rx,
            handles,
        }
    }

    /// Offers one timed arrival to the daemon. Departures are implicit:
    /// every session admitted at time `t` with duration `d` is released
    /// by the first commit at time `>= t + d` (the same lazy-release
    /// semantics as `nfv_online::run_dynamic`).
    ///
    /// # Panics
    ///
    /// Panics if `timed` arrives earlier than a previously pushed
    /// arrival — the stream must be sorted, as every generator produces.
    // lint:entry(committer)
    pub fn push(&mut self, timed: TimedRequest) {
        assert!(
            timed.arrival >= self.last_arrival,
            "arrivals must be fed in nondecreasing time order"
        );
        self.last_arrival = timed.arrival;
        if self.jobs.is_none() {
            self.commit_decision(timed, Speculation::Inline);
            return;
        }
        if self.window.len() >= self.cfg.window {
            self.commit_head();
        }
        self.maybe_publish();
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(jobs) = &self.jobs {
            jobs.send(PlanJob {
                seq,
                request: timed.request.clone(),
                snapshot: Arc::clone(&self.snapshot),
            })
            .expect("planner workers outlive the job channel"); // lint:allow(P1): workers only exit when finish() closes the channel
        }
        self.window.push_back(InFlight {
            seq,
            timed,
            epoch: self.epoch,
            snapshot: Arc::clone(&self.snapshot),
        });
        telemetry::gauge_set(telemetry::Gauge::PipelineDepth, self.window.len() as u64);
    }

    /// Injects a liveness event. The window is drained first (no
    /// speculative plan may straddle a liveness change), the fault is
    /// applied to the live network, and — when the repair service is
    /// configured — broken sessions are released and replanned. Any
    /// state-changing fault or non-quiet repair forces the next
    /// [`push`](Self::push) to publish a fresh snapshot regardless of
    /// [`PipelineConfig::refresh`], so no plan is ever computed against
    /// pre-fault liveness.
    ///
    /// Returns what the repair service did (quiet when no repair service
    /// is configured).
    ///
    /// # Errors
    ///
    /// Propagates [`Sdn`] errors for unknown links/servers; the stream
    /// state is unchanged in that case (beyond the drain).
    // lint:entry(committer)
    pub fn inject(&mut self, fault: FaultEvent) -> Result<RepairReport, SdnError> {
        self.drain();
        let changed = match fault {
            FaultEvent::FailLink(e) => self.sdn.fail_link(e)?,
            FaultEvent::RecoverLink(e) => self.sdn.recover_link(e)?,
            FaultEvent::FailServer(v) => self.sdn.fail_server(v)?,
            FaultEvent::RecoverServer(v) => self.sdn.recover_server(v)?,
        };
        if changed {
            // A liveness flip is invisible to the touched-set disturbance
            // check (it tracks residual movement only), so the stale
            // snapshot must never serve another plan: force the next push
            // to republish regardless of the refresh throttle.
            self.mutations_since_publish = self.cfg.refresh;
            self.faulted = true;
        }
        let report = if let Some(repair) = self.cfg.repair {
            let r = self
                .sessions
                .repair(&mut self.sdn, &repair, &mut self.scratch);
            if !r.is_quiet() {
                // Repair rewrites whole allocations outside the delta
                // bookkeeping; republish before the next plan as well.
                self.mutations_since_publish = self.cfg.refresh;
            }
            // Sessions the repair service dropped keep their scheduled
            // deadline; when it fires, the departure is a guarded no-op.
            self.check_invariants();
            r
        } else {
            // Without a repair service, sessions may legitimately straddle
            // dead elements until they depart; check_invariants stands
            // down once `faulted` is set, so no audit runs here either.
            RepairReport::default()
        };
        Ok(report)
    }

    /// Commits every in-flight decision. The pipeline stays usable.
    pub fn drain(&mut self) {
        while !self.window.is_empty() {
            self.commit_head();
        }
    }

    /// Drains the window, stops the worker pool, and hands back the final
    /// network, the decision log, and the session store. No decision is
    /// lost or duplicated: exactly one decision per pushed arrival, in
    /// arrival order.
    #[must_use]
    // lint:entry(committer)
    pub fn finish(mut self) -> PipelineOutcome {
        self.drain();
        self.jobs = None; // close the channel; workers drain and exit
        for h in std::mem::take(&mut self.handles) {
            // A worker that panicked already surfaced its panic via the
            // inline replan of its lost plan; the join result is moot.
            drop(h.join());
        }
        PipelineOutcome {
            sdn: self.sdn,
            decisions: self.decisions,
            report: self.report,
            sessions: self.sessions,
        }
    }

    /// Number of in-flight speculative plans.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.window.len()
    }

    /// Running statistics (final totals come from [`finish`](Self::finish)).
    #[must_use]
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    fn maybe_publish(&mut self) {
        if self.snapshot.version() == self.sdn.version()
            || self.mutations_since_publish < self.cfg.refresh
        {
            return;
        }
        self.snapshot = Arc::new(self.sdn.clone());
        self.epoch += 1;
        self.deltas.insert(self.epoch, TouchedSet::new());
        self.mutations_since_publish = 0;
        self.report.snapshots_published += 1;
        telemetry::hit(telemetry::Counter::PipelineSnapshots);
    }

    // lint:entry(committer)
    fn commit_head(&mut self) {
        let Some(head) = self.window.pop_front() else {
            return;
        };
        let plan = self.await_plan(head.seq);
        telemetry::observe(telemetry::Hist::CommitQueueWait, self.reorder.len() as u64);
        telemetry::observe(telemetry::Hist::SnapshotStaleness, self.epoch - head.epoch);
        let spec = match plan {
            Some(plan) => Speculation::Plan {
                plan,
                epoch: head.epoch,
                snapshot: head.snapshot,
            },
            None => Speculation::Lost,
        };
        self.commit_decision(head.timed, spec);
        // Deltas below the oldest in-flight epoch can never be referenced
        // again.
        let min_epoch = self.window.front().map_or(self.epoch, |f| f.epoch);
        self.deltas = self.deltas.split_off(&min_epoch);
        telemetry::gauge_set(telemetry::Gauge::PipelineDepth, self.window.len() as u64);
    }

    /// Blocks until the plan for `seq` is available, parking other
    /// workers' results in the reorder buffer.
    fn await_plan(&mut self, seq: u64) -> Option<CapPlan> {
        let mut stalled = false;
        loop {
            if let Some(plan) = self.reorder.remove(&seq) {
                return plan;
            }
            match self.results.try_recv() {
                Ok(r) => {
                    self.reorder.insert(r.seq, r.plan);
                }
                Err(mpsc::TryRecvError::Empty) => {
                    if !stalled {
                        stalled = true;
                        self.report.stalls += 1;
                        telemetry::hit(telemetry::Counter::PipelineStalls);
                    }
                    let r = self
                        .results
                        .recv()
                        .expect("planner workers outlive their jobs"); // lint:allow(P1): workers send one result per job before exiting
                    self.reorder.insert(r.seq, r.plan);
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Workers exit only after the job channel closes in
                    // finish(), which drains the window first.
                    // lint:allow(P1): guarded by finish()'s drain-before-close ordering
                    unreachable!("planner pool disconnected with plans in flight")
                }
            }
        }
    }

    fn commit_decision(&mut self, timed: TimedRequest, spec: Speculation) {
        let now = timed.arrival;
        self.release_due(now);
        let req = &timed.request;
        let decision = match spec {
            Speculation::Plan {
                plan,
                epoch,
                snapshot,
            } if !self.disturbed_since(epoch, &snapshot, req) => {
                self.report.speculative_hits += 1;
                telemetry::hit(telemetry::Counter::EngineSpeculativeCommits);
                validate_speculative(plan, req, &self.sdn)
            }
            Speculation::Plan { .. } | Speculation::Lost => {
                self.report.replanned += 1;
                telemetry::hit(telemetry::Counter::EngineReplans);
                appro_multi_cap_with_scratch(&self.sdn, req, self.cfg.k, &mut self.scratch)
            }
            Speculation::Inline => {
                appro_multi_cap_with_scratch(&self.sdn, req, self.cfg.k, &mut self.scratch)
            }
        };

        if let Admission::Admitted(tree) = &decision {
            let alloc = tree.allocation(req);
            self.sessions
                .commit(&mut self.sdn, req.clone(), tree.clone())
                .expect("admitted tree fits residual capacities"); // lint:allow(P1): the tree was planned or validated on this exact residual state
            self.touch(&alloc);
            self.deadlines.insert(req.id, now + timed.duration);
            self.report.admitted += 1;
            self.mutations_since_publish += 1;
            if self.cfg.resilience.is_some() {
                // Protect at admission time. Reserved-policy reservations
                // move live residuals, so they enter the epoch delta like
                // any other commit.
                let charged = self
                    .sessions
                    .protect(&mut self.sdn, req.id, &mut self.scratch);
                for reservation in &charged {
                    self.touch(reservation);
                    self.mutations_since_publish += 1;
                }
            }
        } else {
            self.report.rejected += 1;
        }
        self.decisions.push(decision);
        self.check_invariants();
    }

    /// Releases every session whose departure time passed, in ascending
    /// id order — the same semantics as `ActiveSessions::release_due`.
    // lint:entry(committer)
    fn release_due(&mut self, now: f64) {
        let due: Vec<RequestId> = self
            .deadlines
            .iter()
            .filter(|(_, &dep)| dep <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.deadlines.remove(&id);
            let alloc = self.sessions.session(id).map(|s| s.allocation.clone());
            // The departure also hands back any reserved backup capacity;
            // snapshot those allocations before they are discarded.
            let reservations = self.sessions.reserved_backup_allocations(id);
            let outcome = self
                .sessions
                .depart(&mut self.sdn, id)
                .expect("a tracked session releases cleanly"); // lint:allow(P1): the allocation was applied at commit, so release balances
            if outcome == crate::repair::Departure::Released {
                if let Some(alloc) = alloc {
                    self.touch(&alloc);
                }
                for reservation in &reservations {
                    self.touch(reservation);
                    self.mutations_since_publish += 1;
                }
                self.report.departed += 1;
                self.mutations_since_publish += 1;
            }
            // Cancelled/Unknown: the session was torn down earlier (e.g.
            // by the repair service); nothing was released now.
        }
    }

    /// Records elements whose residuals just moved into the current
    /// epoch's delta (no-op in inline mode, which keeps no deltas).
    fn touch(&mut self, alloc: &sdn::Allocation) {
        if self.jobs.is_none() {
            return;
        }
        if let Some(delta) = self.deltas.get_mut(&self.epoch) {
            delta.absorb(alloc);
        }
    }

    /// Whether any element touched since snapshot `epoch` crossed `req`'s
    /// feasibility threshold between that snapshot and the live state.
    fn disturbed_since(&mut self, epoch: u64, snapshot: &Sdn, req: &MulticastRequest) -> bool {
        let mut scanned = 0usize;
        let disturbed = self.deltas.range(epoch..).any(|(_, delta)| {
            if delta.is_empty() {
                return false;
            }
            scanned += delta.len();
            feasibility_disturbed(
                delta,
                |e| snapshot.usable_bandwidth(e),
                |v| snapshot.usable_computing(v),
                &self.sdn,
                req,
            )
        });
        self.report.disturbance_checks += scanned;
        disturbed
    }

    fn check_invariants(&self) {
        // The tree-health audit flags sessions on dead elements; without
        // a repair service that is a legitimate post-fault state, not an
        // engine bug, so auditing stops at the first fault.
        if self.cfg.repair.is_none() && self.faulted {
            return;
        }
        if self.auditor.is_enabled() {
            if let Err(e) = self.auditor.check(&self.sdn, &self.sessions) {
                panic!("pipeline invariant violated: {e}"); // lint:allow(P1): an audit failure is an engine bug, never workload-dependent
            }
        }
    }
}

/// Worker thread body: pull a job, plan it against the job's snapshot,
/// send the result. One persistent [`PathCache`](nfv_multicast::PathCache)
/// per worker carries shortest-path trees across requests *and*
/// snapshots — the fingerprint re-syncs whenever the snapshot version
/// moves, and the topology never changes under a running pipeline.
// lint:entry(worker)
fn worker_loop(
    jobs: &Mutex<mpsc::Receiver<PlanJob>>,
    results: &mpsc::Sender<PlanResult>,
    k: usize,
) {
    let mut cache: Option<nfv_multicast::PathCache> = None;
    loop {
        let job = {
            let Ok(guard) = jobs.lock() else {
                return; // a sibling worker panicked while holding the lock
            };
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed: shutdown
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cache = cache.get_or_insert_with(|| nfv_multicast::PathCache::new(&job.snapshot));
            nfv_multicast::appro_multi_cap_plan_cached(&job.snapshot, &job.request, k, cache)
        }));
        let plan = match outcome {
            Ok(plan) => Some(plan),
            Err(_) => {
                // The cache may be mid-update: rebuild before the next job.
                cache = None;
                None
            }
        };
        if results.send(PlanResult { seq: job.seq, plan }).is_err() {
            return; // committer gone: shutdown
        }
    }
}

/// Convenience driver: launches a pipeline, feeds `events` in order, and
/// finishes it.
///
/// # Errors
///
/// Propagates [`AdmissionPipeline::inject`] errors for unknown
/// links/servers in fault events.
pub fn run_stream<I>(
    sdn: Sdn,
    events: I,
    config: PipelineConfig,
) -> Result<PipelineOutcome, SdnError>
where
    I: IntoIterator<Item = StreamEvent>,
{
    let mut pipeline = AdmissionPipeline::launch(sdn, config);
    for event in events {
        match event {
            StreamEvent::Arrival(timed) => pipeline.push(timed),
            StreamEvent::Fault(fault) => {
                pipeline.inject(fault)?;
            }
        }
    }
    Ok(pipeline.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::admit_sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdn::{NfvType, SdnBuilder, ServiceChain};
    use workload::{OpenLoopWorkload, RequestGenerator};

    fn ring_sdn(n: usize) -> Sdn {
        let mut bld = SdnBuilder::new();
        let nodes: Vec<_> = (0..n).map(|_| bld.add_switch()).collect();
        for i in 0..n {
            bld.add_link(nodes[i], nodes[(i + 1) % n], 600.0, 1.0)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            bld.attach_server(nodes[i], 2_000.0, 1.0).unwrap();
        }
        bld.build().unwrap()
    }

    fn stream(n_nodes: usize, count: usize, seed: u64, mean_holding: f64) -> Vec<TimedRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = RequestGenerator::new(n_nodes);
        OpenLoopWorkload::new(1.0, mean_holding)
            .generate(&mut gen, count, &mut rng)
            .into_iter()
            .map(|(req, arrival, duration)| TimedRequest::new(req, arrival, duration))
            .collect()
    }

    #[test]
    fn inline_mode_without_departures_matches_admit_sequential() {
        let requests = stream(16, 30, 1, f64::INFINITY);
        let plain: Vec<MulticastRequest> = requests.iter().map(|t| t.request.clone()).collect();
        let mut seq_net = ring_sdn(16);
        let pipe_net = seq_net.clone();
        let seq = admit_sequential(&mut seq_net, &plain, 2);

        let mut pipeline = AdmissionPipeline::launch(pipe_net, PipelineConfig::new(2));
        for tr in requests {
            pipeline.push(tr);
        }
        let out = pipeline.finish();
        assert_eq!(out.decisions, seq);
        assert_eq!(out.sdn, seq_net);
        assert_eq!(out.report.admitted + out.report.rejected, seq.len());
        assert_eq!(out.report.speculative_hits, 0);
        assert_eq!(out.report.departed, 0);
    }

    #[test]
    fn pipelined_matches_inline_with_departures() {
        for workers in [1, 2, 3] {
            let events = stream(24, 50, 7, 12.0);
            let net = ring_sdn(24);
            let reference = {
                let mut p = AdmissionPipeline::launch(net.clone(), PipelineConfig::new(2));
                for tr in events.clone() {
                    p.push(tr);
                }
                p.finish()
            };
            let mut p = AdmissionPipeline::launch(
                net,
                PipelineConfig::new(2).with_workers(workers).with_window(6),
            );
            for tr in events {
                p.push(tr);
            }
            let out = p.finish();
            assert_eq!(out.decisions, reference.decisions, "workers = {workers}");
            assert_eq!(out.sdn, reference.sdn, "workers = {workers}");
            assert_eq!(out.report.departed, reference.report.departed);
            assert!(out.report.departed > 0, "workload must exercise departures");
        }
    }

    #[test]
    fn fault_events_drain_the_window_and_trigger_repair() {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let m1 = bld.add_server(4_000.0, 1.0);
        let m2 = bld.add_server(4_000.0, 1.0);
        let d = bld.add_switch();
        let e0 = bld.add_link(s, m1, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(m1, d, 1_000.0, 1.0).unwrap();
        let _ = bld.add_link(s, m2, 1_000.0, 3.0).unwrap();
        let _ = bld.add_link(m2, d, 1_000.0, 3.0).unwrap();
        let net = bld.build().unwrap();
        let chain = ServiceChain::new(vec![NfvType::Firewall]);
        let req = MulticastRequest::new(RequestId(0), s, vec![d], 100.0, chain);

        let cfg = PipelineConfig::new(1)
            .with_workers(2)
            .with_repair(RepairConfig::new(1));
        let mut p = AdmissionPipeline::launch(net, cfg);
        p.push(TimedRequest::new(req, 0.0, 1e9));
        assert_eq!(p.depth(), 1);
        // The session routes via the cheap path through m1. Killing e1
        // drains the window (committing the admission) and reroutes the
        // session through m2.
        let report = p.inject(FaultEvent::FailLink(e1)).unwrap();
        assert_eq!(p.depth(), 0);
        assert_eq!(report.broken, vec![RequestId(0)]);
        assert_eq!(report.repaired, vec![RequestId(0)]);
        let out = p.finish();
        assert_eq!(
            out.sessions
                .session(RequestId(0))
                .unwrap()
                .tree
                .servers_used(),
            vec![m2]
        );
        assert_eq!(out.report.admitted, 1);
        // The original cheap-path links are free again.
        assert_eq!(
            out.sdn.residual_bandwidth(e0),
            out.sdn.bandwidth_capacity(e0)
        );
    }

    #[test]
    fn run_stream_mixes_arrivals_and_faults() {
        let net = ring_sdn(16);
        let arrivals = stream(16, 10, 3, f64::INFINITY);
        let some_link = net.graph().edges().next().unwrap().id;
        let mut events: Vec<StreamEvent> = arrivals.into_iter().map(StreamEvent::Arrival).collect();
        events.insert(5, StreamEvent::Fault(FaultEvent::FailLink(some_link)));
        events.push(StreamEvent::Fault(FaultEvent::RecoverLink(some_link)));
        let cfg = PipelineConfig::new(2)
            .with_workers(2)
            .with_repair(RepairConfig::new(2));
        let out = run_stream(net, events, cfg).unwrap();
        assert_eq!(out.decisions.len(), 10);
    }

    #[test]
    fn resilient_pipeline_fails_over_without_a_plan_event() {
        use crate::resilience::{BackupPolicy, ResilienceConfig};
        for policy in [BackupPolicy::BestEffort, BackupPolicy::Reserved] {
            let mut bld = SdnBuilder::new();
            let s = bld.add_switch();
            let m1 = bld.add_server(4_000.0, 1.0);
            let m2 = bld.add_server(4_000.0, 1.0);
            let d = bld.add_switch();
            let _ = bld.add_link(s, m1, 1_000.0, 1.0).unwrap();
            let e1 = bld.add_link(m1, d, 1_000.0, 1.0).unwrap();
            let _ = bld.add_link(s, m2, 1_000.0, 3.0).unwrap();
            let _ = bld.add_link(m2, d, 1_000.0, 3.0).unwrap();
            let net = bld.build().unwrap();
            let chain = ServiceChain::new(vec![NfvType::Firewall]);
            let req = MulticastRequest::new(RequestId(0), s, vec![d], 100.0, chain);

            let cfg = PipelineConfig::new(1)
                .with_workers(2)
                .with_repair(RepairConfig::new(1))
                .with_resilience(ResilienceConfig::new(1).with_policy(policy).with_top_f(2));
            let mut p = AdmissionPipeline::launch(net, cfg);
            p.push(TimedRequest::new(req, 0.0, 1e9));
            // The protected session fails over with zero planner work.
            let report = p.inject(FaultEvent::FailLink(e1)).unwrap();
            assert_eq!(report.swapped, vec![RequestId(0)], "{policy:?}");
            assert!(report.repaired.is_empty());
            assert_eq!(report.plan_events, 0, "{policy:?}");
            let out = p.finish();
            assert_eq!(
                out.sessions
                    .session(RequestId(0))
                    .unwrap()
                    .tree
                    .servers_used(),
                vec![m2]
            );
        }
    }

    #[test]
    #[should_panic(expected = "nondecreasing time order")]
    fn out_of_order_arrivals_panic() {
        let requests = stream(8, 2, 5, f64::INFINITY);
        let mut p = AdmissionPipeline::launch(ring_sdn(8), PipelineConfig::new(1));
        p.push(requests[1].clone());
        p.push(requests[0].clone());
    }
}
