//! Proactive fault tolerance: precomputed backup trees and live
//! join/leave grafting for committed sessions.
//!
//! Reactive repair ([`SessionManager::repair`]) replans a broken session
//! from scratch — correct, but the planner invocation *is* the failover
//! latency. SDN-ResilientMulticast-style protection moves that work to
//! admission time: [`SessionManager::protect`] precomputes, for each of
//! the top-F most-loaded links of a session's tree, an alternate
//! pseudo-multicast tree on the link-excluded alive subgraph
//! ([`nfv_multicast::appro_multi_cap_plan_excluding`]). When a failure
//! breaks the session, `repair` swaps to the first precomputed tree that
//! avoids every dead element and still fits — an O(commit) restore with
//! zero planner invocations — and only falls back to the reactive replan
//! queue when no backup covers the failure.
//!
//! Two capacity disciplines ([`BackupPolicy`]):
//!
//! * **`Reserved`** — the backup's allocation is charged to the ledger at
//!   protect time, so the swap can never fail a capacity check. The
//!   standing cost is the reserved bandwidth (tracked by the
//!   `reserved_backup_bandwidth` gauge) crowding out admissions.
//! * **`BestEffort`** — the backup is planned on a *post-release view*
//!   (the session's own allocation removed), i.e. exactly the state a
//!   reactive replan would see if the network is otherwise unchanged, and
//!   holds no capacity. The swap re-checks fit at failover time and may
//!   miss if later admissions consumed the slack. When nothing else
//!   changed between protect and failure, the swapped tree is
//!   byte-identical to what `FullReroute` would have replanned — the
//!   property `tests/tests/resilience_properties.rs` pins.
//!
//! **Dynamic membership**: [`SessionManager::graft`] attaches a new
//! destination via its cheapest alive path from the existing tree
//! ([`steiner::join`] — one Dijkstra, not a re-solve), and
//! [`SessionManager::prune`] detaches one by leaf-pruning the
//! distribution structure with exact residual release. Both accumulate
//! *drift* — the cost added/removed relative to the session's last full
//! plan — and once drift exceeds [`ResilienceConfig::drift_bound`] times
//! the current tree cost, the session is transparently re-optimized with
//! a fresh `Appro_Multi_Cap` plan (keeping the drifted tree if the fresh
//! plan no longer fits the fragmented residual).
//!
//! Every path keeps the [`crate::audit`] invariants green: reserved
//! backup capacity is part of the auditor's expected load, grafts/prunes
//! rewrite the ledger release-then-allocate on allocations that fit by
//! construction, and all iteration is BTree-ordered so decisions are
//! byte-reproducible.

use crate::repair::SessionManager;
use netgraph::{EdgeId, Graph, NodeId};
use nfv_multicast::{
    appro_multi_cap_plan_excluding, appro_multi_cap_with_scratch, Admission, ApproScratch, CapPlan,
    PseudoMulticastTree,
};
use sdn::{Allocation, MulticastRequest, RequestId, Sdn};
use std::collections::BTreeSet;

/// Capacity discipline for precomputed backup trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackupPolicy {
    /// Backup allocations are charged to the ledger at protect time; the
    /// swap never fails a capacity check, at the cost of standing
    /// reserved bandwidth.
    Reserved,
    /// Backups are planned on the session's post-release view and hold no
    /// capacity; the swap re-checks fit at failover time.
    #[default]
    BestEffort,
}

/// Tuning knobs for proactive protection and dynamic membership.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Capacity discipline for backup trees.
    pub policy: BackupPolicy,
    /// Protect the top-F most-loaded links of each session's tree
    /// (ties broken by ascending link id). `0` disables backups while
    /// keeping drift tracking.
    pub top_f: usize,
    /// Re-optimize a session once its accumulated graft/prune drift
    /// exceeds this fraction of its current tree cost. `<= 0` disables
    /// re-optimization.
    pub drift_bound: f64,
    /// Server budget `K` for backup and re-optimization planning.
    pub k: usize,
}

impl ResilienceConfig {
    /// Best-effort protection of the single most-loaded link, with
    /// re-optimization at 30% drift.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one server is required (K >= 1)");
        ResilienceConfig {
            policy: BackupPolicy::BestEffort,
            top_f: 1,
            drift_bound: 0.3,
            k,
        }
    }

    /// Sets the backup capacity discipline.
    #[must_use]
    pub fn with_policy(mut self, policy: BackupPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how many of the most-loaded links to protect per session.
    #[must_use]
    pub fn with_top_f(mut self, top_f: usize) -> Self {
        self.top_f = top_f;
        self
    }

    /// Sets the drift fraction that triggers re-optimization.
    #[must_use]
    pub fn with_drift_bound(mut self, drift_bound: f64) -> Self {
        self.drift_bound = drift_bound;
        self
    }
}

/// A precomputed alternate tree protecting one link of a session's
/// primary tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupTree {
    /// The primary-tree link whose failure this backup covers (the
    /// backup's plan excluded it).
    pub protected: EdgeId,
    /// The alternate pseudo-multicast tree.
    pub tree: PseudoMulticastTree,
    /// The allocation the swap will charge (precomputed once).
    pub allocation: Allocation,
    /// Whether `allocation` is currently charged to the ledger
    /// ([`BackupPolicy::Reserved`]).
    pub reserved: bool,
}

/// Outcome of [`SessionManager::graft`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraftOutcome {
    /// The destination was attached.
    Grafted {
        /// Bandwidth cost added to the session's tree (0 when the new
        /// destination was already covered by the existing structure).
        attach_cost: f64,
        /// Distribution edges added.
        attach_edges: usize,
    },
    /// The node already receives the session (source or existing
    /// destination); nothing changed.
    AlreadyMember,
    /// No alive path with enough residual bandwidth connects the node to
    /// the session's tree; nothing changed.
    Unreachable,
    /// The session id is not committed; nothing changed.
    UnknownSession,
}

/// Outcome of [`SessionManager::prune`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneOutcome {
    /// The destination was detached and its exclusive tree segments
    /// released.
    Pruned {
        /// Bandwidth cost released back to the network.
        released_cost: f64,
        /// Distribution-edge instances removed.
        removed_edges: usize,
    },
    /// The node is not a destination of the session; nothing changed.
    NotAMember,
    /// The node is the session's last destination — depart the session
    /// instead of pruning it empty; nothing changed.
    LastDestination,
    /// The session id is not committed; nothing changed.
    UnknownSession,
}

impl SessionManager {
    /// A manager with proactive protection and dynamic membership
    /// enabled under `config`.
    #[must_use]
    pub fn with_resilience(config: ResilienceConfig) -> Self {
        let mut mgr = SessionManager::default();
        mgr.resilience = Some(config);
        mgr
    }

    /// The resilience configuration, when enabled.
    #[must_use]
    pub fn resilience(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref()
    }

    /// The precomputed backup trees currently held for `id`, in ascending
    /// protected-link order (the failover preference order).
    #[must_use]
    pub fn session_backups(&self, id: RequestId) -> &[BackupTree] {
        self.backups.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Every reserved backup allocation currently charged to the ledger,
    /// in ascending (session, protected-link) order. The auditor folds
    /// these into its expected load.
    pub fn backup_reservations(&self) -> impl Iterator<Item = &Allocation> {
        self.backups
            .values()
            .flatten()
            .filter(|b| b.reserved)
            .map(|b| &b.allocation)
    }

    /// The reserved backup allocations currently charged for `id`
    /// (empty under [`BackupPolicy::BestEffort`]). Streaming callers
    /// snapshot these before a departure to account for the capacity the
    /// departure hands back.
    #[must_use]
    pub fn reserved_backup_allocations(&self, id: RequestId) -> Vec<Allocation> {
        self.session_backups(id)
            .iter()
            .filter(|b| b.reserved)
            .map(|b| b.allocation.clone())
            .collect()
    }

    /// Total bandwidth currently held by reserved backup trees — the
    /// standing capacity overhead of proactive protection.
    #[must_use]
    pub fn reserved_backup_bandwidth(&self) -> f64 {
        self.backup_reservations()
            .map(Allocation::total_bandwidth)
            .sum()
    }

    /// The accumulated graft/prune drift of session `id` (0 when never
    /// grafted or freshly re-planned).
    #[must_use]
    pub fn session_drift(&self, id: RequestId) -> f64 {
        self.drift.get(&id).copied().unwrap_or(0.0)
    }

    /// Precomputes backup trees for the committed session `id`: one per
    /// top-F most-loaded link of its tree (load ties broken by ascending
    /// link id), each planned on the link-excluded alive subgraph. Under
    /// [`BackupPolicy::Reserved`] each backup's allocation is charged to
    /// the ledger immediately; the newly charged reservations are
    /// returned so streaming callers can fold them into their disturbance
    /// bookkeeping. Existing backups for `id` are discarded first.
    ///
    /// A no-op (returning no reservations) when resilience is disabled,
    /// `top_f` is 0, or `id` is not committed. Links for which no
    /// feasible alternate tree exists simply get no backup.
    pub fn protect(
        &mut self,
        sdn: &mut Sdn,
        id: RequestId,
        scratch: &mut ApproScratch,
    ) -> Vec<Allocation> {
        let Some(cfg) = self.resilience else {
            return Vec::new();
        };
        if cfg.top_f == 0 {
            return Vec::new();
        }
        let Some(s) = self.sessions.get(&id) else {
            return Vec::new();
        };
        let request = s.request.clone();
        let primary = s.allocation.clone();
        self.discard_backups(sdn, id);

        let mut loaded: Vec<(EdgeId, f64)> = primary.links().collect();
        loaded.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        loaded.truncate(cfg.top_f);

        let mut planned: Vec<BackupTree> = Vec::new();
        let mut charged: Vec<Allocation> = Vec::new();
        for (link, _) in loaded {
            let excluded: BTreeSet<EdgeId> = [link].into_iter().collect();
            match cfg.policy {
                BackupPolicy::BestEffort => {
                    // Plan on the post-release view: with the primary's
                    // own hold removed, this is the exact state a reactive
                    // replan would see right after the failure releases
                    // the session (assuming nothing else changed).
                    let mut view = sdn.clone();
                    view.release(&primary)
                        .expect("a committed allocation releases from its own clone"); // lint:allow(P1): primary was applied to sdn, so the clone balances
                    if let Admission::Admitted(tree) =
                        appro_multi_cap_plan_excluding(&view, &request, cfg.k, &excluded, scratch)
                            .admit(&view, &request)
                    {
                        let allocation = tree.allocation(&request);
                        planned.push(BackupTree {
                            protected: link,
                            tree,
                            allocation,
                            reserved: false,
                        });
                    }
                }
                BackupPolicy::Reserved => {
                    // Plan on the live state — the reservation must
                    // coexist with the primary allocation.
                    let plan =
                        appro_multi_cap_plan_excluding(sdn, &request, cfg.k, &excluded, scratch);
                    if let CapPlan::Tree(tree) = plan {
                        let allocation = tree.allocation(&request);
                        if sdn.can_allocate(&allocation) {
                            sdn.allocate(&allocation)
                                .expect("fit was checked by can_allocate"); // lint:allow(P1): guarded by the can_allocate check above
                            charged.push(allocation.clone());
                            planned.push(BackupTree {
                                protected: link,
                                tree,
                                allocation,
                                reserved: true,
                            });
                        }
                    }
                }
            }
        }
        telemetry::add(telemetry::Counter::BackupPlanned, planned.len() as u64);
        if !planned.is_empty() {
            planned.sort_by_key(|b| b.protected);
            self.backups.insert(id, planned);
        }
        self.update_reserved_gauge();
        charged
    }

    /// Drops every backup held for `id`, releasing reserved capacity.
    pub(crate) fn discard_backups(&mut self, sdn: &mut Sdn, id: RequestId) {
        let Some(backups) = self.backups.remove(&id) else {
            return;
        };
        telemetry::add(telemetry::Counter::BackupDiscarded, backups.len() as u64);
        for b in backups {
            if b.reserved {
                sdn.release(&b.allocation)
                    .expect("a charged reservation releases cleanly"); // lint:allow(P1): the reservation was applied at protect time, so release balances
            }
        }
        self.update_reserved_gauge();
    }

    pub(crate) fn update_reserved_gauge(&self) {
        telemetry::gauge_set(
            telemetry::Gauge::ReservedBackupBandwidth,
            self.reserved_backup_bandwidth().round() as u64,
        );
    }

    /// Attaches destination `v` to the committed session `id` via its
    /// cheapest alive path from the existing tree (dynamic-Steiner join:
    /// one Dijkstra, no re-solve). The session's request, tree, and
    /// ledger allocation are updated in place; its backups are discarded
    /// (they covered the old destination set); accumulated drift grows by
    /// the attach cost and may trigger a transparent re-optimization.
    pub fn graft(
        &mut self,
        sdn: &mut Sdn,
        id: RequestId,
        v: NodeId,
        scratch: &mut ApproScratch,
    ) -> GraftOutcome {
        let Some(s) = self.sessions.get(&id) else {
            return GraftOutcome::UnknownSession;
        };
        if v == s.request.source || s.request.destinations.contains(&v) {
            return GraftOutcome::AlreadyMember;
        }
        let g = sdn.graph();
        if !g.contains_node(v) {
            return GraftOutcome::Unreachable;
        }
        // Nodes already on the delivery structure: servers plus every
        // endpoint of the distribution/extra edges. (Ingress-path interior
        // nodes carry only the unprocessed stream and are *not* covered.)
        let mut covered: BTreeSet<NodeId> = s.tree.servers.iter().map(|su| su.server).collect();
        for &e in s
            .tree
            .distribution_edges
            .iter()
            .chain(&s.tree.extra_traversals)
        {
            let er = g.edge(e);
            covered.insert(er.u);
            covered.insert(er.v);
        }
        let b = s.request.bandwidth;
        let request = s.request.clone();
        let old_alloc = s.allocation.clone();
        let mut tree = s.tree.clone();

        let (attach_cost, attach_edges);
        if covered.contains(&v) {
            // Free graft: the structure already delivers to v.
            attach_cost = 0.0;
            attach_edges = 0;
        } else {
            // Cheapest attach on the alive subgraph with one more unit of
            // headroom per edge (the path may re-traverse edges the
            // session already charges — ingress overlap — and each new
            // distribution instance costs another b).
            let mut fg = Graph::with_nodes(g.node_count());
            let mut emap: Vec<EdgeId> = Vec::new();
            for e in g.edges() {
                if sdn.is_link_alive(e.id) && sdn.residual_bandwidth(e.id) + sdn::CAPACITY_EPS >= b
                {
                    fg.add_edge(e.u, e.v, e.weight)
                        .expect("copied link is valid"); // lint:allow(P1): copies an edge the parent network already validated
                    emap.push(e.id);
                }
            }
            let tree_nodes: Vec<NodeId> = covered.iter().copied().collect();
            let Some(path) = steiner::join(&fg, &tree_nodes, v) else {
                return GraftOutcome::Unreachable;
            };
            let mut new_edges: Vec<EdgeId> = Vec::with_capacity(path.edges().len());
            for le in path.edges() {
                let Some(&orig) = emap.get(le.index()) else {
                    // join only returns edges of fg, all of which are mapped.
                    return GraftOutcome::Unreachable;
                };
                new_edges.push(orig);
            }
            debug_assert!(
                new_edges
                    .iter()
                    .all(|e| !tree.distribution_edges.contains(e)
                        && !tree.extra_traversals.contains(e)),
                "an attach path stops at the first covered node, so it \
                 cannot duplicate a distribution edge"
            );
            attach_cost = path.cost() * b;
            attach_edges = new_edges.len();
            tree.distribution_edges.extend(new_edges);
            tree.bandwidth_cost += attach_cost;
        }

        let mut dests = request.destinations.clone();
        dests.push(v);
        let Ok(new_request) = MulticastRequest::try_new(
            id,
            request.source,
            dests,
            request.bandwidth,
            request.chain.clone(),
        ) else {
            return GraftOutcome::Unreachable;
        };

        if attach_edges > 0 {
            let new_alloc = tree.allocation(&new_request);
            sdn.release(&old_alloc)
                .expect("a committed allocation releases cleanly"); // lint:allow(P1): the allocation was applied at commit, so release balances
            sdn.allocate(&new_alloc)
                .expect("the attach path was planned on exactly these residuals"); // lint:allow(P1): every new edge passed the residual-headroom filter above
            self.unindex(id, &old_alloc);
            self.index(id, &new_alloc);
            if let Some(sess) = self.sessions.get_mut(&id) {
                sess.request = new_request;
                sess.tree = tree;
                sess.allocation = new_alloc;
            }
        } else if let Some(sess) = self.sessions.get_mut(&id) {
            // Allocation unchanged; only the request grows.
            sess.request = new_request;
        }

        *self.drift.entry(id).or_insert(0.0) += attach_cost;
        // Backups were planned for the old destination set; a swap to one
        // of them could strand the new destination.
        self.discard_backups(sdn, id);
        telemetry::hit(telemetry::Counter::Grafts);
        telemetry::observe(telemetry::Hist::GraftAttachEdges, attach_edges as u64);
        telemetry::record(telemetry::Event::SessionGrafted {
            request: id.0,
            destination: v.index() as u64,
        });
        self.maybe_reoptimize(sdn, id, scratch);
        GraftOutcome::Grafted {
            attach_cost,
            attach_edges,
        }
    }

    /// Detaches destination `v` from the committed session `id`,
    /// leaf-pruning the distribution structure down to the segments the
    /// remaining destinations and servers still need and releasing the
    /// freed bandwidth exactly. Server placements (and their computing
    /// hold) are kept until the next re-optimization.
    pub fn prune(
        &mut self,
        sdn: &mut Sdn,
        id: RequestId,
        v: NodeId,
        scratch: &mut ApproScratch,
    ) -> PruneOutcome {
        let Some(s) = self.sessions.get(&id) else {
            return PruneOutcome::UnknownSession;
        };
        if !s.request.destinations.contains(&v) {
            return PruneOutcome::NotAMember;
        }
        if s.request.destinations.len() == 1 {
            return PruneOutcome::LastDestination;
        }
        let g = sdn.graph();
        let request = s.request.clone();
        let old_alloc = s.allocation.clone();
        let mut tree = s.tree.clone();
        let b = request.bandwidth;

        // Keep set: servers plus the surviving destinations. Everything
        // else may be leaf-pruned off the instance multigraph of
        // distribution + extra-traversal edges.
        let mut keep: BTreeSet<NodeId> = tree.servers.iter().map(|su| su.server).collect();
        keep.extend(request.destinations.iter().copied().filter(|&d| d != v));

        // (edge, is_extra) instances, pruned round by round: each round
        // removes every instance incident to a degree-1 node outside the
        // keep set, deterministically (BTree node order).
        let mut instances: Vec<(EdgeId, bool)> = tree
            .distribution_edges
            .iter()
            .map(|&e| (e, false))
            .chain(tree.extra_traversals.iter().map(|&e| (e, true)))
            .collect();
        let mut removed: Vec<EdgeId> = Vec::new();
        loop {
            let mut degree: std::collections::BTreeMap<NodeId, usize> =
                std::collections::BTreeMap::new();
            for &(e, _) in &instances {
                let er = g.edge(e);
                *degree.entry(er.u).or_insert(0) += 1;
                *degree.entry(er.v).or_insert(0) += 1;
            }
            let leaves: BTreeSet<NodeId> = degree
                .iter()
                .filter(|&(n, &d)| d == 1 && !keep.contains(n))
                .map(|(&n, _)| n)
                .collect();
            if leaves.is_empty() {
                break;
            }
            instances.retain(|&(e, _)| {
                let er = g.edge(e);
                let cut = leaves.contains(&er.u) || leaves.contains(&er.v);
                if cut {
                    removed.push(e);
                }
                !cut
            });
        }

        let removed_edges = removed.len();
        let released_cost: f64 = removed
            .iter()
            .map(|&e| sdn.unit_bandwidth_cost(e) * b)
            .sum();
        tree.distribution_edges = instances
            .iter()
            .filter(|&&(_, extra)| !extra)
            .map(|&(e, _)| e)
            .collect();
        tree.extra_traversals = instances
            .iter()
            .filter(|&&(_, extra)| extra)
            .map(|&(e, _)| e)
            .collect();
        tree.bandwidth_cost -= released_cost;

        let dests: Vec<NodeId> = request
            .destinations
            .iter()
            .copied()
            .filter(|&d| d != v)
            .collect();
        let new_request = MulticastRequest::try_new(
            id,
            request.source,
            dests,
            request.bandwidth,
            request.chain.clone(),
        )
        .expect("at least one destination survives the prune"); // lint:allow(P1): the LastDestination guard above keeps dests non-empty

        let new_alloc = tree.allocation(&new_request);
        sdn.release(&old_alloc)
            .expect("a committed allocation releases cleanly"); // lint:allow(P1): the allocation was applied at commit, so release balances
        sdn.allocate(&new_alloc)
            .expect("the pruned allocation is a subset of the released one"); // lint:allow(P1): pruning only removes edge instances, never adds load
        self.unindex(id, &old_alloc);
        self.index(id, &new_alloc);
        if let Some(sess) = self.sessions.get_mut(&id) {
            sess.request = new_request;
            sess.tree = tree;
            sess.allocation = new_alloc;
        }

        *self.drift.entry(id).or_insert(0.0) += released_cost;
        self.discard_backups(sdn, id);
        telemetry::hit(telemetry::Counter::Prunes);
        telemetry::record(telemetry::Event::SessionPruned {
            request: id.0,
            destination: v.index() as u64,
        });
        self.maybe_reoptimize(sdn, id, scratch);
        PruneOutcome::Pruned {
            released_cost,
            removed_edges,
        }
    }

    /// Re-optimizes session `id` from scratch when its accumulated drift
    /// exceeds the configured fraction of its current tree cost. Keeps
    /// the drifted tree when a fresh plan no longer fits the fragmented
    /// residual; resets drift either way (no thrashing). Returns whether
    /// a fresh plan was committed.
    pub(crate) fn maybe_reoptimize(
        &mut self,
        sdn: &mut Sdn,
        id: RequestId,
        scratch: &mut ApproScratch,
    ) -> bool {
        let Some(cfg) = self.resilience else {
            return false;
        };
        if cfg.drift_bound <= 0.0 {
            return false;
        }
        let Some(s) = self.sessions.get(&id) else {
            return false;
        };
        let drift = self.drift.get(&id).copied().unwrap_or(0.0);
        let cost = s.tree.total_cost();
        let ratio_pct = if cost > 0.0 {
            (drift / cost * 100.0).round() as u64
        } else {
            0
        };
        telemetry::observe(telemetry::Hist::DriftRatioPct, ratio_pct);
        if drift <= cfg.drift_bound * cost {
            return false;
        }

        let s = self
            .sessions
            .remove(&id)
            .expect("checked committed just above"); // lint:allow(P1): the session was fetched two statements earlier
        self.unindex(id, &s.allocation);
        sdn.release(&s.allocation)
            .expect("a committed allocation releases cleanly"); // lint:allow(P1): the allocation was applied at commit, so release balances
        self.drift.remove(&id);
        self.discard_backups(sdn, id);
        match appro_multi_cap_with_scratch(sdn, &s.request, cfg.k, scratch) {
            Admission::Admitted(tree) => {
                self.commit(sdn, s.request, tree)
                    .expect("a fresh plan fits the residual it was planned on"); // lint:allow(P1): replanning ran on the exact residual being committed
                telemetry::hit(telemetry::Counter::Reoptimizations);
                telemetry::record(telemetry::Event::SessionReoptimized { request: id.0 });
                let _ = self.protect(sdn, id, scratch);
                true
            }
            Admission::Rejected => {
                // Fragmented capacity: the drifted tree is still the best
                // feasible implementation — recommit it unchanged.
                self.commit(sdn, s.request, s.tree)
                    .expect("the just-released tree refits its own hold"); // lint:allow(P1): the identical allocation was released one statement earlier
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::RepairConfig;
    use sdn::{NfvType, SdnBuilder, ServiceChain};

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Firewall])
    }

    /// s - m1(server) - d with an alternative longer route s - a - m2 - d,
    /// plus a spur d - x and a second spur x - y.
    fn fixture() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let m1 = bld.add_server(1_000.0, 1.0);
        let a = bld.add_switch();
        let m2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        let x = bld.add_switch();
        let y = bld.add_switch();
        let e0 = bld.add_link(s, m1, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(m1, d, 1_000.0, 1.0).unwrap();
        let e2 = bld.add_link(s, a, 1_000.0, 2.0).unwrap();
        let e3 = bld.add_link(a, m2, 1_000.0, 2.0).unwrap();
        let e4 = bld.add_link(m2, d, 1_000.0, 2.0).unwrap();
        let e5 = bld.add_link(d, x, 1_000.0, 1.0).unwrap();
        let e6 = bld.add_link(x, y, 1_000.0, 1.0).unwrap();
        (
            bld.build().unwrap(),
            vec![s, m1, a, m2, d, x, y],
            vec![e0, e1, e2, e3, e4, e5, e6],
        )
    }

    fn req(v: &[NodeId], id: u64, dests: Vec<NodeId>) -> MulticastRequest {
        MulticastRequest::new(RequestId(id), v[0], dests, 100.0, chain())
    }

    fn audit(sdn: &Sdn, mgr: &SessionManager) {
        crate::audit::audit(sdn, mgr).unwrap();
    }

    #[test]
    fn protect_plans_a_backup_and_repair_swaps_to_it() {
        for policy in [BackupPolicy::BestEffort, BackupPolicy::Reserved] {
            let (mut sdn, v, e) = fixture();
            let cfg = ResilienceConfig::new(1).with_policy(policy).with_top_f(2);
            let mut mgr = SessionManager::with_resilience(cfg);
            let mut scratch = ApproScratch::new();
            let r = req(&v, 0, vec![v[4]]);
            assert!(mgr.admit(&mut sdn, &r, 1, &mut scratch).unwrap());
            let charged = mgr.protect(&mut sdn, RequestId(0), &mut scratch);
            assert!(!mgr.session_backups(RequestId(0)).is_empty());
            if policy == BackupPolicy::Reserved {
                assert!(!charged.is_empty());
                assert!(mgr.reserved_backup_bandwidth() > 0.0);
            } else {
                assert!(charged.is_empty());
                assert_eq!(mgr.reserved_backup_bandwidth(), 0.0);
            }
            audit(&sdn, &mgr);

            // Fail the protected cheap link: the repair must swap, not
            // replan.
            sdn.fail_link(e[1]).unwrap();
            let report = mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
            assert_eq!(report.swapped, vec![RequestId(0)], "{policy:?}");
            assert!(report.repaired.is_empty());
            assert_eq!(report.plan_events, 0, "a swap needs no planner");
            let s = mgr.session(RequestId(0)).unwrap();
            assert_eq!(s.tree.servers_used(), vec![v[3]]);
            audit(&sdn, &mgr);
        }
    }

    #[test]
    fn best_effort_swap_matches_the_reactive_replan() {
        let (mut sdn, v, e) = fixture();
        let mut proactive = SessionManager::with_resilience(ResilienceConfig::new(1).with_top_f(3));
        let mut reactive = SessionManager::new();
        let mut scratch = ApproScratch::new();
        let r = req(&v, 0, vec![v[4]]);
        let mut sdn2 = sdn.clone();
        assert!(proactive.admit(&mut sdn, &r, 1, &mut scratch).unwrap());
        proactive.protect(&mut sdn, RequestId(0), &mut scratch);
        assert!(reactive.admit(&mut sdn2, &r, 1, &mut scratch).unwrap());

        sdn.fail_link(e[1]).unwrap();
        sdn2.fail_link(e[1]).unwrap();
        let rp = proactive.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        let rr = reactive.repair(&mut sdn2, &RepairConfig::new(1), &mut scratch);
        assert_eq!(rp.swapped, vec![RequestId(0)]);
        assert_eq!(rr.repaired, vec![RequestId(0)]);
        // Identical restored tree => identical residual state.
        assert_eq!(
            proactive.session(RequestId(0)).unwrap().tree,
            reactive.session(RequestId(0)).unwrap().tree
        );
        assert_eq!(sdn, sdn2);
    }

    #[test]
    fn swap_falls_back_to_replan_when_the_backup_is_dead_too() {
        let (mut sdn, v, e) = fixture();
        let cfg = ResilienceConfig::new(1).with_top_f(1);
        let mut mgr = SessionManager::with_resilience(cfg);
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        mgr.protect(&mut sdn, RequestId(0), &mut scratch);
        // The backup (protecting e1) detours via m2. Fail e1 *and* the
        // detour's last hop: the backup is dead, reactive replan must
        // also fail, and the session defers.
        sdn.fail_link(e[1]).unwrap();
        sdn.fail_link(e[4]).unwrap();
        let cfg = RepairConfig::new(1).with_max_retries(3);
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert!(report.swapped.is_empty());
        assert_eq!(report.deferred, vec![RequestId(0)]);
        assert!(report.plan_events > 0);
        audit(&sdn, &mgr);
        // Recovery heals it through the pending queue, and the restored
        // session is re-protected (both routes are back, so an alternate
        // tree exists again).
        sdn.recover_link(e[1]).unwrap();
        sdn.recover_link(e[4]).unwrap();
        let report = mgr.repair(&mut sdn, &cfg, &mut scratch);
        assert_eq!(report.repaired, vec![RequestId(0)]);
        assert!(!mgr.session_backups(RequestId(0)).is_empty());
        audit(&sdn, &mgr);
    }

    #[test]
    fn reserved_depart_releases_the_reservation() {
        let (mut sdn, v, _) = fixture();
        let fresh = sdn.clone();
        let cfg = ResilienceConfig::new(1)
            .with_policy(BackupPolicy::Reserved)
            .with_top_f(2);
        let mut mgr = SessionManager::with_resilience(cfg);
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        mgr.protect(&mut sdn, RequestId(0), &mut scratch);
        assert!(mgr.reserved_backup_bandwidth() > 0.0);
        audit(&sdn, &mgr);
        mgr.depart(&mut sdn, RequestId(0)).unwrap();
        assert_eq!(mgr.reserved_backup_bandwidth(), 0.0);
        audit(&sdn, &mgr);
        sdn.reset();
        assert_eq!(sdn, fresh);
    }

    #[test]
    fn graft_attaches_via_the_cheapest_alive_path() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::with_resilience(
            ResilienceConfig::new(1).with_drift_bound(0.0), // no reopt
        );
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        // Graft y (two hops from d): the attach path is d-x-y.
        let out = mgr.graft(&mut sdn, RequestId(0), v[6], &mut scratch);
        let GraftOutcome::Grafted {
            attach_cost,
            attach_edges,
        } = out
        else {
            panic!("expected a graft, got {out:?}");
        };
        assert_eq!(attach_edges, 2);
        assert!((attach_cost - 2.0 * 100.0).abs() < 1e-9);
        let s = mgr.session(RequestId(0)).unwrap();
        assert_eq!(s.request.destinations, vec![v[4], v[6]]);
        s.tree.validate(&sdn, &s.request).unwrap();
        assert!(s.tree.distribution_edges.contains(&e[5]));
        assert!(s.tree.distribution_edges.contains(&e[6]));
        assert!(mgr.session_drift(RequestId(0)) > 0.0);
        audit(&sdn, &mgr);
        // Idempotent: the node is now a member.
        assert_eq!(
            mgr.graft(&mut sdn, RequestId(0), v[6], &mut scratch),
            GraftOutcome::AlreadyMember
        );
        // A node already on the structure grafts for free.
        let out = mgr.graft(&mut sdn, RequestId(0), v[5], &mut scratch);
        assert_eq!(
            out,
            GraftOutcome::Grafted {
                attach_cost: 0.0,
                attach_edges: 0
            }
        );
        audit(&sdn, &mgr);
    }

    #[test]
    fn graft_reports_unreachable_nodes() {
        let (mut sdn, v, e) = fixture();
        let mut mgr = SessionManager::with_resilience(ResilienceConfig::new(1));
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        sdn.fail_link(e[5]).unwrap();
        assert_eq!(
            mgr.graft(&mut sdn, RequestId(0), v[6], &mut scratch),
            GraftOutcome::Unreachable
        );
        assert_eq!(
            mgr.graft(&mut sdn, RequestId(7), v[6], &mut scratch),
            GraftOutcome::UnknownSession
        );
        audit(&sdn, &mgr);
    }

    #[test]
    fn prune_releases_exactly_the_exclusive_segments() {
        let (mut sdn, v, e) = fixture();
        let mut mgr =
            SessionManager::with_resilience(ResilienceConfig::new(1).with_drift_bound(0.0));
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4], v[6]]), 1, &mut scratch)
            .unwrap());
        let before_x = sdn.residual_bandwidth(e[5]);
        let before_y = sdn.residual_bandwidth(e[6]);
        // Prune y: the spur x-y is released; d-x stays only if some
        // destination still needs it — d remains, x is just a relay, so
        // both spur links go.
        let out = mgr.prune(&mut sdn, RequestId(0), v[6], &mut scratch);
        let PruneOutcome::Pruned {
            released_cost,
            removed_edges,
        } = out
        else {
            panic!("expected a prune, got {out:?}");
        };
        assert_eq!(removed_edges, 2);
        assert!((released_cost - 2.0 * 100.0).abs() < 1e-9);
        assert_eq!(sdn.residual_bandwidth(e[5]), before_x + 100.0);
        assert_eq!(sdn.residual_bandwidth(e[6]), before_y + 100.0);
        let s = mgr.session(RequestId(0)).unwrap();
        assert_eq!(s.request.destinations, vec![v[4]]);
        s.tree.validate(&sdn, &s.request).unwrap();
        audit(&sdn, &mgr);
        // Guards.
        assert_eq!(
            mgr.prune(&mut sdn, RequestId(0), v[6], &mut scratch),
            PruneOutcome::NotAMember
        );
        assert_eq!(
            mgr.prune(&mut sdn, RequestId(0), v[4], &mut scratch),
            PruneOutcome::LastDestination
        );
        assert_eq!(
            mgr.prune(&mut sdn, RequestId(9), v[4], &mut scratch),
            PruneOutcome::UnknownSession
        );
    }

    #[test]
    fn drift_past_the_bound_triggers_reoptimization() {
        let (mut sdn, v, _) = fixture();
        // Tiny bound: the first costly graft crosses it.
        let cfg = ResilienceConfig::new(1).with_drift_bound(1e-6);
        let mut mgr = SessionManager::with_resilience(cfg);
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        let out = mgr.graft(&mut sdn, RequestId(0), v[6], &mut scratch);
        assert!(matches!(out, GraftOutcome::Grafted { .. }));
        // Re-optimization ran: drift is reset and the session matches a
        // fresh plan for the grown destination set.
        assert_eq!(mgr.session_drift(RequestId(0)), 0.0);
        let s = mgr.session(RequestId(0)).unwrap();
        let fresh = {
            let clean = fixture().0;
            let r = req(&v, 1, vec![v[4], v[6]]);
            match nfv_multicast::appro_multi_cap(&clean, &r, 1) {
                Admission::Admitted(tree) => tree.total_cost(),
                Admission::Rejected => panic!("a fresh plan fits an empty network"),
            }
        };
        assert!((s.tree.total_cost() - fresh).abs() < 1e-9);
        audit(&sdn, &mgr);
    }

    #[test]
    fn full_lifecycle_round_trips_the_network() {
        let (mut sdn, v, e) = fixture();
        let fresh = sdn.clone();
        let cfg = ResilienceConfig::new(1)
            .with_policy(BackupPolicy::Reserved)
            .with_top_f(2);
        let mut mgr = SessionManager::with_resilience(cfg);
        let mut scratch = ApproScratch::new();
        assert!(mgr
            .admit(&mut sdn, &req(&v, 0, vec![v[4]]), 1, &mut scratch)
            .unwrap());
        mgr.protect(&mut sdn, RequestId(0), &mut scratch);
        mgr.graft(&mut sdn, RequestId(0), v[5], &mut scratch);
        mgr.graft(&mut sdn, RequestId(0), v[6], &mut scratch);
        mgr.protect(&mut sdn, RequestId(0), &mut scratch);
        sdn.fail_link(e[1]).unwrap();
        mgr.repair(&mut sdn, &RepairConfig::new(1), &mut scratch);
        audit(&sdn, &mgr);
        sdn.recover_link(e[1]).unwrap();
        mgr.prune(&mut sdn, RequestId(0), v[6], &mut scratch);
        audit(&sdn, &mgr);
        mgr.depart(&mut sdn, RequestId(0)).unwrap();
        audit(&sdn, &mgr);
        sdn.reset();
        assert_eq!(sdn, fresh);
    }
}
