//! Exact Steiner trees via the Dreyfus–Wagner dynamic program.
//!
//! `dp[S][v]` = minimum cost of a tree spanning terminal set `S ∪ {v}`.
//! Transitions: merge two subtrees at `v`, or extend a subtree along a
//! shortest path into `v`. With the full shortest-path metric available the
//! extension step is a single minimization (no inner Dijkstra needed).
//!
//! Complexity `O(3^t · n + 2^t · n² + t·n²·log n)` — only viable for small
//! terminal counts; the crate caps `t` at [`MAX_TERMINALS`]. This is the
//! oracle that certifies the 2-approximation of [`kmb`](crate::kmb) and the
//! 2K bound of `Appro_Multi` in the test suites.

use crate::SteinerTree;
use netgraph::{dijkstra, EdgeId, Graph, NodeId, ShortestPathTree};
use std::collections::BTreeSet;

/// Largest terminal count accepted by [`dreyfus_wagner`].
pub const MAX_TERMINALS: usize = 12;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// Base case: tree = shortest path from the single terminal to `v`.
    Leaf,
    /// dp[S][v] = dp[sub][v] + dp[S \ sub][v].
    Merge(u32),
    /// dp[S][v] = dp[S][u] + dist(u, v).
    Extend(u32 /* node index */),
}

/// Computes an exact minimum Steiner tree spanning `terminals`.
///
/// Returns `None` if the terminals do not lie in one connected component or
/// `terminals` is empty.
///
/// # Panics
///
/// Panics if the (deduplicated) terminal count exceeds [`MAX_TERMINALS`];
/// the exponential DP is a test oracle, not a production routine.
#[must_use]
pub fn dreyfus_wagner(g: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    let mut uniq: Vec<NodeId> = Vec::new();
    let mut seen = BTreeSet::new();
    for &t in terminals {
        if !g.contains_node(t) {
            return None;
        }
        if seen.insert(t) {
            uniq.push(t);
        }
    }
    if uniq.is_empty() {
        return None;
    }
    assert!(
        uniq.len() <= MAX_TERMINALS,
        "dreyfus_wagner is an oracle for <= {MAX_TERMINALS} terminals, got {}",
        uniq.len()
    );
    if uniq.len() == 1 {
        return Some(SteinerTree::from_parts(uniq, Vec::new(), 0.0));
    }

    let n = g.node_count();
    let spts: Vec<ShortestPathTree> = (0..n).map(|i| dijkstra(g, NodeId::new(i))).collect();
    let dist =
        |u: usize, v: usize| -> f64 { spts[u].distance(NodeId::new(v)).unwrap_or(f64::INFINITY) };

    // Check connectivity of terminals first.
    for &t in &uniq[1..] {
        if !spts[uniq[0].index()].is_reachable(t) {
            return None;
        }
    }

    let t = uniq.len();
    let full: u32 = (1u32 << t) - 1;
    let mut dp = vec![vec![f64::INFINITY; n]; (full + 1) as usize];
    let mut choice = vec![vec![Choice::Leaf; n]; (full + 1) as usize];

    // Base: singleton sets.
    for (i, &term) in uniq.iter().enumerate() {
        let mask = 1u32 << i;
        for v in 0..n {
            dp[mask as usize][v] = dist(term.index(), v);
            choice[mask as usize][v] = Choice::Leaf;
        }
    }

    for mask in 1..=full {
        if mask.count_ones() <= 1 {
            continue;
        }
        let m = mask as usize;
        // Merge step: combine two disjoint subsets at v. Enumerate proper
        // submasks containing the lowest set bit to avoid double counting.
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            if sub & low != 0 && sub != mask {
                let rest = mask ^ sub;
                for v in 0..n {
                    let cand = dp[sub as usize][v] + dp[rest as usize][v];
                    if cand < dp[m][v] {
                        dp[m][v] = cand;
                        choice[m][v] = Choice::Merge(sub);
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        // Extend step: dp[mask][v] = min_u dp[mask][u] + dist(u, v). One
        // pass suffices because dist is the full shortest-path metric.
        let snapshot: Vec<(usize, f64)> = (0..n)
            .filter(|&u| dp[m][u].is_finite())
            .map(|u| (u, dp[m][u]))
            .collect();
        for v in 0..n {
            for &(u, du) in &snapshot {
                let cand = du + dist(u, v);
                if cand < dp[m][v] {
                    dp[m][v] = cand;
                    choice[m][v] = Choice::Extend(u as u32);
                }
            }
        }
    }

    let root = uniq[0].index();
    if !dp[full as usize][root].is_finite() {
        return None;
    }

    // Reconstruct the edge set.
    let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
    let mut stack: Vec<(u32, usize)> = vec![(full, root)];
    while let Some((mask, v)) = stack.pop() {
        if mask.count_ones() == 1 {
            // Shortest path from the lone terminal to v.
            let ti = mask.trailing_zeros() as usize;
            add_path_edges(&spts[uniq[ti].index()], NodeId::new(v), &mut edges);
            continue;
        }
        match choice[mask as usize][v] {
            Choice::Leaf => unreachable!("multi-terminal mask cannot be a leaf"), // lint:allow(P1): Leaf choices are recorded only for singleton masks
            Choice::Merge(sub) => {
                stack.push((sub, v));
                stack.push((mask ^ sub, v));
            }
            Choice::Extend(u) => {
                add_path_edges(&spts[u as usize], NodeId::new(v), &mut edges);
                stack.push((mask, u as usize));
            }
        }
    }

    let mut edge_vec: Vec<EdgeId> = edges.into_iter().collect();
    edge_vec.sort_unstable();
    // The union of optimal subtrees can in principle contain redundant
    // edges when shortest paths overlap; prune to a tree of the terminals.
    let sub = netgraph::induced_subgraph(g, |_| true, |e| edge_vec.binary_search(&e).is_ok());
    let mst = netgraph::kruskal(sub.graph());
    let tree_edges = sub.parent_edges(&mst.edges);
    let (kept, cost) = crate::prune_non_terminal_leaves(g, &tree_edges, &uniq);

    debug_assert!(
        cost <= dp[full as usize][root] + 1e-6,
        "reconstruction ({cost}) worse than DP value ({})",
        dp[full as usize][root]
    );
    let tree = SteinerTree::from_parts(uniq, kept, cost);
    debug_assert!(tree.validate(g).is_ok());
    Some(tree)
}

fn add_path_edges(spt: &ShortestPathTree, to: NodeId, edges: &mut BTreeSet<EdgeId>) {
    let p = spt.path_to(to).expect("reachability checked"); // lint:allow(P1): callers check reachability before requesting the path
    edges.extend(p.edges().iter().copied());
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Graph;

    #[test]
    fn matches_shortest_path_for_two_terminals() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_edge(v[0], v[1], 1.0).unwrap();
        g.add_edge(v[1], v[2], 1.0).unwrap();
        g.add_edge(v[2], v[3], 1.0).unwrap();
        g.add_edge(v[0], v[3], 2.5).unwrap();
        let t = dreyfus_wagner(&g, &[v[0], v[3]]).unwrap();
        assert_eq!(t.cost(), 2.5);
    }

    #[test]
    fn finds_steiner_node_star() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let ts: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        for &x in &ts {
            g.add_edge(hub, x, 1.0).unwrap();
        }
        // Direct terminal-terminal edges cost 1.9 each; star (3.0) beats
        // any two direct edges (3.8).
        g.add_edge(ts[0], ts[1], 1.9).unwrap();
        g.add_edge(ts[1], ts[2], 1.9).unwrap();
        let t = dreyfus_wagner(&g, &ts).unwrap();
        t.validate(&g).unwrap();
        assert!((t.cost() - 3.0).abs() < 1e-9, "cost {}", t.cost());
        assert!(t.contains_node(&g, hub));
    }

    #[test]
    fn kmb_within_two_of_exact_on_grid() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..16).map(|_| g.add_node()).collect();
        for r in 0..4 {
            for c in 0..4 {
                let i = r * 4 + c;
                if c < 3 {
                    g.add_edge(v[i], v[i + 1], ((i % 3) + 1) as f64).unwrap();
                }
                if r < 3 {
                    g.add_edge(v[i], v[i + 4], ((i % 2) + 1) as f64).unwrap();
                }
            }
        }
        let terms = [v[0], v[3], v[12], v[15], v[5]];
        let exact = dreyfus_wagner(&g, &terms).unwrap();
        let approx = crate::kmb(&g, &terms).unwrap();
        assert!(approx.cost() >= exact.cost() - 1e-9);
        assert!(approx.cost() <= 2.0 * exact.cost() + 1e-9);
    }

    #[test]
    fn disconnected_gives_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let _ = (a, b);
        assert!(dreyfus_wagner(&g, &[a, b]).is_none());
    }

    #[test]
    fn single_terminal_trivial() {
        let mut g = Graph::new();
        let a = g.add_node();
        let t = dreyfus_wagner(&g, &[a]).unwrap();
        assert_eq!(t.cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "oracle")]
    fn too_many_terminals_panics() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..14).map(|_| g.add_node()).collect();
        for i in 0..13 {
            g.add_edge(v[i], v[i + 1], 1.0).unwrap();
        }
        let _ = dreyfus_wagner(&g, &v);
    }
}
