//! Dynamic-Steiner grafting: attach a new terminal to an existing tree
//! via its cheapest path to any already-covered node.
//!
//! This is the `join(network, exclude, T, v)` primitive of
//! SDN-ResilientMulticast-style live membership: instead of re-solving
//! the Steiner instance when a destination subscribes, run one Dijkstra
//! from the new terminal and splice in the cheapest path to the current
//! tree. The result is not globally optimal — repeated grafts drift away
//! from a fresh tree, which is why callers track accumulated drift and
//! periodically re-optimize — but each graft is a single shortest-path
//! computation.
//!
//! An *exclusion set* of edges makes the primitive reusable for
//! protection planning: `join_excluding` finds the cheapest attach path
//! that avoids a given set of links (e.g. a link assumed failed), without
//! the caller having to materialize a filtered graph.

use netgraph::{EdgeId, Graph, IndexedQuadHeap, NodeId, Path};
use std::collections::BTreeSet;

/// Cheapest attach of `v` to the node set `tree_nodes`: the shortest
/// path from `v` to its nearest covered node (ties broken by ascending
/// node id, so grafts are deterministic).
///
/// Returns `None` when `v` cannot reach any covered node, and a trivial
/// zero-length path when `v` is itself covered. The returned path runs
/// **from `v` to the tree**; callers splicing it into a tree rooted the
/// other way simply read the edge list, which is direction-agnostic on
/// undirected graphs.
#[must_use]
pub fn join(g: &Graph, tree_nodes: &[NodeId], v: NodeId) -> Option<Path> {
    join_excluding(g, &BTreeSet::new(), tree_nodes, v)
}

/// [`join`] restricted to the subgraph without the edges in `exclude`.
///
/// The Dijkstra runs directly on `g` and skips excluded edges during
/// relaxation, so edge ids in the returned path are `g`'s own ids — no
/// translation table needed.
///
/// # Panics
///
/// Panics if `v` is not a node of `g`.
#[must_use]
pub fn join_excluding(
    g: &Graph,
    exclude: &BTreeSet<EdgeId>,
    tree_nodes: &[NodeId],
    v: NodeId,
) -> Option<Path> {
    assert!(g.contains_node(v), "graft terminal {v} not in graph");
    let targets: BTreeSet<NodeId> = tree_nodes
        .iter()
        .copied()
        .filter(|n| g.contains_node(*n))
        .collect();
    if targets.is_empty() {
        return None;
    }
    if targets.contains(&v) {
        return Some(Path::trivial(v));
    }

    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = IndexedQuadHeap::new();
    heap.reset(n);
    if let Some(d0) = dist.get_mut(v.index()) {
        *d0 = 0.0;
    }
    heap.push_or_decrease(v, 0.0);

    // Settle until the first covered node pops. Pops come out in
    // (distance, node id) order, so the nearest covered node — smallest
    // id among equals — is found deterministically.
    let mut hit: Option<NodeId> = None;
    while let Some((du, u)) = heap.pop() {
        if targets.contains(&u) {
            hit = Some(u);
            break;
        }
        for nb in g.neighbors(u) {
            if exclude.contains(&nb.edge) {
                continue;
            }
            let w = g.edge(nb.edge).weight;
            let cand = du + w;
            if let Some(dv) = dist.get_mut(nb.node.index()) {
                if cand < *dv {
                    *dv = cand;
                    if let Some(pv) = pred.get_mut(nb.node.index()) {
                        *pv = Some((u, nb.edge));
                    }
                    heap.push_or_decrease(nb.node, cand);
                }
            }
        }
    }

    let target = hit?;
    let cost = dist.get(target.index()).copied()?;
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some(&Some((prev, edge))) = pred.get(cur.index()) {
        nodes.push(prev);
        edges.push(edge);
        cur = prev;
    }
    // The predecessor walk ran tree-node -> v; reversing makes the path
    // read from the graft terminal towards the tree.
    nodes.reverse();
    edges.reverse();
    Some(Path::new(nodes, edges, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3 plus a detour 0-4-3 of higher cost.
    fn line() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        let e0 = g.add_edge(v[0], v[1], 1.0).unwrap();
        let e1 = g.add_edge(v[1], v[2], 1.0).unwrap();
        let e2 = g.add_edge(v[2], v[3], 1.0).unwrap();
        let e3 = g.add_edge(v[0], v[4], 2.0).unwrap();
        let e4 = g.add_edge(v[4], v[3], 2.0).unwrap();
        (g, v, vec![e0, e1, e2, e3, e4])
    }

    #[test]
    fn attaches_to_nearest_tree_node() {
        let (g, v, e) = line();
        // Tree covers {0, 1}; graft node 3: nearest cover is 1 via 2.
        let p = join(&g, &[v[0], v[1]], v[3]).unwrap();
        assert_eq!(p.source(), v[3]);
        assert_eq!(p.target(), v[1]);
        assert_eq!(p.edges(), &[e[2], e[1]]);
        assert_eq!(p.cost(), 2.0);
    }

    #[test]
    fn covered_terminal_is_trivial() {
        let (g, v, _) = line();
        let p = join(&g, &[v[0], v[1]], v[1]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.cost(), 0.0);
    }

    #[test]
    fn exclusion_forces_the_detour() {
        let (g, v, e) = line();
        let exclude: BTreeSet<EdgeId> = [e[1]].into_iter().collect();
        // With 1-2 cut, node 3 must reach {0,1} around the detour via 4.
        let p = join_excluding(&g, &exclude, &[v[0], v[1]], v[3]).unwrap();
        assert_eq!(p.target(), v[0]);
        assert_eq!(p.edges(), &[e[4], e[3]]);
        assert_eq!(p.cost(), 4.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let (g, v, e) = line();
        let exclude: BTreeSet<EdgeId> = [e[1], e[3]].into_iter().collect();
        // Node 3 is cut off from {0, 1} entirely.
        assert!(join_excluding(&g, &exclude, &[v[0], v[1]], v[3]).is_none());
        // And an empty tree can never be joined.
        assert!(join(&g, &[], v[3]).is_none());
    }

    #[test]
    fn ties_break_towards_smaller_node_id() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        g.add_edge(v[2], v[0], 1.0).unwrap();
        g.add_edge(v[2], v[1], 1.0).unwrap();
        let p = join(&g, &[v[0], v[1]], v[2]).unwrap();
        assert_eq!(p.target(), v[0]);
    }
}
