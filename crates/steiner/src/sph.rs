//! The Takahashi–Matsuyama shortest-path heuristic (SPH).
//!
//! Grow a tree from a seed terminal; at every step attach the terminal
//! closest to the current tree via its shortest path. Also a
//! 2-approximation, often slightly better than KMB in practice; used by the
//! ablation benches as a drop-in alternative tree routine.

use crate::{prune_non_terminal_leaves, SteinerTree};
use netgraph::{EdgeId, Graph, NodeId, TotalCost};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Computes an approximate minimum Steiner tree spanning `terminals` by
/// iterative shortest-path attachment, seeded at `terminals[0]`.
///
/// Returns `None` if the terminals are not all connected or `terminals` is
/// empty. Duplicate terminals are tolerated.
///
/// Complexity: `O(t·(m + n) log n)` with `t` terminals.
#[must_use]
pub fn sph(g: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    let mut uniq: Vec<NodeId> = Vec::new();
    let mut seen = BTreeSet::new();
    for &t in terminals {
        if !g.contains_node(t) {
            return None;
        }
        if seen.insert(t) {
            uniq.push(t);
        }
    }
    if uniq.is_empty() {
        return None;
    }

    let n = g.node_count();
    let mut in_tree = vec![false; n];
    in_tree[uniq[0].index()] = true;
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut remaining: BTreeSet<NodeId> = uniq[1..].iter().copied().collect();

    while !remaining.is_empty() {
        // Multi-source Dijkstra from the whole current tree.
        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(TotalCost, NodeId)>> = BinaryHeap::new();
        for i in 0..n {
            if in_tree[i] {
                dist[i] = 0.0;
                heap.push(Reverse((TotalCost::new(0.0), NodeId::new(i))));
            }
        }
        let mut settled = vec![false; n];
        let mut hit: Option<NodeId> = None;
        while let Some(Reverse((d, u))) = heap.pop() {
            let ui = u.index();
            if settled[ui] {
                continue;
            }
            settled[ui] = true;
            if remaining.contains(&u) {
                hit = Some(u);
                break;
            }
            let du = d.get();
            for nb in g.neighbors(u) {
                let cand = du + g.edge(nb.edge).weight;
                if cand < dist[nb.node.index()] {
                    dist[nb.node.index()] = cand;
                    pred[nb.node.index()] = Some((u, nb.edge));
                    heap.push(Reverse((TotalCost::new(cand), nb.node)));
                }
            }
        }
        let target = hit?; // None: some terminal unreachable
        remaining.remove(&target);
        // Walk the path back into the tree, claiming nodes and edges.
        let mut cur = target;
        while !in_tree[cur.index()] {
            in_tree[cur.index()] = true;
            if let Some((prev, e)) = pred[cur.index()] {
                tree_edges.push(e);
                cur = prev;
            } else {
                break; // reached a tree seed
            }
        }
    }

    let (kept, cost) = prune_non_terminal_leaves(g, &tree_edges, &uniq);
    let tree = SteinerTree::from_parts(uniq, kept, cost);
    debug_assert!(tree.validate(g).is_ok(), "SPH produced an invalid tree");
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Graph;

    #[test]
    fn two_terminals_shortest_path() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_edge(v[0], v[1], 1.0).unwrap();
        g.add_edge(v[1], v[3], 1.0).unwrap();
        g.add_edge(v[0], v[2], 5.0).unwrap();
        g.add_edge(v[2], v[3], 5.0).unwrap();
        let t = sph(&g, &[v[0], v[3]]).unwrap();
        assert_eq!(t.cost(), 2.0);
    }

    #[test]
    fn star_found() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let ts: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        for &t in &ts {
            g.add_edge(hub, t, 1.0).unwrap();
        }
        let tree = sph(&g, &ts).unwrap();
        tree.validate(&g).unwrap();
        assert_eq!(tree.cost(), 4.0);
    }

    #[test]
    fn agrees_with_kmb_within_factor_two() {
        // On a grid-ish graph both heuristics should be within 2x of each
        // other (both are <= 2 OPT and >= OPT).
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..9).map(|_| g.add_node()).collect();
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c < 2 {
                    g.add_edge(v[i], v[i + 1], 1.0).unwrap();
                }
                if r < 2 {
                    g.add_edge(v[i], v[i + 3], 1.0).unwrap();
                }
            }
        }
        let terms = [v[0], v[2], v[6], v[8]];
        let a = sph(&g, &terms).unwrap();
        let b = crate::kmb(&g, &terms).unwrap();
        assert!(a.cost() <= 2.0 * b.cost() + 1e-9);
        assert!(b.cost() <= 2.0 * a.cost() + 1e-9);
    }

    #[test]
    fn disconnected_gives_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let _ = (a, b);
        assert!(sph(&g, &[a, b]).is_none());
    }

    #[test]
    fn empty_gives_none_and_singleton_trivial() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert!(sph(&g, &[]).is_none());
        let t = sph(&g, &[a]).unwrap();
        assert_eq!(t.cost(), 0.0);
    }
}
