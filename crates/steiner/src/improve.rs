//! Key-path local search: polishes a Steiner tree after construction.
//!
//! A *key node* of a Steiner tree is a terminal or a branch node
//! (degree ≥ 3); a *key path* is a maximal tree path whose interior nodes
//! are non-key Steiner nodes. Removing a key path splits the tree in two;
//! if a cheaper path reconnects the two sides, swapping it in yields a
//! strictly better tree. Iterating to a fixed point is the classic
//! post-optimization for KMB/SPH trees — used here as an optional
//! refinement and exercised by the ablation benches.

use crate::SteinerTree;
use netgraph::{EdgeId, Graph, NodeId, TotalCost};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Iteratively improves `tree` by key-path replacement until no swap
/// helps (or `max_rounds` passes ran). The result spans the same
/// terminals with cost ≤ the input's.
///
/// Returns the input unchanged when it has fewer than two terminals.
#[must_use]
pub fn improve(g: &Graph, tree: &SteinerTree, max_rounds: usize) -> SteinerTree {
    let terminals = tree.terminals().to_vec();
    if terminals.len() < 2 {
        return tree.clone();
    }
    let mut edges: Vec<EdgeId> = tree.edges().to_vec();
    let mut cost = tree.cost();

    for _ in 0..max_rounds {
        match improve_once(g, &edges, &terminals, cost) {
            Some((better_edges, better_cost)) => {
                debug_assert!(better_cost < cost);
                edges = better_edges;
                cost = better_cost;
            }
            None => break,
        }
    }

    let improved = SteinerTree::from_parts(terminals, edges, cost);
    debug_assert!(improved.validate(g).is_ok(), "local search broke the tree");
    improved
}

/// Tries every key path once; returns the first improving swap.
fn improve_once(
    g: &Graph,
    edges: &[EdgeId],
    terminals: &[NodeId],
    current_cost: f64,
) -> Option<(Vec<EdgeId>, f64)> {
    // Tree adjacency and degrees. Deterministic container: iteration
    // order below decides which improving swap is applied first.
    let mut adj: BTreeMap<NodeId, Vec<(NodeId, EdgeId)>> = BTreeMap::new();
    for &e in edges {
        let er = g.edge(e);
        adj.entry(er.u).or_default().push((er.v, e));
        adj.entry(er.v).or_default().push((er.u, e));
    }
    let terminal_set: BTreeSet<NodeId> = terminals.iter().copied().collect();
    let is_key = |n: NodeId, adj: &BTreeMap<NodeId, Vec<(NodeId, EdgeId)>>| {
        terminal_set.contains(&n) || adj.get(&n).map_or(0, Vec::len) >= 3
    };

    // Enumerate key paths: walk from each key node along each incident
    // edge through degree-2 non-key interiors until the next key node.
    let mut seen_paths: BTreeSet<(NodeId, NodeId, EdgeId)> = BTreeSet::new();
    for (&start, nbs) in &adj {
        if !is_key(start, &adj) {
            continue;
        }
        for &(mut cur, mut via) in nbs {
            let first_edge = via;
            let mut prev = start;
            let mut path_edges = vec![via];
            while !is_key(cur, &adj) {
                let next = adj[&cur]
                    .iter()
                    .find(|&&(n, _)| n != prev)
                    .copied()
                    .expect("degree-2 interior has another side"); // lint:allow(P1): a degree-2 interior node has exactly two incident edges
                prev = cur;
                cur = next.0;
                via = next.1;
                path_edges.push(via);
            }
            let end = cur;
            // Deduplicate the two directions of the same key path.
            let signature = if start <= end {
                (start, end, first_edge)
            } else {
                (end, start, *path_edges.last().expect("non-empty")) // lint:allow(P1): paths between distinct endpoints have at least one edge
            };
            if !seen_paths.insert(signature) {
                continue;
            }
            if let Some(swap) = try_replace(g, edges, &path_edges, current_cost) {
                return Some(swap);
            }
        }
    }
    None
}

/// Removes `path_edges` from the tree and searches for the cheapest
/// reconnecting path that avoids the removed interior; returns the new
/// edge set if it beats the old path.
fn try_replace(
    g: &Graph,
    edges: &[EdgeId],
    path_edges: &[EdgeId],
    current_cost: f64,
) -> Option<(Vec<EdgeId>, f64)> {
    let removed: BTreeSet<EdgeId> = path_edges.iter().copied().collect();
    let old_cost: f64 = path_edges.iter().map(|&e| g.edge(e).weight).sum();
    let kept: Vec<EdgeId> = edges
        .iter()
        .copied()
        .filter(|e| !removed.contains(e))
        .collect();

    // Two components of the remaining forest (by node).
    // Deterministic containers: `comp` seeds the reconnection Dijkstra in
    // iteration order, which breaks equal-cost ties.
    let mut comp: BTreeMap<NodeId, u8> = BTreeMap::new();
    let mut forest_adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &e in &kept {
        let er = g.edge(e);
        forest_adj.entry(er.u).or_default().push(er.v);
        forest_adj.entry(er.v).or_default().push(er.u);
    }
    // Seed the two sides with the removed path's endpoints.
    let (first, last) = path_endpoints(g, path_edges)?;
    for (seed, label) in [(first, 0u8), (last, 1u8)] {
        let mut stack = vec![seed];
        while let Some(u) = stack.pop() {
            if comp.insert(u, label).is_some() {
                continue;
            }
            for &v in forest_adj.get(&u).into_iter().flatten() {
                if !comp.contains_key(&v) {
                    stack.push(v);
                }
            }
        }
    }

    // Multi-source Dijkstra from side 0 to the first settled side-1 node,
    // avoiding the removed edges (a simple swap must not reuse them).
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(TotalCost, NodeId)>> = BinaryHeap::new();
    for (&node, &label) in &comp {
        if label == 0 {
            dist[node.index()] = 0.0;
            heap.push(Reverse((TotalCost::new(0.0), node)));
        }
    }
    let mut meet: Option<NodeId> = None;
    while let Some(Reverse((d, u))) = heap.pop() {
        let ui = u.index();
        if settled[ui] {
            continue;
        }
        settled[ui] = true;
        if comp.get(&u) == Some(&1) {
            meet = Some(u);
            break;
        }
        for nb in g.neighbors(u) {
            if removed.contains(&nb.edge) {
                continue;
            }
            let cand = d.get() + g.edge(nb.edge).weight;
            if cand < dist[nb.node.index()] {
                dist[nb.node.index()] = cand;
                pred[nb.node.index()] = Some((u, nb.edge));
                heap.push(Reverse((TotalCost::new(cand), nb.node)));
            }
        }
    }
    let meet = meet?;
    let new_cost = dist[meet.index()];
    if new_cost + 1e-9 >= old_cost {
        return None;
    }

    // Collect the replacement path and rebuild the tree; prune dangling
    // non-terminal stubs the removed interior may have left behind.
    let mut new_edges = kept;
    let mut cur = meet;
    while let Some((p, e)) = pred[cur.index()] {
        new_edges.push(e);
        cur = p;
    }
    new_edges.sort_unstable();
    new_edges.dedup();
    // Replacement may touch nodes already in the tree, creating a cycle;
    // fall back to an MST of the union to restore tree-ness cheaply.
    let sub = netgraph::induced_subgraph(g, |_| true, |e| new_edges.binary_search(&e).is_ok());
    let mst = netgraph::kruskal(sub.graph());
    let tree_edges = sub.parent_edges(&mst.edges);
    let terminals: Vec<NodeId> = Vec::new();
    let _ = terminals;
    let cost: f64 = tree_edges.iter().map(|&e| g.edge(e).weight).sum();
    if cost + 1e-9 >= current_cost {
        return None;
    }
    Some((tree_edges, cost))
}

/// Endpoints of a path given as an edge sequence (first/last nodes).
fn path_endpoints(g: &Graph, path_edges: &[EdgeId]) -> Option<(NodeId, NodeId)> {
    match path_edges {
        [] => None,
        [only] => {
            let er = g.edge(*only);
            Some((er.u, er.v))
        }
        [first, .., last] => {
            let f = g.edge(*first);
            let s = g.edge(path_edges[1]);
            let start = if f.u == s.u || f.u == s.v { f.v } else { f.u };
            let l = g.edge(*last);
            let sl = g.edge(path_edges[path_edges.len() - 2]);
            let end = if l.u == sl.u || l.u == sl.v { l.v } else { l.u };
            Some((start, end))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmb;

    /// A square where KMB may pick the long way round.
    #[test]
    fn improves_a_deliberately_bad_tree() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let long1 = g.add_edge(a, c, 5.0).unwrap();
        let long2 = g.add_edge(c, b, 5.0).unwrap();
        let _short = g.add_edge(a, b, 1.0).unwrap();
        let bad = SteinerTree::from_parts(vec![a, b], vec![long1, long2], 10.0);
        bad.validate(&g).unwrap();
        let better = improve(&g, &bad, 8);
        better.validate(&g).unwrap();
        assert_eq!(better.cost(), 1.0);
    }

    #[test]
    fn never_worsens_kmb_trees() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 20;
            let mut g = Graph::with_nodes(n);
            for i in 0..n {
                g.add_edge(
                    NodeId::new(i),
                    NodeId::new((i + 1) % n),
                    rng.gen_range(1.0..10.0),
                )
                .unwrap();
            }
            for _ in 0..15 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(1.0..10.0))
                        .unwrap();
                }
            }
            let terms: Vec<NodeId> = (0..5).map(|i| NodeId::new(i * 4)).collect();
            let base = kmb(&g, &terms).unwrap();
            let polished = improve(&g, &base, 10);
            polished.validate(&g).unwrap();
            assert!(
                polished.cost() <= base.cost() + 1e-9,
                "seed {seed}: {} > {}",
                polished.cost(),
                base.cost()
            );
        }
    }

    #[test]
    fn fixed_point_is_stable() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 1.0).unwrap();
        let t = SteinerTree::from_parts(vec![a, b], vec![e], 1.0);
        let improved = improve(&g, &t, 5);
        assert_eq!(improved.cost(), 1.0);
        assert_eq!(improved.edges(), t.edges());
    }

    #[test]
    fn single_terminal_passthrough() {
        let mut g = Graph::new();
        let a = g.add_node();
        let t = SteinerTree::from_parts(vec![a], vec![], 0.0);
        assert_eq!(improve(&g, &t, 3), t);
    }
}
