//! # steiner
//!
//! Steiner tree algorithms over [`netgraph`] graphs:
//!
//! * [`kmb`] — the Kou–Markowsky–Berman approximation (Acta Informatica
//!   1981), the routine invoked by both algorithms of the ICDCS 2017 paper.
//!   Guarantee: `2(1 − 1/ℓ) < 2` times optimal, where `ℓ` is the number of
//!   leaves of the optimal tree.
//! * [`mehlhorn`] — Mehlhorn's `O(m log n)` construction (Inf. Proc. Lett.
//!   1988) with the same guarantee as [`kmb`]: one multi-source Dijkstra
//!   replaces the per-terminal sweeps. The hot-path default; KMB stays as
//!   the audit path.
//! * [`sph`] — the Takahashi–Matsuyama shortest-path heuristic, used by the
//!   ablation benches as an alternative tree routine.
//! * [`dreyfus_wagner`] — the exact dynamic program, exponential in the
//!   terminal count; the test oracle that certifies the approximation
//!   ratios empirically.
//! * [`steiner_lower_bound`] — an admissible lower bound on any spanning
//!   tree's weight from a pairwise distance bound (e.g. a landmark/ALT
//!   oracle), for ordering and pruning Steiner instances before they are
//!   built.
//! * [`join`] / [`join_excluding`] — dynamic-Steiner grafting: attach one
//!   new terminal to an existing tree via its cheapest (optionally
//!   edge-excluding) path, without re-solving the instance.
//!
//! ## Example
//!
//! ```
//! use netgraph::{Graph, NodeId};
//! use steiner::kmb;
//!
//! # fn main() -> Result<(), netgraph::GraphError> {
//! let mut g = Graph::new();
//! let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
//! g.add_edge(v[0], v[1], 1.0)?;
//! g.add_edge(v[1], v[2], 1.0)?;
//! g.add_edge(v[1], v[3], 1.0)?;
//! g.add_edge(v[0], v[3], 5.0)?;
//!
//! let tree = kmb(&g, &[v[0], v[2], v[3]]).expect("terminals are connected");
//! assert_eq!(tree.cost(), 3.0); // star around v1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bound;
mod exact;
mod improve;
mod join;
mod kmb;
mod mehlhorn;
mod prune;
mod sph;
mod tree;

pub use bound::steiner_lower_bound;
pub use exact::{dreyfus_wagner, MAX_TERMINALS};
pub use improve::improve;
pub use join::{join, join_excluding};
pub use kmb::{kmb, kmb_with_bank, TerminalSptBank};
pub use mehlhorn::mehlhorn;
pub use prune::prune_non_terminal_leaves;
pub use sph::sph;
pub use tree::SteinerTree;
