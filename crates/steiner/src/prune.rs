//! Leaf pruning: the final step of the KMB construction.

use netgraph::{EdgeId, Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Repeatedly removes leaves that are not terminals from an edge set,
/// returning the surviving edges and their total weight.
///
/// The input need not be a tree — pruning simply never removes a node with
/// degree ≥ 2 or a terminal, so cycles survive. KMB feeds it an MST, for
/// which the result is the minimal subtree spanning the terminals.
#[must_use]
pub fn prune_non_terminal_leaves(
    g: &Graph,
    edges: &[EdgeId],
    terminals: &[NodeId],
) -> (Vec<EdgeId>, f64) {
    let mut degree: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut alive: Vec<bool> = vec![true; edges.len()];
    for &e in edges {
        let er = g.edge(e);
        *degree.entry(er.u).or_insert(0) += 1;
        *degree.entry(er.v).or_insert(0) += 1;
    }
    let is_terminal: BTreeSet<NodeId> = terminals.iter().copied().collect();

    loop {
        let mut removed_any = false;
        for (i, &e) in edges.iter().enumerate() {
            if !alive.get(i).copied().unwrap_or(false) {
                continue;
            }
            let er = g.edge(e);
            for n in [er.u, er.v] {
                if degree.get(&n) == Some(&1) && !is_terminal.contains(&n) {
                    if let Some(a) = alive.get_mut(i) {
                        *a = false;
                    }
                    *degree.get_mut(&er.u).expect("endpoint counted") -= 1; // lint:allow(P1): every edge endpoint was counted when degree was built
                    *degree.get_mut(&er.v).expect("endpoint counted") -= 1; // lint:allow(P1): every edge endpoint was counted when degree was built
                    removed_any = true;
                    break;
                }
            }
        }
        if !removed_any {
            break;
        }
    }

    let kept: Vec<EdgeId> = edges
        .iter()
        .zip(&alive)
        .filter(|&(_, &a)| a)
        .map(|(&e, _)| e)
        .collect();
    let cost = kept.iter().map(|&e| g.edge(e).weight).sum();
    (kept, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Graph;

    #[test]
    fn prunes_dangling_chain() {
        // t0 - a - t1, with a - b - c dangling off a.
        let mut g = Graph::new();
        let t0 = g.add_node();
        let a = g.add_node();
        let t1 = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let e0 = g.add_edge(t0, a, 1.0).unwrap();
        let e1 = g.add_edge(a, t1, 1.0).unwrap();
        let e2 = g.add_edge(a, b, 1.0).unwrap();
        let e3 = g.add_edge(b, c, 1.0).unwrap();
        let (kept, cost) = prune_non_terminal_leaves(&g, &[e0, e1, e2, e3], &[t0, t1]);
        assert_eq!(kept, vec![e0, e1]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn keeps_terminal_leaves() {
        let mut g = Graph::new();
        let t0 = g.add_node();
        let t1 = g.add_node();
        let e = g.add_edge(t0, t1, 3.0).unwrap();
        let (kept, cost) = prune_non_terminal_leaves(&g, &[e], &[t0, t1]);
        assert_eq!(kept, vec![e]);
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn steiner_branch_node_survives() {
        // Star: hub is non-terminal but has degree 3.
        let mut g = Graph::new();
        let hub = g.add_node();
        let ts: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        let edges: Vec<EdgeId> = ts
            .iter()
            .map(|&t| g.add_edge(hub, t, 1.0).unwrap())
            .collect();
        let (kept, cost) = prune_non_terminal_leaves(&g, &edges, &ts);
        assert_eq!(kept.len(), 3);
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn everything_pruned_when_no_terminal_touches() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        let e = g.add_edge(a, b, 1.0).unwrap();
        let (kept, cost) = prune_non_terminal_leaves(&g, &[e], &[t]);
        assert!(kept.is_empty());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn empty_edge_set() {
        let mut g = Graph::new();
        let t = g.add_node();
        let (kept, cost) = prune_non_terminal_leaves(&g, &[], &[t]);
        assert!(kept.is_empty());
        assert_eq!(cost, 0.0);
    }
}
