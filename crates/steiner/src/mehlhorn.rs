//! Mehlhorn's faster KMB-equivalent Steiner approximation.
//!
//! Same contract and the same `2(1 − 1/ℓ)` guarantee as [`crate::kmb`],
//! but the metric closure is built with **one** multi-source Dijkstra
//! ([`netgraph::voronoi_closure`]) instead of one sweep per terminal:
//!
//! 1. Partition the graph into terminal Voronoi regions and collect, for
//!    every pair of adjacent regions, the cheapest bridging edge — a
//!    *sparse subgraph* `G₁'` of the full metric closure `G₁`.
//! 2. MST of `G₁'`. Mehlhorn (Inf. Proc. Lett. 1988, Lemma 1) shows
//!    `w(MST(G₁')) = w(MST(G₁))`, so nothing is lost by the sparsification.
//! 3. Expand every MST edge into its real path (region path + bridge +
//!    region path).
//! 4. MST of the expanded subgraph.
//! 5. Prune non-terminal leaves.
//!
//! Total `O(m log n)` versus KMB's `O(t · m log n)`. The two routines may
//! return *different* trees of the same approximation class (they
//! sparsify the closure differently), which is why `Appro_Multi` keeps
//! KMB available as the audit path.

use crate::{prune_non_terminal_leaves, SteinerTree};
use netgraph::{kruskal, voronoi_closure, Graph, NodeId};

/// Computes an approximate minimum Steiner tree spanning `terminals`
/// using Mehlhorn's single-sweep construction.
///
/// Returns `None` if the terminals are not all in one connected component
/// (no Steiner tree exists), or if `terminals` is empty. Duplicate
/// terminals are tolerated; a single (deduplicated) terminal yields the
/// trivial zero-cost tree — the same contract as [`crate::kmb`].
///
/// Complexity: `O(m log n + m + t²)` with `t` terminals.
#[must_use]
pub fn mehlhorn(g: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    let mut seen = vec![false; g.node_count()];
    let mut uniq: Vec<NodeId> = Vec::with_capacity(terminals.len());
    for &t in terminals {
        if !g.contains_node(t) {
            return None;
        }
        if !seen[t.index()] {
            seen[t.index()] = true;
            uniq.push(t);
        }
    }
    if uniq.is_empty() {
        return None;
    }
    if uniq.len() == 1 {
        return Some(SteinerTree::from_parts(uniq, Vec::new(), 0.0));
    }

    // Steps 1–2: sparse closure from one multi-source sweep, then its MST.
    // Closure edge id i corresponds to vc.edges()[i] (insertion order).
    let vc = voronoi_closure(g, &uniq);
    let t = uniq.len();
    let mut closure = Graph::with_nodes(t);
    for ce in vc.edges() {
        closure
            .add_edge(NodeId::new(ce.a), NodeId::new(ce.b), ce.cost)
            .expect("finite non-negative closure cost"); // lint:allow(P1): closure costs are finite by construction
    }
    let mst1 = kruskal(&closure);
    if !mst1.is_spanning_tree() {
        return None; // terminals span more than one component
    }

    // Step 3: expand every closure MST edge into its realizing path.
    let mut expanded: Vec<netgraph::EdgeId> = Vec::new();
    for &ce in &mst1.edges {
        vc.expand_edge(&vc.edges()[ce.index()], &mut expanded);
    }
    let mut in_subgraph = vec![false; g.edge_count()];
    for &e in &expanded {
        in_subgraph[e.index()] = true;
    }

    // Step 4: MST of the expanded subgraph.
    let sub = netgraph::induced_subgraph(g, |_| true, |e| in_subgraph[e.index()]);
    let mst2 = kruskal(sub.graph());
    let tree_edges = sub.parent_edges(&mst2.edges);

    // Step 5: prune non-terminal leaves.
    let (kept, cost) = prune_non_terminal_leaves(g, &tree_edges, &uniq);

    let tree = SteinerTree::from_parts(uniq, kept, cost);
    debug_assert!(
        tree.validate(g).is_ok(),
        "Mehlhorn produced an invalid tree"
    );
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmb;
    use netgraph::Graph;

    fn steiner_star() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let hub = g.add_node();
        let t: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        for &x in &t {
            g.add_edge(hub, x, 1.0).unwrap();
        }
        g.add_edge(t[0], t[1], 1.9).unwrap();
        g.add_edge(t[1], t[2], 1.9).unwrap();
        let mut nodes = vec![hub];
        nodes.extend(&t);
        (g, nodes)
    }

    #[test]
    fn finds_star_through_steiner_node() {
        let (g, v) = steiner_star();
        let tree = mehlhorn(&g, &[v[1], v[2], v[3]]).unwrap();
        tree.validate(&g).unwrap();
        assert!(tree.cost() <= 3.8 + 1e-9);
        assert!(tree.cost() >= 3.0 - 1e-9);
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_edge(v[0], v[1], 1.0).unwrap();
        g.add_edge(v[1], v[2], 1.0).unwrap();
        g.add_edge(v[2], v[3], 1.0).unwrap();
        g.add_edge(v[0], v[3], 10.0).unwrap();
        let tree = mehlhorn(&g, &[v[0], v[3]]).unwrap();
        assert_eq!(tree.cost(), 3.0);
        assert_eq!(tree.edges().len(), 3);
    }

    #[test]
    fn single_terminal_trivial() {
        let mut g = Graph::new();
        let a = g.add_node();
        let tree = mehlhorn(&g, &[a]).unwrap();
        assert_eq!(tree.cost(), 0.0);
        assert!(tree.edges().is_empty());
    }

    #[test]
    fn duplicate_terminals_deduplicated() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 2.0).unwrap();
        let tree = mehlhorn(&g, &[a, b, a, b]).unwrap();
        assert_eq!(tree.terminals(), &[a, b]);
        assert_eq!(tree.cost(), 2.0);
    }

    #[test]
    fn disconnected_terminals_give_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0).unwrap();
        assert!(mehlhorn(&g, &[a, c]).is_none());
    }

    #[test]
    fn empty_terminals_give_none() {
        let g = Graph::new();
        assert!(mehlhorn(&g, &[]).is_none());
    }

    #[test]
    fn unknown_terminal_gives_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert!(mehlhorn(&g, &[a, NodeId::new(5)]).is_none());
    }

    #[test]
    fn all_nodes_as_terminals_gives_mst_weight() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(v[i], v[j], ((i * 7 + j * 3) % 11 + 1) as f64)
                    .unwrap();
            }
        }
        let tree = mehlhorn(&g, &v).unwrap();
        let mst = netgraph::kruskal(&g);
        assert!((tree.cost() - mst.total_weight).abs() < 1e-9);
    }

    #[test]
    fn matches_kmb_cost_class_on_random_grids() {
        // Mehlhorn and KMB may pick different trees but both are ≤ 2·OPT;
        // on a weighted grid their costs should stay close (here: within
        // a factor of 2 of each other, which the shared bound implies).
        let mut g = Graph::new();
        let side = 5usize;
        let v: Vec<NodeId> = (0..side * side).map(|_| g.add_node()).collect();
        let mut x = 0xdeadbeefu64;
        let mut w = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 9 + 1) as f64
        };
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    g.add_edge(v[r * side + c], v[r * side + c + 1], w())
                        .unwrap();
                }
                if r + 1 < side {
                    g.add_edge(v[r * side + c], v[(r + 1) * side + c], w())
                        .unwrap();
                }
            }
        }
        let terms = [v[0], v[7], v[13], v[21], v[24]];
        let m = mehlhorn(&g, &terms).unwrap();
        let k = kmb(&g, &terms).unwrap();
        m.validate(&g).unwrap();
        assert!(m.cost() <= 2.0 * k.cost() + 1e-9);
        assert!(k.cost() <= 2.0 * m.cost() + 1e-9);
    }
}
