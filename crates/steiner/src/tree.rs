//! The Steiner tree result type.

use netgraph::{EdgeId, Graph, NodeId, RootedTree};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A tree in a graph spanning a set of terminals.
///
/// Produced by [`kmb`](crate::kmb), [`sph`](crate::sph), and
/// [`dreyfus_wagner`](crate::dreyfus_wagner). The tree may contain
/// non-terminal (Steiner) nodes; its cost is the sum of its edge weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteinerTree {
    terminals: Vec<NodeId>,
    edges: Vec<EdgeId>,
    cost: f64,
}

impl SteinerTree {
    /// Assembles a Steiner tree from parts; used by the algorithms in this
    /// crate and by the auxiliary-graph translation in `nfv-multicast`.
    ///
    /// Invariants (tree-ness, terminal coverage) are *not* checked here —
    /// call [`SteinerTree::validate`] in tests and debug assertions.
    #[must_use]
    pub fn from_parts(terminals: Vec<NodeId>, edges: Vec<EdgeId>, cost: f64) -> Self {
        SteinerTree {
            terminals,
            edges,
            cost,
        }
    }

    /// The terminals the tree was asked to span.
    #[must_use]
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// The tree's edges (ids in the graph the algorithm ran on).
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Total edge weight of the tree.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// All nodes touched by the tree (terminals plus Steiner nodes).
    #[must_use]
    pub fn nodes(&self, g: &Graph) -> Vec<NodeId> {
        let mut set: BTreeSet<NodeId> = BTreeSet::new();
        for &e in &self.edges {
            let er = g.edge(e);
            set.insert(er.u);
            set.insert(er.v);
        }
        // A single-terminal tree has no edges but still one node.
        for &t in &self.terminals {
            set.insert(t);
        }
        let mut v: Vec<NodeId> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Returns `true` if `n` is a node of the tree.
    #[must_use]
    pub fn contains_node(&self, g: &Graph, n: NodeId) -> bool {
        if self.terminals.contains(&n) {
            return true;
        }
        self.edges.iter().any(|&e| {
            let er = g.edge(e);
            er.u == n || er.v == n
        })
    }

    /// Roots the tree at `root`, producing a [`RootedTree`] for LCA and
    /// tree-path queries.
    ///
    /// Returns `None` if `root` is not a node of the tree or the stored
    /// edges do not form a tree (which would indicate a bug in the
    /// producing algorithm).
    #[must_use]
    pub fn root_at(&self, g: &Graph, root: NodeId) -> Option<RootedTree> {
        RootedTree::from_edges(g, &self.edges, root)
    }

    /// Checks the structural invariants: the edges form a tree (acyclic,
    /// connected) and every terminal is in it. Recomputes the cost.
    ///
    /// Returns `Err` with a human-readable description on violation; meant
    /// for tests and debug assertions.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.terminals.is_empty() {
            return Err("steiner tree has no terminals".into());
        }
        let t0 = self.terminals[0];
        let Some(rt) = RootedTree::from_edges(g, &self.edges, t0) else {
            return Err("edge set is not a tree containing the first terminal".into());
        };
        for &t in &self.terminals {
            if !rt.contains(t) {
                return Err(format!("terminal {t} not spanned"));
            }
        }
        let recomputed: f64 = self.edges.iter().map(|&e| g.edge(e).weight).sum();
        if (recomputed - self.cost).abs() > 1e-6 * (1.0 + recomputed.abs()) {
            return Err(format!(
                "stored cost {} disagrees with recomputed {}",
                self.cost, recomputed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Graph;

    fn star() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = Graph::new();
        let hub = g.add_node();
        let leaves: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        let edges: Vec<EdgeId> = leaves
            .iter()
            .map(|&l| g.add_edge(hub, l, 1.0).unwrap())
            .collect();
        let mut nodes = vec![hub];
        nodes.extend(&leaves);
        (g, nodes, edges)
    }

    #[test]
    fn validate_accepts_good_tree() {
        let (g, nodes, edges) = star();
        let t = SteinerTree::from_parts(vec![nodes[1], nodes[2], nodes[3]], edges, 3.0);
        assert!(t.validate(&g).is_ok());
        assert_eq!(t.nodes(&g).len(), 4);
        assert!(t.contains_node(&g, nodes[0])); // hub is a Steiner node
    }

    #[test]
    fn validate_rejects_missing_terminal() {
        let (g, nodes, edges) = star();
        // Tree only includes edges to leaves 1..3; pretend node far away is a terminal.
        let mut g2 = g.clone();
        let outsider = g2.add_node();
        let t = SteinerTree::from_parts(vec![nodes[1], outsider], edges, 3.0);
        assert!(t.validate(&g2).unwrap_err().contains("not spanned"));
    }

    #[test]
    fn validate_rejects_wrong_cost() {
        let (g, nodes, edges) = star();
        let t = SteinerTree::from_parts(vec![nodes[1], nodes[2]], edges, 99.0);
        assert!(t.validate(&g).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        let e: Vec<EdgeId> = vec![
            g.add_edge(v[0], v[1], 1.0).unwrap(),
            g.add_edge(v[1], v[2], 1.0).unwrap(),
            g.add_edge(v[2], v[0], 1.0).unwrap(),
        ];
        let t = SteinerTree::from_parts(vec![v[0]], e, 3.0);
        assert!(t.validate(&g).is_err());
    }

    #[test]
    fn single_terminal_tree_is_valid() {
        let (g, nodes, _) = star();
        let t = SteinerTree::from_parts(vec![nodes[2]], Vec::new(), 0.0);
        assert!(t.validate(&g).is_ok());
        assert_eq!(t.nodes(&g), vec![nodes[2]]);
    }

    #[test]
    fn root_at_gives_rooted_tree() {
        let (g, nodes, edges) = star();
        let t = SteinerTree::from_parts(vec![nodes[1], nodes[2]], edges, 3.0);
        let rt = t.root_at(&g, nodes[1]).unwrap();
        assert_eq!(rt.root(), nodes[1]);
        assert_eq!(rt.depth(nodes[2]), Some(2)); // leaf -> hub -> leaf
        assert!(t.root_at(&g, NodeId::new(99)).is_none());
    }
}
