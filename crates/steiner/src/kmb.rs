//! The Kou–Markowsky–Berman Steiner tree approximation.
//!
//! The five classic steps:
//!
//! 1. Build the *metric closure* `G₁` on the terminals (complete graph,
//!    edge weight = shortest-path distance in `G`).
//! 2. Find an MST `T₁` of `G₁`.
//! 3. Expand every `T₁` edge into its shortest path in `G`, giving the
//!    subgraph `G_s`.
//! 4. Find an MST `T_s` of `G_s`.
//! 5. Prune non-terminal leaves from `T_s`.
//!
//! Approximation ratio `2(1 − 1/ℓ) < 2`, `ℓ` = leaves of the optimal tree.

#![allow(clippy::needless_range_loop)] // paired-index loops over parallel arrays

use crate::{prune_non_terminal_leaves, SteinerTree};
use netgraph::{dijkstra_with_targets, kruskal, Graph, NodeId, ShortestPathTree};

/// Computes an approximate minimum Steiner tree spanning `terminals`.
///
/// Returns `None` if the terminals are not all in one connected component
/// (no Steiner tree exists), or if `terminals` is empty.
///
/// Duplicate terminals are tolerated. A single (deduplicated) terminal
/// yields the trivial zero-cost tree.
///
/// Complexity: `O(t·(m + n) log n + m log m)` with `t` terminals.
#[must_use]
pub fn kmb(g: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    let uniq = dedup_terminals(g, terminals)?;
    if uniq.len() == 1 {
        return Some(SteinerTree::from_parts(uniq, Vec::new(), 0.0));
    }
    // Step 1: shortest paths from every terminal to every other terminal.
    let spts: Vec<ShortestPathTree> = uniq
        .iter()
        .map(|&t| dijkstra_with_targets(g, t, &uniq))
        .collect();
    let spt_refs: Vec<&ShortestPathTree> = spts.iter().collect();
    kmb_core(g, uniq, &spt_refs)
}

/// Shortest-path trees from terminals, computed once and shared across
/// the repeated [`kmb_with_bank`] calls of a candidate scan whose
/// terminal sets overlap (e.g. `Online_CP` evaluating many servers
/// against one fixed `{source} ∪ destinations` anchor set).
///
/// Every tree is computed by `dijkstra_with_targets` against the bank's
/// full `targets` superset. Dijkstra settles nodes in a deterministic
/// `(distance, node id)` order that does not depend on the target set, so
/// distances *and* predecessor chains to any node of `targets` are
/// bit-identical to what a per-call Dijkstra over a terminal subset would
/// produce — which is what makes [`kmb_with_bank`] byte-identical to
/// [`kmb`].
#[derive(Debug, Clone)]
pub struct TerminalSptBank {
    targets: Vec<NodeId>,
    entries: Vec<(NodeId, ShortestPathTree)>,
}

impl TerminalSptBank {
    /// Creates an empty bank whose trees will be valid for any terminal
    /// drawn from `targets`.
    #[must_use]
    pub fn new(targets: Vec<NodeId>) -> Self {
        TerminalSptBank {
            targets,
            entries: Vec::new(),
        }
    }

    /// The target superset every banked tree covers.
    #[must_use]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Number of shortest-path trees computed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no tree has been computed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the tree rooted at `t`, computing it on first use. The
    /// linear probe is fine: banks hold tens of entries, not thousands.
    fn spt_index(&mut self, g: &Graph, t: NodeId) -> usize {
        if let Some(pos) = self.entries.iter().position(|(root, _)| *root == t) {
            return pos;
        }
        self.entries
            .push((t, dijkstra_with_targets(g, t, &self.targets)));
        self.entries.len() - 1
    }
}

/// [`kmb`] with the step-1 shortest-path trees drawn from (and cached in)
/// `bank` instead of recomputed per call. Byte-identical to [`kmb`] for
/// every terminal set drawn from `bank.targets()` — see
/// [`TerminalSptBank`] for why.
///
/// # Panics
///
/// Panics if some terminal is not in `bank.targets()`: a banked tree may
/// have stopped early before settling it, so serving the call would risk
/// a silently wrong answer instead.
#[must_use]
pub fn kmb_with_bank(
    g: &Graph,
    terminals: &[NodeId],
    bank: &mut TerminalSptBank,
) -> Option<SteinerTree> {
    let uniq = dedup_terminals(g, terminals)?;
    if uniq.len() == 1 {
        return Some(SteinerTree::from_parts(uniq, Vec::new(), 0.0));
    }
    for &t in &uniq {
        assert!(
            bank.targets.contains(&t),
            "terminal {t} is outside the bank's target set"
        );
    }
    let indices: Vec<usize> = uniq.iter().map(|&t| bank.spt_index(g, t)).collect();
    let spt_refs: Vec<&ShortestPathTree> = indices
        .iter()
        .map(|&i| {
            let (_, spt) = bank.entries.get(i).expect("index from spt_index"); // lint:allow(P1): spt_index returns in-bounds positions
            spt
        })
        .collect();
    kmb_core(g, uniq, &spt_refs)
}

/// Deduplicates terminals preserving caller order; `None` when empty or
/// when some terminal is not a node of `g`.
fn dedup_terminals(g: &Graph, terminals: &[NodeId]) -> Option<Vec<NodeId>> {
    // Dense node ids make a bool vector the cheapest dedup set — no
    // hashing, and iteration order stays the caller's terminal order.
    let mut seen = vec![false; g.node_count()];
    let mut uniq: Vec<NodeId> = Vec::with_capacity(terminals.len());
    for &t in terminals {
        if !g.contains_node(t) {
            return None;
        }
        if !seen[t.index()] {
            seen[t.index()] = true;
            uniq.push(t);
        }
    }
    if uniq.is_empty() {
        return None;
    }
    Some(uniq)
}

/// Steps 1b–5 of KMB, shared by [`kmb`] and [`kmb_with_bank`]:
/// `spts[i]` must be a shortest-path tree rooted at `uniq[i]` with every
/// terminal of `uniq` settled.
fn kmb_core(g: &Graph, uniq: Vec<NodeId>, spts: &[&ShortestPathTree]) -> Option<SteinerTree> {
    // Metric closure as a little complete graph whose node i = uniq[i].
    let t = uniq.len();
    let mut closure = Graph::with_nodes(t);
    for i in 0..t {
        for j in (i + 1)..t {
            let d = spts[i].distance(uniq[j])?; // None => disconnected
            closure
                .add_edge(NodeId::new(i), NodeId::new(j), d)
                .expect("finite non-negative distance"); // lint:allow(P1): closure distances are finite Dijkstra results
        }
    }

    // Step 2: MST of the closure.
    let mst1 = kruskal(&closure);
    debug_assert!(mst1.is_spanning_tree());

    // Step 3: expand closure edges into shortest paths; collect edge set
    // as a bool vector keyed by the dense edge ids.
    let mut in_subgraph = vec![false; g.edge_count()];
    for &ce in &mst1.edges {
        let cer = closure.edge(ce);
        let i = cer.u.index();
        let j = cer.v;
        let path = spts[i]
            .path_to(uniq[j.index()])
            .expect("closure edge implies reachability"); // lint:allow(P1): closure edges join mutually reachable terminals
        for &e in path.edges() {
            in_subgraph[e.index()] = true;
        }
    }

    // Step 4: MST of the expanded subgraph. Build a filtered view containing
    // exactly the collected edges.
    let sub = netgraph::induced_subgraph(g, |_| true, |e| in_subgraph[e.index()]);
    let mst2 = kruskal(sub.graph());
    let tree_edges = sub.parent_edges(&mst2.edges);

    // Step 5: prune non-terminal leaves.
    let (kept, cost) = prune_non_terminal_leaves(g, &tree_edges, &uniq);

    let tree = SteinerTree::from_parts(uniq, kept, cost);
    debug_assert!(tree.validate(g).is_ok(), "KMB produced an invalid tree");
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{EdgeId, Graph};

    /// The canonical KMB paper example shape: optimal Steiner tree uses a
    /// central Steiner node.
    fn steiner_star() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let hub = g.add_node(); // 0
        let t: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect(); // 1..3
        for &x in &t {
            g.add_edge(hub, x, 1.0).unwrap();
        }
        // Expensive direct edges between terminals.
        g.add_edge(t[0], t[1], 1.9).unwrap();
        g.add_edge(t[1], t[2], 1.9).unwrap();
        let mut nodes = vec![hub];
        nodes.extend(&t);
        (g, nodes)
    }

    #[test]
    fn finds_star_through_steiner_node() {
        let (g, v) = steiner_star();
        let tree = kmb(&g, &[v[1], v[2], v[3]]).unwrap();
        tree.validate(&g).unwrap();
        // Optimal is the 3-star of cost 3.0; KMB may return 3.0 or the
        // 3.8 chain, but for this construction the expansion step recovers
        // the star: metric closure distances are 1.9/2.0, MST picks the two
        // 1.9 edges, expansion keeps them, final MST compares 1.9 vs 1+1.
        assert!(tree.cost() <= 3.8 + 1e-9);
        assert!(tree.cost() >= 3.0 - 1e-9);
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_edge(v[0], v[1], 1.0).unwrap();
        g.add_edge(v[1], v[2], 1.0).unwrap();
        g.add_edge(v[2], v[3], 1.0).unwrap();
        g.add_edge(v[0], v[3], 10.0).unwrap();
        let tree = kmb(&g, &[v[0], v[3]]).unwrap();
        assert_eq!(tree.cost(), 3.0);
        assert_eq!(tree.edges().len(), 3);
    }

    #[test]
    fn single_terminal_trivial() {
        let mut g = Graph::new();
        let a = g.add_node();
        let tree = kmb(&g, &[a]).unwrap();
        assert_eq!(tree.cost(), 0.0);
        assert!(tree.edges().is_empty());
    }

    #[test]
    fn duplicate_terminals_deduplicated() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 2.0).unwrap();
        let tree = kmb(&g, &[a, b, a, b]).unwrap();
        assert_eq!(tree.terminals(), &[a, b]);
        assert_eq!(tree.cost(), 2.0);
    }

    #[test]
    fn disconnected_terminals_give_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let _b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, _b, 1.0).unwrap();
        assert!(kmb(&g, &[a, c]).is_none());
    }

    #[test]
    fn empty_terminals_give_none() {
        let g = Graph::new();
        assert!(kmb(&g, &[]).is_none());
    }

    #[test]
    fn unknown_terminal_gives_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert!(kmb(&g, &[a, NodeId::new(5)]).is_none());
    }

    #[test]
    fn all_nodes_as_terminals_gives_mst() {
        // When every node is a terminal, the Steiner tree is an MST.
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        let mut es: Vec<EdgeId> = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                es.push(
                    g.add_edge(v[i], v[j], ((i * 7 + j * 3) % 11 + 1) as f64)
                        .unwrap(),
                );
            }
        }
        let tree = kmb(&g, &v).unwrap();
        let mst = netgraph::kruskal(&g);
        assert!((tree.cost() - mst.total_weight).abs() < 1e-9);
    }

    #[test]
    fn bank_is_byte_identical_to_fresh_kmb() {
        // A lumpy deterministic graph with plenty of equal-length path
        // candidates, scanned the way Online_CP does: fixed anchors, a
        // varying extra terminal per call.
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..24).map(|_| g.add_node()).collect();
        for i in 0..24 {
            g.add_edge(v[i], v[(i + 1) % 24], 1.0 + (i % 5) as f64 * 0.3)
                .unwrap();
        }
        for i in (0..24).step_by(3) {
            g.add_edge(v[i], v[(i + 9) % 24], 2.0 + (i % 4) as f64 * 0.2)
                .unwrap();
        }
        let anchors = [v[0], v[7], v[13]];
        let extras: Vec<NodeId> = (0..24).step_by(2).map(|i| v[i]).collect();
        let mut targets = anchors.to_vec();
        targets.extend(&extras);
        let mut bank = TerminalSptBank::new(targets);
        for &x in &extras {
            let mut terminals = anchors.to_vec();
            terminals.push(x);
            let fresh = kmb(&g, &terminals).expect("connected");
            let banked = kmb_with_bank(&g, &terminals, &mut bank).expect("connected");
            assert_eq!(fresh.terminals(), banked.terminals());
            assert_eq!(fresh.edges(), banked.edges());
            assert!((fresh.cost() - banked.cost()).abs() == 0.0, "cost drifted");
        }
        // The anchors' trees were computed once, not once per call.
        assert_eq!(bank.len(), anchors.len() + extras.len() - 1); // v[0] is both
    }

    #[test]
    #[should_panic(expected = "outside the bank's target set")]
    fn bank_rejects_uncovered_terminals() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1.0).unwrap();
        let mut bank = TerminalSptBank::new(vec![a]);
        let _ = kmb_with_bank(&g, &[a, b], &mut bank);
    }

    #[test]
    fn tree_spans_exactly_terminals_after_prune() {
        let (g, v) = steiner_star();
        let tree = kmb(&g, &[v[1], v[2]]).unwrap();
        tree.validate(&g).unwrap();
        // Two terminals joined by their 1.9 edge (shorter than 2.0 via hub).
        assert_eq!(tree.cost(), 1.9);
    }
}
