//! Admissible lower bounds on Steiner tree weight.
//!
//! Any tree spanning a terminal set contains, for every pair of
//! terminals, a path between them whose weight is at least their
//! shortest-path distance. The tree's total weight therefore dominates
//! the *maximum pairwise distance* over the terminals. Substituting any
//! admissible distance lower bound (for example a landmark/ALT bound from
//! [`netgraph::LandmarkOracle`]) keeps the inequality valid, which is what
//! lets callers order or prune Steiner instances before building them.

use netgraph::NodeId;

/// An admissible lower bound on the weight of any tree spanning
/// `terminals`, derived from a pairwise distance lower bound `lb`.
///
/// `lb(u, v)` must never exceed the true shortest-path distance between
/// `u` and `v` in the graph the tree lives in; it may return
/// `f64::INFINITY` when `u` and `v` are provably disconnected (no
/// spanning tree exists at all). Under that contract the returned value
/// never exceeds the weight of any Steiner tree over `terminals`, so
/// sorting or pruning by it can never discard the optimum.
///
/// Two classical bounds are combined (both valid in the metric closure,
/// hence for any distance *lower* bound):
///
/// * **max pairwise** — the tree contains a path between every terminal
///   pair, so its weight dominates the largest pairwise distance;
/// * **half-sum of nearest neighbours** — doubling the tree yields a
///   closed walk visiting all terminals; shortcutting it to a tour, each
///   terminal contributes two incident tour edges, each at least its
///   distance to the nearest other terminal. Hence
///   `2·tree ≥ tour ≥ Σ_t min_{t'≠t} d(t, t')`, which is the sharper
///   bound on star-like instances.
///
/// Degenerate terminal sets (fewer than two nodes) need no edges, so the
/// bound is `0.0`.
pub fn steiner_lower_bound<F>(terminals: &[NodeId], mut lb: F) -> f64
where
    F: FnMut(NodeId, NodeId) -> f64,
{
    if terminals.len() < 2 {
        return 0.0;
    }
    let mut max_pair = 0.0_f64;
    let mut nearest = vec![f64::INFINITY; terminals.len()];
    for (i, &u) in terminals.iter().enumerate() {
        for (j, &v) in terminals.iter().enumerate().skip(i + 1) {
            let d = lb(u, v);
            max_pair = max_pair.max(d);
            if let Some(slot) = nearest.get_mut(i) {
                *slot = slot.min(d);
            }
            if let Some(slot) = nearest.get_mut(j) {
                *slot = slot.min(d);
            }
        }
    }
    let half_sum = 0.5 * nearest.iter().sum::<f64>();
    max_pair.max(half_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{CsrGraph, DijkstraScratch, Graph, LandmarkOracle};

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn degenerate_sets_bound_at_zero() {
        assert_eq!(steiner_lower_bound(&[], |_, _| 7.0), 0.0);
        assert_eq!(steiner_lower_bound(&[node(3)], |_, _| 7.0), 0.0);
    }

    #[test]
    fn picks_max_pairwise_bound() {
        let terms = [node(0), node(1), node(2)];
        let got = steiner_lower_bound(&terms, |u, v| (u.index() + v.index()) as f64);
        assert_eq!(got, 3.0); // pair (1, 2)
    }

    #[test]
    fn half_sum_sharpens_star_instances() {
        // Four terminals pairwise 2.0 apart (a unit star): max pairwise
        // says 2.0 but the nearest-neighbour half-sum recovers the full
        // star weight of 4.0.
        let terms = [node(0), node(1), node(2), node(3)];
        assert_eq!(steiner_lower_bound(&terms, |_, _| 2.0), 4.0);
    }

    #[test]
    fn disconnected_pair_propagates_infinity() {
        let terms = [node(0), node(1)];
        let got = steiner_lower_bound(&terms, |_, _| f64::INFINITY);
        assert!(got.is_infinite());
    }

    /// With an ALT oracle as the pairwise bound, the result never exceeds
    /// the weight of the tree KMB builds (which itself is a valid Steiner
    /// tree, so it dominates the optimum too).
    #[test]
    fn oracle_bound_is_admissible_against_kmb() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..8).map(|_| g.add_node()).collect();
        let edges = [
            (0, 1, 2.0),
            (1, 2, 1.5),
            (2, 3, 3.0),
            (3, 4, 1.0),
            (4, 5, 2.5),
            (5, 0, 4.0),
            (1, 6, 2.0),
            (6, 4, 1.0),
            (2, 7, 5.0),
            (7, 5, 1.0),
        ];
        for &(a, b, w) in &edges {
            g.add_edge(v[a], v[b], w).unwrap();
        }
        let csr = CsrGraph::from_graph(&g);
        let oracle = LandmarkOracle::build(&csr, 3, &mut DijkstraScratch::new());
        for terms in [
            vec![v[0], v[3]],
            vec![v[0], v[4], v[7]],
            vec![v[1], v[3], v[5], v[6]],
        ] {
            let tree = crate::kmb(&g, &terms).expect("connected");
            let bound = steiner_lower_bound(&terms, |a, b| oracle.lower_bound(a, b));
            assert!(
                bound <= tree.cost() + 1e-9,
                "bound {bound} exceeds tree cost {} for {terms:?}",
                tree.cost()
            );
        }
    }
}
