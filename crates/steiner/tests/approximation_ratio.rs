//! Empirical certification of the Steiner approximation guarantees.
//!
//! On random connected graphs with few terminals, KMB and SPH results are
//! compared against the Dreyfus–Wagner exact optimum:
//! `OPT <= heuristic <= 2·OPT`.

use netgraph::{Graph, NodeId};
use proptest::prelude::*;
use steiner::{dreyfus_wagner, kmb, mehlhorn, sph};

fn arb_instance() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (4usize..=12).prop_flat_map(|n| {
        let chain = proptest::collection::vec(1.0f64..20.0, n - 1);
        let extra = proptest::collection::vec((0..n, 0..n, 1.0f64..20.0), 0..20);
        let tcount = 2usize..=n.min(5);
        (chain, extra, tcount, proptest::collection::vec(0..n, 6)).prop_map(
            move |(chain, extra, tc, tseed)| {
                let mut g = Graph::with_nodes(n);
                for (i, w) in chain.into_iter().enumerate() {
                    g.add_edge(NodeId::new(i), NodeId::new(i + 1), w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        g.add_edge(NodeId::new(u), NodeId::new(v), w).unwrap();
                    }
                }
                let mut terms: Vec<NodeId> = tseed.into_iter().map(NodeId::new).collect();
                terms.sort_unstable();
                terms.dedup();
                terms.truncate(tc);
                if terms.is_empty() {
                    terms.push(NodeId::new(0));
                }
                (g, terms)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmb_within_factor_two_of_exact((g, terms) in arb_instance()) {
        let exact = dreyfus_wagner(&g, &terms).expect("connected");
        let approx = kmb(&g, &terms).expect("connected");
        approx.validate(&g).unwrap();
        exact.validate(&g).unwrap();
        prop_assert!(approx.cost() >= exact.cost() - 1e-6,
            "approx {} below exact {}", approx.cost(), exact.cost());
        prop_assert!(approx.cost() <= 2.0 * exact.cost() + 1e-6,
            "approx {} exceeds 2x exact {}", approx.cost(), exact.cost());
    }

    #[test]
    fn mehlhorn_within_factor_two_of_exact((g, terms) in arb_instance()) {
        // Same guarantee as KMB (Mehlhorn 1988): the sparse Voronoi
        // closure loses nothing relative to the full metric closure.
        let exact = dreyfus_wagner(&g, &terms).expect("connected");
        let approx = mehlhorn(&g, &terms).expect("connected");
        approx.validate(&g).unwrap();
        prop_assert!(approx.cost() >= exact.cost() - 1e-6,
            "mehlhorn {} below exact {}", approx.cost(), exact.cost());
        prop_assert!(approx.cost() <= 2.0 * exact.cost() + 1e-6,
            "mehlhorn {} exceeds 2x exact {}", approx.cost(), exact.cost());
    }

    #[test]
    fn mehlhorn_and_kmb_share_the_approximation_class((g, terms) in arb_instance()) {
        // The two constructions may return different trees; both must sit
        // in [OPT, 2·OPT], so neither can exceed twice the other.
        let m = mehlhorn(&g, &terms).expect("connected");
        let k = kmb(&g, &terms).expect("connected");
        prop_assert!(m.cost() <= 2.0 * k.cost() + 1e-6);
        prop_assert!(k.cost() <= 2.0 * m.cost() + 1e-6);
    }

    #[test]
    fn sph_within_factor_two_of_exact((g, terms) in arb_instance()) {
        let exact = dreyfus_wagner(&g, &terms).expect("connected");
        let approx = sph(&g, &terms).expect("connected");
        approx.validate(&g).unwrap();
        prop_assert!(approx.cost() >= exact.cost() - 1e-6);
        prop_assert!(approx.cost() <= 2.0 * exact.cost() + 1e-6);
    }

    #[test]
    fn steiner_tree_no_heavier_than_spanning_mst((g, terms) in arb_instance()) {
        // The MST of the whole graph spans the terminals, so the exact
        // Steiner tree can only be lighter.
        let exact = dreyfus_wagner(&g, &terms).expect("connected");
        let mst = netgraph::kruskal(&g);
        prop_assert!(exact.cost() <= mst.total_weight + 1e-6);
    }

    #[test]
    fn adding_terminals_never_cheapens_the_tree((g, terms) in arb_instance()) {
        // Monotonicity: OPT(T') >= OPT(T) for T ⊆ T'.
        if terms.len() >= 2 {
            let fewer = &terms[..terms.len() - 1];
            let small = dreyfus_wagner(&g, fewer).expect("connected");
            let big = dreyfus_wagner(&g, &terms).expect("connected");
            prop_assert!(big.cost() >= small.cost() - 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn local_search_never_worsens_and_stays_above_exact((g, terms) in arb_instance()) {
        let exact = dreyfus_wagner(&g, &terms).expect("connected");
        let base = kmb(&g, &terms).expect("connected");
        let polished = steiner::improve(&g, &base, 10);
        polished.validate(&g).unwrap();
        prop_assert!(polished.cost() <= base.cost() + 1e-9);
        prop_assert!(polished.cost() >= exact.cost() - 1e-6,
            "local search {} beat the exact optimum {}", polished.cost(), exact.cost());
    }
}
