//! Property tests for the online algorithms: threshold compliance,
//! structural validity, and allocation feasibility for arbitrary
//! workloads.

use nfv_online::{OnlineAlgorithm, OnlineCp, ShortestPathBaseline, ThresholdRule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdn::{ExponentialCostModel, Sdn};
use topology::{annotate, place_servers_random, AnnotationParams, Waxman};
use workload::RequestGenerator;

fn build_sdn(seed: u64) -> Sdn {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, _) = Waxman::new(30).generate(&mut rng);
    let servers = place_servers_random(&g, 0.15, &mut rng);
    annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_admitted_tree_is_valid_and_feasible(
        net_seed in 0u64..1000, wl_seed in 0u64..1000, count in 1usize..40
    ) {
        let mut sdn = build_sdn(net_seed);
        let mut rng = StdRng::seed_from_u64(wl_seed);
        let mut gen = RequestGenerator::new(sdn.node_count());
        let mut cp = OnlineCp::new();
        let mut sp = ShortestPathBaseline::new();
        for req in gen.generate_batch(count, &mut rng) {
            for algo in [&mut cp as &mut dyn OnlineAlgorithm, &mut sp] {
                if let Some(tree) = algo.admit(&sdn, &req) {
                    tree.validate(&sdn, &req)
                        .map_err(|e| TestCaseError::fail(format!("{}: {e}", algo.name())))?;
                    prop_assert!(sdn.can_allocate(&tree.allocation(&req)));
                }
            }
            // Commit via CP to evolve the state.
            if let Some(tree) = cp.admit(&sdn, &req) {
                sdn.allocate(&tree.allocation(&req)).unwrap();
            }
        }
    }

    #[test]
    fn per_edge_threshold_is_respected(
        net_seed in 0u64..500, wl_seed in 0u64..500
    ) {
        // Drive the network with SP (no thresholds) to random load, then
        // verify any CP admission only crosses links below sigma.
        let mut sdn = build_sdn(net_seed);
        let mut rng = StdRng::seed_from_u64(wl_seed);
        let mut gen = RequestGenerator::new(sdn.node_count());
        let mut sp = ShortestPathBaseline::new();
        for req in gen.generate_batch(30, &mut rng) {
            if let Some(t) = sp.admit(&sdn, &req) {
                sdn.allocate(&t.allocation(&req)).unwrap();
            }
        }
        let model = ExponentialCostModel::for_network(&sdn);
        let sigma = ExponentialCostModel::threshold(&sdn);
        let mut cp = OnlineCp::new().with_threshold_rule(ThresholdRule::PerEdge);
        for req in gen.generate_batch(10, &mut rng) {
            if let Some(tree) = cp.admit(&sdn, &req) {
                for su in &tree.servers {
                    let wv = model.server_weight(&sdn, su.server).unwrap();
                    prop_assert!(wv < sigma, "server weight {wv} >= sigma {sigma}");
                }
                for &e in tree
                    .distribution_edges
                    .iter()
                    .chain(tree.servers.iter().flat_map(|s| s.ingress_edges.iter()))
                {
                    let we = model.edge_weight(&sdn, e);
                    prop_assert!(we < sigma + 1e-4, "edge weight {we} >= sigma {sigma}");
                }
            }
        }
    }

    #[test]
    fn tree_sum_rule_is_at_least_as_strict(
        net_seed in 0u64..500, wl_seed in 0u64..500
    ) {
        // On identical state, any request the tree-sum rule admits, the
        // per-edge rule admits too (each summand <= sum).
        let mut sdn = build_sdn(net_seed);
        let mut rng = StdRng::seed_from_u64(wl_seed);
        let mut gen = RequestGenerator::new(sdn.node_count());
        let mut sp = ShortestPathBaseline::new();
        for req in gen.generate_batch(25, &mut rng) {
            if let Some(t) = sp.admit(&sdn, &req) {
                sdn.allocate(&t.allocation(&req)).unwrap();
            }
        }
        let mut strict = OnlineCp::new().with_threshold_rule(ThresholdRule::TreeSum);
        let mut loose = OnlineCp::new().with_threshold_rule(ThresholdRule::PerEdge);
        for req in gen.generate_batch(10, &mut rng) {
            if strict.admit(&sdn, &req).is_some() {
                prop_assert!(
                    loose.admit(&sdn, &req).is_some(),
                    "per-edge rejected a tree-sum-admissible request"
                );
            }
        }
    }
}
