use nfv_online::{run_online, OnlineCp, ShortestPathBaseline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{annotate, place_servers_random, AnnotationParams, Waxman};
use workload::RequestGenerator;

#[test]
fn online_cp_beats_sp_at_scale() {
    let mut total_cp = 0usize;
    let mut total_sp = 0usize;
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 100;
        let (g, _) = Waxman::new(n).generate(&mut rng);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let mut sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        let mut gen = RequestGenerator::new(n);
        let requests = gen.generate_batch(300, &mut rng);
        let cp = run_online(&mut sdn, &mut OnlineCp::new(), &requests);
        sdn.reset();
        let sp = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        println!("seed {seed}: Online_CP {} SP {}", cp.admitted, sp.admitted);
        total_cp += cp.admitted;
        total_sp += sp.admitted;
    }
    println!("TOTAL Online_CP {total_cp} SP {total_sp}");
    assert!(
        total_cp > total_sp,
        "Online_CP {total_cp} should beat SP {total_sp}"
    );
}
