//! The sequential online-admission simulator behind Figs. 8–9.

use nfv_multicast::PseudoMulticastTree;
use sdn::{MulticastRequest, RequestId, Sdn};

/// An online admission algorithm: decides, per incoming request, whether
/// to admit it and with which pseudo-multicast tree.
///
/// Implementations must only propose trees whose allocation fits the
/// current residual capacities ([`Sdn::can_allocate`]); the simulator
/// treats a failed commit as a bug, not a rejection.
pub trait OnlineAlgorithm {
    /// Human-readable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Evaluates one request against the current network state. Returning
    /// `Some(tree)` admits the request; the simulator commits the tree's
    /// allocation.
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree>;
}

/// Per-request outcome record.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Admitted with this implementation cost.
    Admitted {
        /// The request.
        id: RequestId,
        /// Implementation cost of the chosen pseudo-multicast tree.
        cost: f64,
    },
    /// Rejected.
    Rejected {
        /// The request.
        id: RequestId,
    },
}

/// Aggregate result of one online simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Algorithm that produced this run.
    pub algorithm: &'static str,
    /// Number of admitted requests (the paper's network throughput).
    pub admitted: usize,
    /// Number of rejected requests.
    pub rejected: usize,
    /// Per-request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Total implementation cost over admitted requests.
    pub total_cost: f64,
    /// Mean link-bandwidth utilization at the end of the run.
    pub mean_link_utilization: f64,
    /// Maximum link-bandwidth utilization at the end of the run.
    pub max_link_utilization: f64,
    /// Mean server-computing utilization at the end of the run.
    pub mean_server_utilization: f64,
}

impl SimulationResult {
    /// Admission ratio in `[0, 1]`.
    #[must_use]
    pub fn admission_ratio(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

/// Feeds `requests` one by one to `algorithm`, committing the allocation
/// of every admitted request to `sdn` (which is mutated in place; call
/// [`Sdn::reset`] to reuse it).
///
/// # Panics
///
/// Panics if the algorithm proposes a tree that does not fit residual
/// capacities — that violates the [`OnlineAlgorithm`] contract.
pub fn run_online<A: OnlineAlgorithm + ?Sized>(
    sdn: &mut Sdn,
    algorithm: &mut A,
    requests: &[MulticastRequest],
) -> SimulationResult {
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut admitted = 0;
    let mut rejected = 0;
    let mut total_cost = 0.0;
    for req in requests {
        match algorithm.admit(sdn, req) {
            Some(tree) => {
                debug_assert!(
                    tree.validate(sdn, req).is_ok(),
                    "algorithm {} produced an invalid tree: {:?}",
                    algorithm.name(),
                    tree.validate(sdn, req)
                );
                let alloc = tree.allocation(req);
                sdn.allocate(&alloc).unwrap_or_else(|e| {
                    // lint:allow(P1): an infeasible proposal is an algorithm bug; abort loudly
                    panic!(
                        "algorithm {} proposed an infeasible tree for {}: {e}",
                        algorithm.name(),
                        req.id
                    )
                });
                admitted += 1;
                telemetry::hit(telemetry::Counter::OnlineAdmitted);
                total_cost += tree.total_cost();
                outcomes.push(RequestOutcome::Admitted {
                    id: req.id,
                    cost: tree.total_cost(),
                });
            }
            None => {
                rejected += 1;
                telemetry::hit(telemetry::Counter::OnlineRejected);
                outcomes.push(RequestOutcome::Rejected { id: req.id });
            }
        }
    }

    let links = sdn.link_count();
    let mut mean_link = 0.0;
    let mut max_link: f64 = 0.0;
    for e in sdn.graph().edges() {
        let u = sdn.bandwidth_utilization(e.id);
        mean_link += u;
        max_link = max_link.max(u);
    }
    if links > 0 {
        mean_link /= links as f64;
    }
    let mut mean_server = 0.0;
    for &v in sdn.servers() {
        mean_server += sdn.computing_utilization(v).expect("server"); // lint:allow(P1): v is drawn from servers()
    }
    if !sdn.servers().is_empty() {
        mean_server /= sdn.servers().len() as f64;
    }

    SimulationResult {
        algorithm: algorithm.name(),
        admitted,
        rejected,
        outcomes,
        total_cost,
        mean_link_utilization: mean_link,
        max_link_utilization: max_link,
        mean_server_utilization: mean_server,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnlineCp, ShortestPathBaseline};
    use netgraph::NodeId;
    use sdn::{NfvType, SdnBuilder, ServiceChain};

    fn small_net() -> (Sdn, Vec<NodeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v = bld.add_server(2_000.0, 1.0);
        let d = bld.add_switch();
        bld.add_link(s, v, 500.0, 1.0).unwrap();
        bld.add_link(v, d, 500.0, 1.0).unwrap();
        (bld.build().unwrap(), vec![s, v, d])
    }

    fn reqs(nodes: &[NodeId], count: usize) -> Vec<MulticastRequest> {
        (0..count)
            .map(|i| {
                MulticastRequest::new(
                    RequestId(i as u64),
                    nodes[0],
                    vec![nodes[2]],
                    100.0,
                    ServiceChain::new(vec![NfvType::Firewall]),
                )
            })
            .collect()
    }

    #[test]
    fn admits_until_bandwidth_exhausted() {
        let (mut sdn, nodes) = small_net();
        // 500 Mbps per link, 100 Mbps per request => 5 admissions, but the
        // exponential thresholds may stop slightly earlier; SP fills to
        // the brim.
        let result = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &reqs(&nodes, 8));
        assert_eq!(result.admitted, 5);
        assert_eq!(result.rejected, 3);
        assert!((result.admission_ratio() - 5.0 / 8.0).abs() < 1e-9);
        assert!(result.max_link_utilization > 0.99);
    }

    #[test]
    fn online_cp_also_fills_small_net() {
        let (mut sdn, nodes) = small_net();
        let result = run_online(&mut sdn, &mut OnlineCp::new(), &reqs(&nodes, 8));
        // On a 3-node network the thresholds (sigma = |V| - 1 = 2) bite
        // early: Online_CP deliberately rejects once link weights climb,
        // preserving capacity. At least the first two requests fit.
        assert!(result.admitted >= 2, "admitted {}", result.admitted);
        assert!(result.admitted <= 5);
        assert_eq!(result.admitted + result.rejected, 8);
    }

    #[test]
    fn outcomes_are_ordered_and_consistent() {
        let (mut sdn, nodes) = small_net();
        let result = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &reqs(&nodes, 8));
        assert_eq!(result.outcomes.len(), 8);
        let admitted_count = result
            .outcomes
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Admitted { .. }))
            .count();
        assert_eq!(admitted_count, result.admitted);
        assert!(result.total_cost > 0.0);
        assert_eq!(result.algorithm, "SP");
    }

    #[test]
    fn never_violates_capacities() {
        let (mut sdn, nodes) = small_net();
        let _ = run_online(&mut sdn, &mut OnlineCp::new(), &reqs(&nodes, 20));
        for e in sdn.graph().edges() {
            assert!(sdn.residual_bandwidth(e.id) >= -1e-6);
        }
        for &v in sdn.servers() {
            assert!(sdn.residual_computing(v).unwrap() >= -1e-6);
        }
    }

    #[test]
    fn reset_allows_reuse() {
        let (mut sdn, nodes) = small_net();
        let r1 = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &reqs(&nodes, 8));
        sdn.reset();
        let r2 = run_online(&mut sdn, &mut ShortestPathBaseline::new(), &reqs(&nodes, 8));
        assert_eq!(r1.admitted, r2.admitted);
    }

    #[test]
    fn empty_request_sequence() {
        let (mut sdn, _) = small_net();
        let r = run_online(&mut sdn, &mut OnlineCp::new(), &[]);
        assert_eq!(r.admitted, 0);
        assert_eq!(r.admission_ratio(), 0.0);
    }
}

/// Gini coefficient of the link-bandwidth utilizations in `[0, 1]`:
/// `0` = perfectly even load, `1` = all load on one link. The
/// load-balance metric behind the paper's argument for exponential
/// pricing — `Online_CP` should end a run with a lower Gini than `SP`.
#[must_use]
pub fn link_utilization_gini(sdn: &Sdn) -> f64 {
    let mut utils: Vec<f64> = sdn
        .graph()
        .edges()
        .map(|e| sdn.bandwidth_utilization(e.id))
        .collect();
    if utils.is_empty() {
        return 0.0;
    }
    utils.sort_by(|a, b| a.partial_cmp(b).expect("utilizations are finite")); // lint:allow(P1): utilizations are finite ratios of validated capacities
    let n = utils.len() as f64;
    let sum: f64 = utils.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = utils
        .iter()
        .enumerate()
        .map(|(i, u)| (i as f64 + 1.0) * u)
        .sum();
    ((2.0 * weighted) / (n * sum) - (n + 1.0) / n).max(0.0)
}

#[cfg(test)]
mod gini_tests {
    use super::*;
    use netgraph::EdgeId;
    use sdn::{Allocation, RequestId, SdnBuilder};

    fn star(n: usize) -> Sdn {
        let mut b = SdnBuilder::new();
        let hub = b.add_switch();
        for _ in 0..n {
            let leaf = b.add_switch();
            b.add_link(hub, leaf, 1_000.0, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn idle_network_has_zero_gini() {
        assert_eq!(link_utilization_gini(&star(5)), 0.0);
    }

    #[test]
    fn even_load_has_zero_gini() {
        let mut sdn = star(4);
        let mut a = Allocation::new(RequestId(0));
        for i in 0..4 {
            a.add_link(EdgeId::new(i), 500.0);
        }
        sdn.allocate(&a).unwrap();
        assert!(link_utilization_gini(&sdn) < 1e-9);
    }

    #[test]
    fn concentrated_load_has_high_gini() {
        let mut sdn = star(5);
        let mut a = Allocation::new(RequestId(0));
        a.add_link(EdgeId::new(0), 900.0);
        sdn.allocate(&a).unwrap();
        let g = link_utilization_gini(&sdn);
        assert!(g > 0.7, "gini {g} too low for a single loaded link");
    }
}
