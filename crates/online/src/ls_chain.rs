//! A Lukovszki–Schmid-style online admission policy with bounded
//! embedding length.
//!
//! Lukovszki & Schmid ("Online Admission Control and Embedding of Service
//! Chains", SIROCCO 2015) admit a service chain only if it can be embedded
//! on a path of at most `L` hops, and prove an `O(log L)` competitive
//! ratio with no preemption: refusing long embeddings preserves capacity
//! for future requests instead of burning it on sprawling routes. This
//! module adapts the policy to NFV multicast: a candidate server `v` is
//! *compliant* when, for **every** destination `d`, the processed route
//! `s_k → v → d` uses at most `L` hops; among compliant servers the one
//! with the fewest total hops wins. Unlike [`ShortestPathBaseline`], which
//! admits any connected route no matter how long, this policy rejects a
//! request outright when its only embeddings are long — the
//! [`telemetry::Counter::OnlineHopBoundRejections`] counter records
//! exactly those bound-caused rejections.
//!
//! The default budget `L = 2·⌈log₂ |V|⌉` tracks the paper's logarithmic
//! length classes; [`LsChainAdmission::with_hop_budget`] overrides it.
//!
//! [`ShortestPathBaseline`]: crate::ShortestPathBaseline

use crate::OnlineAlgorithm;
use netgraph::{dijkstra_with_targets, induced_subgraph, EdgeId};
use nfv_multicast::{PseudoMulticastTree, ServerUse};
use sdn::{MulticastRequest, Sdn};

/// The Lukovszki–Schmid-style bounded-length admission policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct LsChainAdmission {
    /// Explicit hop budget; `None` derives `2·⌈log₂ |V|⌉` per network.
    hop_budget: Option<usize>,
}

impl LsChainAdmission {
    /// Creates the policy with the derived `2·⌈log₂ |V|⌉` hop budget.
    #[must_use]
    pub fn new() -> Self {
        LsChainAdmission::default()
    }

    /// Overrides the hop budget `L` (the maximum processed-route length
    /// `s_k → v → d` tolerated for any destination).
    #[must_use]
    pub fn with_hop_budget(mut self, l: usize) -> Self {
        self.hop_budget = Some(l);
        self
    }

    /// The hop budget this policy applies on `sdn`.
    #[must_use]
    pub fn hop_budget(&self, sdn: &Sdn) -> usize {
        match self.hop_budget {
            Some(l) => l,
            None => {
                let n = sdn.graph().node_count().max(2) as f64;
                2 * (n.log2().ceil() as usize).max(1)
            }
        }
    }
}

impl OnlineAlgorithm for LsChainAdmission {
    fn name(&self) -> &'static str {
        "LS_Online"
    }

    // lint:entry(api)
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree> {
        let b = request.bandwidth;
        let demand = request.computing_demand();
        let budget = self.hop_budget(sdn) as f64;

        // Length classes are measured on the residual-feasible alive
        // subgraph with uniform weights, so "hops" means hops.
        let filtered = induced_subgraph(
            sdn.graph(),
            |_| true,
            |e| sdn.is_link_alive(e) && sdn.residual_bandwidth(e) + sdn::CAPACITY_EPS >= b,
        );
        let g = filtered.graph();
        let mut uniform = netgraph::Graph::with_nodes(g.node_count());
        for e in g.edges() {
            // Copies an edge the parent graph already validated.
            uniform.add_edge(e.u, e.v, 1.0).ok()?;
        }

        let mut best: Option<(f64, PseudoMulticastTree)> = None;
        let mut bound_blocked = false;
        let spt_source = dijkstra_with_targets(&uniform, request.source, sdn.servers());
        for &v in sdn.servers() {
            // v is drawn from servers(), so the residual lookup cannot
            // miss; a dead server reads as zero capacity.
            let residual = sdn.residual_computing(v).unwrap_or(0.0);
            if !sdn.is_server_alive(v) || residual + sdn::CAPACITY_EPS < demand {
                continue;
            }
            let Some(ingress) = spt_source.path_to(v) else {
                continue;
            };
            let h_in = ingress.cost();
            if h_in > budget {
                // Even the empty-destination prefix is too long.
                bound_blocked = true;
                continue;
            }
            let spt_v = dijkstra_with_targets(&uniform, v, &request.destinations);
            let mut tree_edges: Vec<EdgeId> = Vec::new();
            let mut hops = h_in;
            let mut feasible = true;
            let mut compliant = true;
            for &d in &request.destinations {
                let Some(p) = spt_v.path_to(d) else {
                    feasible = false;
                    break;
                };
                // The Lukovszki–Schmid length constraint: the processed
                // route to *this* destination must fit the budget.
                if h_in + p.cost() > budget {
                    compliant = false;
                    break;
                }
                hops += p.cost();
                tree_edges.extend(p.edges().iter().copied());
            }
            if !feasible {
                continue;
            }
            if !compliant {
                bound_blocked = true;
                continue;
            }
            tree_edges.sort_unstable();
            tree_edges.dedup();

            if best.as_ref().is_none_or(|(h, _)| hops < *h) {
                let ingress_ids = filtered.parent_edges(ingress.edges());
                let distribution = filtered.parent_edges(&tree_edges);
                let ingress_cost: f64 = ingress_ids
                    .iter()
                    .map(|&e| sdn.unit_bandwidth_cost(e) * b)
                    .sum();
                // v is drawn from servers(), so the cost lookup cannot miss.
                let computing_cost = sdn.unit_computing_cost(v).unwrap_or(0.0) * demand;
                let bandwidth_cost: f64 = ingress_cost
                    + distribution
                        .iter()
                        .map(|&e| sdn.unit_bandwidth_cost(e) * b)
                        .sum::<f64>();
                best = Some((
                    hops,
                    PseudoMulticastTree {
                        request: request.id,
                        source: request.source,
                        servers: vec![ServerUse {
                            server: v,
                            ingress_edges: ingress_ids,
                            ingress_cost,
                            computing_cost,
                        }],
                        distribution_edges: distribution,
                        extra_traversals: Vec::new(),
                        bandwidth_cost,
                        computing_cost,
                    },
                ));
            }
        }

        let Some((_, tree)) = best else {
            if bound_blocked {
                // At least one server was connected and capacitated but
                // every compliant embedding exceeded L: a pure
                // length-bound rejection, the policy's signature move.
                telemetry::hit(telemetry::Counter::OnlineHopBoundRejections);
            }
            return None;
        };
        if sdn.can_allocate(&tree.allocation(request)) {
            Some(tree)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_online, ShortestPathBaseline};
    use netgraph::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdn::{NfvType, RequestId, SdnBuilder, ServiceChain};
    use topology::{annotate, place_servers_random, AnnotationParams, Waxman};
    use workload::RequestGenerator;

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Nat])
    }

    /// A long line: s - x1 - x2 - x3 - v(server) - d.
    fn line_fixture() -> (Sdn, Vec<NodeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let x1 = bld.add_switch();
        let x2 = bld.add_switch();
        let x3 = bld.add_switch();
        let v = bld.add_server(8_000.0, 1.0);
        let d = bld.add_switch();
        bld.add_link(s, x1, 1_000.0, 1.0).unwrap();
        bld.add_link(x1, x2, 1_000.0, 1.0).unwrap();
        bld.add_link(x2, x3, 1_000.0, 1.0).unwrap();
        bld.add_link(x3, v, 1_000.0, 1.0).unwrap();
        bld.add_link(v, d, 1_000.0, 1.0).unwrap();
        (bld.build().unwrap(), vec![s, x1, x2, x3, v, d])
    }

    #[test]
    fn admits_within_budget() {
        let (sdn, n) = line_fixture();
        let req = MulticastRequest::new(RequestId(0), n[0], vec![n[5]], 100.0, chain());
        // Route needs 5 hops; budget 5 admits it.
        let tree = LsChainAdmission::new()
            .with_hop_budget(5)
            .admit(&sdn, &req)
            .expect("within budget");
        tree.validate(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![n[4]]);
    }

    #[test]
    fn rejects_beyond_budget_where_sp_admits() {
        let (sdn, n) = line_fixture();
        let req = MulticastRequest::new(RequestId(0), n[0], vec![n[5]], 100.0, chain());
        // Budget 4 < the only 5-hop embedding: LS refuses, SP happily
        // admits — the policy difference in one assertion.
        telemetry::enable();
        let before = telemetry::counter_value(telemetry::Counter::OnlineHopBoundRejections);
        let mut ls = LsChainAdmission::new().with_hop_budget(4);
        assert!(ls.admit(&sdn, &req).is_none());
        let after = telemetry::counter_value(telemetry::Counter::OnlineHopBoundRejections);
        assert_eq!(after, before + 1);
        assert!(ShortestPathBaseline::new().admit(&sdn, &req).is_some());
    }

    #[test]
    fn derived_budget_scales_with_network_size() {
        let (sdn, _) = line_fixture();
        // |V| = 6 → 2·⌈log2 6⌉ = 6.
        assert_eq!(LsChainAdmission::new().hop_budget(&sdn), 6);
        assert_eq!(
            LsChainAdmission::new().with_hop_budget(3).hop_budget(&sdn),
            3
        );
    }

    #[test]
    fn pinned_seed_admissions_regression() {
        // Pins the full admission profile on a fixed random instance so
        // any behavioral drift in the policy is caught, not just compile
        // errors. Counts re-derived only on an intentional policy change.
        let mut rng = StdRng::seed_from_u64(7);
        let (g, _) = Waxman::new(40).generate(&mut rng);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let mut sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        let mut gen = RequestGenerator::new(40);
        let requests = gen.generate_batch(120, &mut rng);
        let r = run_online(&mut sdn, &mut LsChainAdmission::new(), &requests);
        assert_eq!(r.admitted + r.rejected, 120);
        assert_eq!((r.admitted, r.rejected), (35, 85));
    }
}
