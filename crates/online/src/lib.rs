//! # nfv-online
//!
//! Online admission of NFV-enabled multicast requests (§V of the paper):
//!
//! * [`OnlineCp`] — `Online_CP` (Algorithm 2): the `O(log n)`-competitive
//!   online algorithm. Resources are priced by the exponential cost model
//!   (Eq. 1–2, `α = β = 2|V|`); a request is admitted through the server
//!   and Steiner tree minimizing the normalized weight, subject to the
//!   admission thresholds `σ_v = σ_e = |V| − 1`; destinations outside the
//!   chosen server's subtree are reached by sending the processed stream
//!   back up to the LCA (`u = LCA(v, d_1, …, d_m)`).
//! * [`ShortestPathBaseline`] — the `SP` heuristic of §VI-A: uniform
//!   weights, shortest path to each candidate server plus a shortest-path
//!   tree to the destinations.
//! * [`LsChainAdmission`] — a Lukovszki–Schmid-style rival: admit only
//!   embeddings whose processed route to every destination fits a hop
//!   budget `L` (default `2·⌈log₂ |V|⌉`).
//! * [`EmpPricing`] — an Even–Medina–Patt-Shamir-style rival: admit the
//!   cheapest exponential-priced embedding iff its price is covered by
//!   the request's benefit ([`request_revenue`]).
//! * [`run_online`] — the sequential admission simulator used by Figs.
//!   8–9: feeds a request sequence to an algorithm, commits allocations,
//!   and tracks throughput and utilization.
//! * [`offline_greedy_benchmark`] / [`offline_exact_benchmark`] — offline
//!   packing yardsticks for [`empirical_competitive_ratio`]; the exact
//!   variant is limited to small instances.
//!
//! ## Example
//!
//! ```
//! use nfv_online::{run_online, OnlineCp, OnlineAlgorithm};
//! use sdn::{MulticastRequest, NfvType, RequestId, SdnBuilder, ServiceChain};
//!
//! # fn main() -> Result<(), sdn::SdnError> {
//! let mut b = SdnBuilder::new();
//! let s = b.add_switch();
//! let m = b.add_server(8_000.0, 1.0);
//! let d = b.add_switch();
//! b.add_link(s, m, 10_000.0, 1.0)?;
//! b.add_link(m, d, 10_000.0, 1.0)?;
//! let mut sdn = b.build()?;
//!
//! let requests = vec![MulticastRequest::new(
//!     RequestId(0), s, vec![d], 100.0,
//!     ServiceChain::new(vec![NfvType::Firewall]),
//! )];
//! let result = run_online(&mut sdn, &mut OnlineCp::new(), &requests);
//! assert_eq!(result.admitted, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod benchmark;
mod dynamics;
mod emp;
mod ls_chain;
mod multi;
mod online_cp;
mod simulation;
mod sp;

pub use benchmark::{
    empirical_competitive_ratio, offline_exact_benchmark, offline_greedy_benchmark,
};
pub use dynamics::{run_dynamic, ActiveSessions, DynamicResult, TimedRequest};
pub use emp::{request_revenue, EmpPricing};
pub use ls_chain::LsChainAdmission;
pub use multi::OnlineCpMulti;
pub use online_cp::{CostMode, OnlineCp, ThresholdRule};
pub use simulation::{
    link_utilization_gini, run_online, OnlineAlgorithm, RequestOutcome, SimulationResult,
};
pub use sp::ShortestPathBaseline;
