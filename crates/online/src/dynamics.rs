//! Arrival/departure dynamics — an *extension* beyond the paper.
//!
//! The paper's online model admits requests that hold their resources
//! forever. Real multicast sessions (conferences, streams) end; this
//! module replays a timed workload where each admitted session releases
//! its allocation at its departure time, so long simulations reach a
//! steady state instead of inevitable saturation. The admission
//! algorithms themselves are unchanged — any [`OnlineAlgorithm`] plugs
//! in.

use crate::OnlineAlgorithm;
use sdn::{Allocation, MulticastRequest, RequestId, Sdn, SdnError};
use std::collections::BTreeMap;

/// A request with an arrival time and a holding duration.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// The request itself.
    pub request: MulticastRequest,
    /// Arrival time (arbitrary monotone units).
    pub arrival: f64,
    /// How long an admitted session holds its resources.
    pub duration: f64,
}

impl TimedRequest {
    /// Creates a timed request.
    ///
    /// # Panics
    ///
    /// Panics unless `arrival >= 0` and `duration > 0` are finite; use
    /// [`TimedRequest::try_new`] for untrusted timing data.
    #[must_use]
    pub fn new(request: MulticastRequest, arrival: f64, duration: f64) -> Self {
        Self::try_new(request, arrival, duration).unwrap_or_else(|e| {
            // lint:allow(P1): documented panic contract; try_new is the fallible path
            panic!("invariant violated: timed workloads are well-formed, but {e}")
        })
    }

    /// Fallible constructor for timing data from untrusted input.
    ///
    /// # Errors
    ///
    /// [`SdnError::InfeasibleRequest`] unless `arrival >= 0` and
    /// `duration > 0` are finite.
    pub fn try_new(
        request: MulticastRequest,
        arrival: f64,
        duration: f64,
    ) -> Result<Self, SdnError> {
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(SdnError::InfeasibleRequest {
                reason: format!("bad arrival {arrival}"),
            });
        }
        if !duration.is_finite() || duration <= 0.0 {
            return Err(SdnError::InfeasibleRequest {
                reason: format!("bad duration {duration}"),
            });
        }
        Ok(TimedRequest {
            request,
            arrival,
            duration,
        })
    }
}

/// Active-session table keyed by request id, with a double-release guard.
///
/// Departure handling used to be a bare `Vec<(f64, Allocation)>` drained
/// inline by [`run_dynamic`]; once an external actor (e.g. a repair
/// engine) can also tear sessions down, a departure must not release an
/// allocation twice. All mutations go through this table: a departure
/// for an id that no longer holds resources is a logged no-op.
#[derive(Debug, Clone, Default)]
pub struct ActiveSessions {
    sessions: BTreeMap<RequestId, (f64, Allocation)>,
    double_release_count: u64,
}

impl ActiveSessions {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ActiveSessions::default()
    }

    /// Number of sessions currently holding resources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// `true` when `id` is active.
    #[must_use]
    pub fn contains(&self, id: RequestId) -> bool {
        self.sessions.contains_key(&id)
    }

    /// How many departures hit a session that no longer held resources
    /// (the double-release guard fired).
    #[must_use]
    pub fn double_release_count(&self) -> u64 {
        self.double_release_count
    }

    /// Records an admitted session holding `alloc` until `departure`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id — two live sessions must never share one
    /// (the second would silently shadow the first's allocation).
    pub fn insert(&mut self, id: RequestId, departure: f64, alloc: Allocation) {
        let prev = self.sessions.insert(id, (departure, alloc));
        assert!(
            prev.is_none(),
            "invariant violated: session {id} was already active"
        );
    }

    /// Departs `id` now, releasing its allocation. Returns `true` if the
    /// session was active; an unknown id — already departed, or torn
    /// down by a repair engine — is a guarded no-op returning `false`,
    /// surfaced through the telemetry registry (an `UnknownDeparture`
    /// event plus the shared `double_release` counter) rather than stderr.
    ///
    /// # Panics
    ///
    /// Panics if the ledger refuses the release (accounting bug).
    pub fn depart(&mut self, sdn: &mut Sdn, id: RequestId) -> bool {
        match self.sessions.remove(&id) {
            Some((_, alloc)) => {
                sdn.release(&alloc).expect("release departed session"); // lint:allow(P1): the session allocation was applied, so release balances
                telemetry::hit(telemetry::Counter::SessionsDeparted);
                telemetry::gauge_set(telemetry::Gauge::ActiveSessions, self.sessions.len() as u64);
                true
            }
            None => {
                self.double_release_count += 1;
                telemetry::hit(telemetry::Counter::DoubleRelease);
                telemetry::record(telemetry::Event::UnknownDeparture { request: id.0 });
                false
            }
        }
    }

    /// Drops `id` from the table *without* releasing — for sessions whose
    /// resources were already released elsewhere (e.g. by a repair
    /// engine that tore the session down). Returns `true` if removed.
    pub fn forget(&mut self, id: RequestId) -> bool {
        self.sessions.remove(&id).is_some()
    }

    /// Releases every session whose departure time is `<= now`, in
    /// ascending id order. Returns how many departed.
    ///
    /// # Panics
    ///
    /// Panics if the ledger refuses a release (accounting bug).
    pub fn release_due(&mut self, sdn: &mut Sdn, now: f64) -> usize {
        self.release_due_detailed(sdn, now).len()
    }

    /// Like [`ActiveSessions::release_due`], but returns the released
    /// sessions themselves (ascending id order) so callers that layer
    /// bookkeeping on top — e.g. a speculative pipeline tracking which
    /// links and servers a release touched — see exactly what was freed.
    ///
    /// # Panics
    ///
    /// Panics if the ledger refuses a release (accounting bug).
    pub fn release_due_detailed(
        &mut self,
        sdn: &mut Sdn,
        now: f64,
    ) -> Vec<(RequestId, Allocation)> {
        let due: Vec<RequestId> = self
            .sessions
            .iter()
            .filter(|(_, (dep, _))| *dep <= now)
            .map(|(&id, _)| id)
            .collect();
        let mut released = Vec::with_capacity(due.len());
        for id in due {
            let (_, alloc) = self.sessions.remove(&id).expect("just listed"); // lint:allow(P1): due was collected from live sessions just above
            sdn.release(&alloc).expect("release departed session"); // lint:allow(P1): the session allocation was applied, so release balances
            released.push((id, alloc));
        }
        released
    }
}

/// Result of a dynamic (arrival/departure) simulation.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Sessions admitted.
    pub admitted: usize,
    /// Sessions rejected.
    pub rejected: usize,
    /// Ids of admitted sessions, in arrival order.
    pub admitted_ids: Vec<RequestId>,
    /// Peak number of simultaneously held sessions.
    pub peak_concurrent: usize,
}

impl DynamicResult {
    /// Admission ratio in `[0, 1]`.
    #[must_use]
    pub fn admission_ratio(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

/// Replays a timed workload: requests are offered in arrival order, and
/// every admitted session's allocation is released once its departure
/// time is at or before the current arrival instant. A session departing
/// *exactly* when a request arrives is released first, so its capacity is
/// available to that arrival — the same `dep <= now` semantic as
/// [`ActiveSessions::release_due`]. `requests` need not be pre-sorted.
///
/// # Panics
///
/// Panics if the algorithm proposes a tree that does not fit the current
/// residual capacities (contract violation), or if a release fails
/// (ledger accounting bug).
pub fn run_dynamic<A: OnlineAlgorithm + ?Sized>(
    sdn: &mut Sdn,
    algorithm: &mut A,
    requests: &[TimedRequest],
) -> DynamicResult {
    let mut order: Vec<&TimedRequest> = requests.iter().collect();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals")); // lint:allow(P1): arrival times are validated finite at construction

    let mut active = ActiveSessions::new();
    let mut admitted_ids = Vec::new();
    let mut rejected = 0usize;
    let mut peak = 0usize;

    for tr in order {
        // Release everything that departed at or before this arrival
        // (`dep <= now`: a coinciding departure frees capacity for this
        // very request).
        let now = tr.arrival;
        active.release_due(sdn, now);

        match algorithm.admit(sdn, &tr.request) {
            Some(tree) => {
                let alloc = tree.allocation(&tr.request);
                sdn.allocate(&alloc).unwrap_or_else(|e| {
                    // lint:allow(P1): an infeasible proposal is an algorithm bug; abort loudly
                    panic!(
                        "algorithm {} proposed an infeasible tree for {}: {e}",
                        algorithm.name(),
                        tr.request.id
                    )
                });
                active.insert(tr.request.id, now + tr.duration, alloc);
                admitted_ids.push(tr.request.id);
                peak = peak.max(active.len());
                telemetry::hit(telemetry::Counter::OnlineAdmitted);
                telemetry::gauge_set(telemetry::Gauge::ActiveSessions, active.len() as u64);
            }
            None => {
                rejected += 1;
                telemetry::hit(telemetry::Counter::OnlineRejected);
            }
        }
    }

    DynamicResult {
        algorithm: algorithm.name(),
        admitted: admitted_ids.len(),
        rejected,
        admitted_ids,
        peak_concurrent: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnlineCp, ShortestPathBaseline};
    use netgraph::NodeId;
    use sdn::{NfvType, SdnBuilder, ServiceChain};

    fn tiny_net() -> (Sdn, Vec<NodeId>) {
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v = b.add_server(2_000.0, 1.0);
        let d = b.add_switch();
        b.add_link(s, v, 250.0, 1.0).unwrap();
        b.add_link(v, d, 250.0, 1.0).unwrap();
        (b.build().unwrap(), vec![s, v, d])
    }

    fn timed(nodes: &[NodeId], id: u64, arrival: f64, duration: f64) -> TimedRequest {
        TimedRequest::new(
            MulticastRequest::new(
                RequestId(id),
                nodes[0],
                vec![nodes[2]],
                100.0,
                ServiceChain::new(vec![NfvType::Firewall]),
            ),
            arrival,
            duration,
        )
    }

    #[test]
    fn departures_free_capacity() {
        let (mut sdn, nodes) = tiny_net();
        // Links fit 2 concurrent sessions. Three overlapping sessions:
        // the third is rejected. With departures, a fourth arriving after
        // the first two left is admitted again.
        let requests = vec![
            timed(&nodes, 0, 0.0, 10.0),
            timed(&nodes, 1, 1.0, 10.0),
            timed(&nodes, 2, 2.0, 10.0),  // rejected: both slots busy
            timed(&nodes, 3, 20.0, 10.0), // admitted: slots free again
        ];
        let r = run_dynamic(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        assert_eq!(r.admitted, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(
            r.admitted_ids,
            vec![RequestId(0), RequestId(1), RequestId(3)]
        );
        assert_eq!(r.peak_concurrent, 2);
        assert!((r.admission_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn without_departures_it_matches_static_behaviour() {
        // All sessions effectively infinite: same admissions as run_online.
        let (mut sdn, nodes) = tiny_net();
        let requests: Vec<TimedRequest> = (0..5).map(|i| timed(&nodes, i, i as f64, 1e9)).collect();
        let dynamic = run_dynamic(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        let mut sdn2 = tiny_net().0;
        let plain: Vec<MulticastRequest> = requests.iter().map(|t| t.request.clone()).collect();
        let fixed = crate::run_online(&mut sdn2, &mut ShortestPathBaseline::new(), &plain);
        assert_eq!(dynamic.admitted, fixed.admitted);
    }

    #[test]
    fn unsorted_input_is_sorted_by_arrival() {
        let (mut sdn, nodes) = tiny_net();
        let requests = vec![timed(&nodes, 1, 20.0, 5.0), timed(&nodes, 0, 0.0, 5.0)];
        let r = run_dynamic(&mut sdn, &mut OnlineCp::new(), &requests);
        assert_eq!(r.admitted_ids, vec![RequestId(0), RequestId(1)]);
        assert_eq!(r.peak_concurrent, 1);
    }

    #[test]
    fn network_returns_to_idle_after_all_departures() {
        let (mut sdn, nodes) = tiny_net();
        let fresh = sdn.clone();
        let requests = vec![timed(&nodes, 0, 0.0, 1.0), timed(&nodes, 1, 5.0, 1.0)];
        let _ = run_dynamic(&mut sdn, &mut OnlineCp::new(), &requests);
        // The second arrival releases the first session; release the
        // second manually via reset check: residuals must only differ by
        // the still-active session.
        sdn.reset();
        assert_eq!(sdn, fresh);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn zero_duration_rejected() {
        let (_, nodes) = tiny_net();
        let _ = timed(&nodes, 0, 0.0, 0.0);
    }

    #[test]
    fn try_new_rejects_instead_of_panicking() {
        let (_, nodes) = tiny_net();
        let good = timed(&nodes, 0, 0.0, 1.0);
        assert!(TimedRequest::try_new(good.request.clone(), -1.0, 5.0).is_err());
        assert!(TimedRequest::try_new(good.request.clone(), 0.0, 0.0).is_err());
        assert!(TimedRequest::try_new(good.request.clone(), f64::NAN, 5.0).is_err());
        assert!(TimedRequest::try_new(good.request.clone(), 0.0, f64::INFINITY).is_err());
        let ok = TimedRequest::try_new(good.request, 3.0, 5.0).unwrap();
        assert_eq!(ok.arrival, 3.0);
    }

    #[test]
    fn departure_after_external_teardown_is_a_guarded_no_op() {
        // A repair engine (or any external actor) tore the session down
        // and released its resources; the scheduled departure later fires
        // for the same id. It must not release twice.
        let (mut sdn, nodes) = tiny_net();
        let fresh = sdn.clone();
        let tr = timed(&nodes, 7, 0.0, 10.0);
        let tree = ShortestPathBaseline::new()
            .admit(&sdn, &tr.request)
            .unwrap();
        let alloc = tree.allocation(&tr.request);
        sdn.allocate(&alloc).unwrap();
        let mut active = ActiveSessions::new();
        active.insert(RequestId(7), 10.0, alloc.clone());

        // External teardown: resources released outside the table.
        sdn.release(&alloc).unwrap();
        assert!(active.forget(RequestId(7)));

        // The departure is now a no-op: no second release, guard counted.
        assert!(!active.depart(&mut sdn, RequestId(7)));
        assert_eq!(active.double_release_count(), 1);
        assert_eq!(sdn, fresh);

        // Same for a time-driven departure: nothing is due.
        assert_eq!(active.release_due(&mut sdn, 1e9), 0);
        assert_eq!(sdn, fresh);
    }

    #[test]
    fn double_depart_is_a_guarded_no_op() {
        let (mut sdn, nodes) = tiny_net();
        let fresh = sdn.clone();
        let tr = timed(&nodes, 0, 0.0, 10.0);
        let tree = ShortestPathBaseline::new()
            .admit(&sdn, &tr.request)
            .unwrap();
        let alloc = tree.allocation(&tr.request);
        sdn.allocate(&alloc).unwrap();
        let mut active = ActiveSessions::new();
        active.insert(RequestId(0), 10.0, alloc);
        assert!(active.depart(&mut sdn, RequestId(0)));
        assert!(!active.depart(&mut sdn, RequestId(0)));
        assert_eq!(active.double_release_count(), 1);
        assert_eq!(sdn, fresh);
    }

    #[test]
    fn release_due_detailed_returns_freed_allocations_in_id_order() {
        // Like tiny_net, but with room for three concurrent sessions.
        let (mut sdn, nodes) = {
            let mut b = SdnBuilder::new();
            let s = b.add_switch();
            let v = b.add_server(20_000.0, 1.0);
            let d = b.add_switch();
            b.add_link(s, v, 1000.0, 1.0).unwrap();
            b.add_link(v, d, 1000.0, 1.0).unwrap();
            (b.build().unwrap(), vec![s, v, d])
        };
        let fresh = sdn.clone();
        let mut active = ActiveSessions::new();
        for id in [3u64, 1, 2] {
            let tr = timed(&nodes, id, 0.0, 10.0);
            // Admissions on separate Sdn clones so all three fit.
            let tree = ShortestPathBaseline::new()
                .admit(&fresh, &tr.request)
                .unwrap();
            let alloc = tree.allocation(&tr.request);
            sdn.allocate(&alloc).unwrap();
            let departure = if id == 2 { 50.0 } else { 10.0 };
            active.insert(tr.request.id, departure, alloc);
        }
        let released = active.release_due_detailed(&mut sdn, 10.0);
        let ids: Vec<RequestId> = released.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![RequestId(1), RequestId(3)]);
        for (id, alloc) in &released {
            assert_eq!(alloc.request(), *id);
            assert!(!alloc.is_empty());
        }
        assert!(active.contains(RequestId(2)));
        assert_eq!(active.release_due(&mut sdn, 100.0), 1);
        assert_eq!(sdn, fresh);
    }

    #[test]
    fn coinciding_departure_is_released_before_the_arrival() {
        // Pins the departure-tie semantic: `dep <= now`. Both link slots
        // are busy until exactly t = 10; a third request arriving at
        // exactly 10.0 fits only if the coinciding departures are
        // released first. Under a strict `dep < now` reading it would be
        // rejected.
        let (mut sdn, nodes) = tiny_net();
        let requests = vec![
            timed(&nodes, 0, 0.0, 10.0), // departs exactly at 10.0
            timed(&nodes, 1, 0.0, 10.0), // departs exactly at 10.0
            timed(&nodes, 2, 10.0, 1.0), // fits only post-release
        ];
        let r = run_dynamic(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        assert_eq!(r.admitted, 3);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.peak_concurrent, 2);
    }

    #[test]
    fn max_duration_sessions_never_release_at_finite_times() {
        // duration = f64::MAX with a nonzero arrival: the departure time
        // saturates at f64::MAX (still finite), so no realistic clock
        // ever releases it — only an explicit drain at f64::MAX does.
        let (mut sdn, nodes) = tiny_net();
        let fresh = sdn.clone();
        let tr = timed(&nodes, 0, 5.0, f64::MAX);
        assert_eq!(tr.arrival + tr.duration, f64::MAX);
        let tree = ShortestPathBaseline::new()
            .admit(&sdn, &tr.request)
            .unwrap();
        let alloc = tree.allocation(&tr.request);
        sdn.allocate(&alloc).unwrap();
        let mut active = ActiveSessions::new();
        active.insert(tr.request.id, tr.arrival + tr.duration, alloc);

        assert_eq!(active.release_due(&mut sdn, 1e300), 0);
        assert!(active.contains(tr.request.id));
        assert_ne!(sdn, fresh);

        // Draining at the saturated departure instant balances the ledger.
        assert_eq!(active.release_due(&mut sdn, f64::MAX), 1);
        assert!(active.is_empty());
        assert_eq!(sdn, fresh);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_active_id_panics() {
        let mut active = ActiveSessions::new();
        active.insert(RequestId(1), 1.0, Allocation::new(RequestId(1)));
        active.insert(RequestId(1), 2.0, Allocation::new(RequestId(1)));
    }
}
