//! Arrival/departure dynamics — an *extension* beyond the paper.
//!
//! The paper's online model admits requests that hold their resources
//! forever. Real multicast sessions (conferences, streams) end; this
//! module replays a timed workload where each admitted session releases
//! its allocation at its departure time, so long simulations reach a
//! steady state instead of inevitable saturation. The admission
//! algorithms themselves are unchanged — any [`OnlineAlgorithm`] plugs
//! in.

use crate::OnlineAlgorithm;
use sdn::{MulticastRequest, RequestId, Sdn};

/// A request with an arrival time and a holding duration.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// The request itself.
    pub request: MulticastRequest,
    /// Arrival time (arbitrary monotone units).
    pub arrival: f64,
    /// How long an admitted session holds its resources.
    pub duration: f64,
}

impl TimedRequest {
    /// Creates a timed request.
    ///
    /// # Panics
    ///
    /// Panics unless `arrival >= 0` and `duration > 0` are finite.
    #[must_use]
    pub fn new(request: MulticastRequest, arrival: f64, duration: f64) -> Self {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "bad arrival {arrival}"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "bad duration {duration}"
        );
        TimedRequest {
            request,
            arrival,
            duration,
        }
    }
}

/// Result of a dynamic (arrival/departure) simulation.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Sessions admitted.
    pub admitted: usize,
    /// Sessions rejected.
    pub rejected: usize,
    /// Ids of admitted sessions, in arrival order.
    pub admitted_ids: Vec<RequestId>,
    /// Peak number of simultaneously held sessions.
    pub peak_concurrent: usize,
}

impl DynamicResult {
    /// Admission ratio in `[0, 1]`.
    #[must_use]
    pub fn admission_ratio(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

/// Replays a timed workload: requests are offered in arrival order, and
/// every admitted session's allocation is released once its departure
/// time passes. `requests` need not be pre-sorted.
///
/// # Panics
///
/// Panics if the algorithm proposes a tree that does not fit the current
/// residual capacities (contract violation), or if a release fails
/// (ledger accounting bug).
pub fn run_dynamic<A: OnlineAlgorithm + ?Sized>(
    sdn: &mut Sdn,
    algorithm: &mut A,
    requests: &[TimedRequest],
) -> DynamicResult {
    let mut order: Vec<&TimedRequest> = requests.iter().collect();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));

    // Active sessions: (departure time, allocation).
    let mut active: Vec<(f64, sdn::Allocation)> = Vec::new();
    let mut admitted_ids = Vec::new();
    let mut rejected = 0usize;
    let mut peak = 0usize;

    for tr in order {
        // Release everything that departed before this arrival.
        let now = tr.arrival;
        let mut i = 0;
        while i < active.len() {
            if active[i].0 <= now {
                let (_, alloc) = active.swap_remove(i);
                sdn.release(&alloc).expect("release departed session");
            } else {
                i += 1;
            }
        }

        match algorithm.admit(sdn, &tr.request) {
            Some(tree) => {
                let alloc = tree.allocation(&tr.request);
                sdn.allocate(&alloc).unwrap_or_else(|e| {
                    panic!(
                        "algorithm {} proposed an infeasible tree for {}: {e}",
                        algorithm.name(),
                        tr.request.id
                    )
                });
                active.push((now + tr.duration, alloc));
                admitted_ids.push(tr.request.id);
                peak = peak.max(active.len());
            }
            None => rejected += 1,
        }
    }

    DynamicResult {
        algorithm: algorithm.name(),
        admitted: admitted_ids.len(),
        rejected,
        admitted_ids,
        peak_concurrent: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnlineCp, ShortestPathBaseline};
    use netgraph::NodeId;
    use sdn::{NfvType, SdnBuilder, ServiceChain};

    fn tiny_net() -> (Sdn, Vec<NodeId>) {
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v = b.add_server(2_000.0, 1.0);
        let d = b.add_switch();
        b.add_link(s, v, 250.0, 1.0).unwrap();
        b.add_link(v, d, 250.0, 1.0).unwrap();
        (b.build().unwrap(), vec![s, v, d])
    }

    fn timed(nodes: &[NodeId], id: u64, arrival: f64, duration: f64) -> TimedRequest {
        TimedRequest::new(
            MulticastRequest::new(
                RequestId(id),
                nodes[0],
                vec![nodes[2]],
                100.0,
                ServiceChain::new(vec![NfvType::Firewall]),
            ),
            arrival,
            duration,
        )
    }

    #[test]
    fn departures_free_capacity() {
        let (mut sdn, nodes) = tiny_net();
        // Links fit 2 concurrent sessions. Three overlapping sessions:
        // the third is rejected. With departures, a fourth arriving after
        // the first two left is admitted again.
        let requests = vec![
            timed(&nodes, 0, 0.0, 10.0),
            timed(&nodes, 1, 1.0, 10.0),
            timed(&nodes, 2, 2.0, 10.0),  // rejected: both slots busy
            timed(&nodes, 3, 20.0, 10.0), // admitted: slots free again
        ];
        let r = run_dynamic(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        assert_eq!(r.admitted, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(
            r.admitted_ids,
            vec![RequestId(0), RequestId(1), RequestId(3)]
        );
        assert_eq!(r.peak_concurrent, 2);
        assert!((r.admission_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn without_departures_it_matches_static_behaviour() {
        // All sessions effectively infinite: same admissions as run_online.
        let (mut sdn, nodes) = tiny_net();
        let requests: Vec<TimedRequest> = (0..5).map(|i| timed(&nodes, i, i as f64, 1e9)).collect();
        let dynamic = run_dynamic(&mut sdn, &mut ShortestPathBaseline::new(), &requests);
        let mut sdn2 = tiny_net().0;
        let plain: Vec<MulticastRequest> = requests.iter().map(|t| t.request.clone()).collect();
        let fixed = crate::run_online(&mut sdn2, &mut ShortestPathBaseline::new(), &plain);
        assert_eq!(dynamic.admitted, fixed.admitted);
    }

    #[test]
    fn unsorted_input_is_sorted_by_arrival() {
        let (mut sdn, nodes) = tiny_net();
        let requests = vec![timed(&nodes, 1, 20.0, 5.0), timed(&nodes, 0, 0.0, 5.0)];
        let r = run_dynamic(&mut sdn, &mut OnlineCp::new(), &requests);
        assert_eq!(r.admitted_ids, vec![RequestId(0), RequestId(1)]);
        assert_eq!(r.peak_concurrent, 1);
    }

    #[test]
    fn network_returns_to_idle_after_all_departures() {
        let (mut sdn, nodes) = tiny_net();
        let fresh = sdn.clone();
        let requests = vec![timed(&nodes, 0, 0.0, 1.0), timed(&nodes, 1, 5.0, 1.0)];
        let _ = run_dynamic(&mut sdn, &mut OnlineCp::new(), &requests);
        // The second arrival releases the first session; release the
        // second manually via reset check: residuals must only differ by
        // the still-active session.
        sdn.reset();
        assert_eq!(sdn, fresh);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn zero_duration_rejected() {
        let (_, nodes) = tiny_net();
        let _ = timed(&nodes, 0, 0.0, 0.0);
    }
}
