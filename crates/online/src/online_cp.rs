//! `Online_CP` (Algorithm 2): online admission with the exponential cost
//! model and LCA-based pseudo-multicast trees.

use crate::OnlineAlgorithm;
use netgraph::{
    induced_subgraph, CsrGraph, DijkstraScratch, EdgeId, FilteredGraph, Graph, LandmarkOracle,
    NodeId,
};
use nfv_multicast::{PseudoMulticastTree, ServerUse};
use sdn::{ExponentialCostModel, LinearCostModel, MulticastRequest, Sdn};

/// How `Online_CP` prices residual resources when weighting the admission
/// graph `G_k`.
///
/// The paper's algorithm uses [`CostMode::Exponential`]; the linear mode
/// exists for the ablation benches, which quantify how much of the
/// throughput gain comes from workload-aware pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMode {
    /// Eq. 1–2 with `α = β = 2|V|` (the paper's setting).
    #[default]
    Exponential,
    /// Load-oblivious unit prices (`w_e = c_e`, `w_v = c_v`), thresholds
    /// disabled.
    Linear,
}

/// How the bandwidth admission threshold `σ_e = |V| − 1` is applied.
///
/// Algorithm 2's listing (line 9) writes the rejection condition as a sum
/// over the tree, `Σ_{e∈T} w_e(k) ≥ σ_e`; the competitive analysis
/// (Lemma 1, inequality (8); Lemma 2 Case 2) only ever needs the
/// *per-edge* bound `w_e(k) < σ_e`, which each summand inherits from the
/// sum. The sum rule rejects trees once mean link utilization passes
/// roughly `log(|V|/|T|)/log(2|V|)` (≈ 40 % in the paper's parameter
/// range), stranding most of the network's capacity — irreconcilable with
/// the throughput the paper reports for `Online_CP`. The per-edge rule
/// keeps admitting until individual links approach
/// `log|V|/log(2|V|) ≈ 87 %` utilization and satisfies the same analysis,
/// so it is the default; the ablation bench measures both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdRule {
    /// `w_e(k) < σ_e` must hold for every tree edge individually.
    #[default]
    PerEdge,
    /// `Σ_{e∈T} w_e(k) < σ_e` over the whole tree (the literal line 9).
    TreeSum,
}

/// Cached admission graph `G_k`: the residual-feasible subgraph and its
/// weighted copy for one `(Sdn::version, bandwidth)` pair.
///
/// The exponential weights are a pure function of the residual state, so
/// the cache stays valid exactly until the next successful allocation,
/// release, or reset bumps [`Sdn::version`]. Rejections do not move the
/// version — under saturation, where most arrivals are rejected, this
/// removes the full graph rebuild from the hot path.
#[derive(Debug, Clone)]
struct AdmissionGraphCache {
    version: u64,
    bandwidth_bits: u64,
    filtered: FilteredGraph,
    weighted: Graph,
    /// Landmark oracle over `weighted` (present only in oracle mode):
    /// admissible lower bounds on weighted-graph distances, rebuilt
    /// together with the graph it describes so it can never go stale.
    oracle: Option<LandmarkOracle>,
}

/// The `Online_CP` admission algorithm (Algorithm 2, `K = 1`).
#[derive(Debug, Clone, Default)]
pub struct OnlineCp {
    mode: CostMode,
    rule: ThresholdRule,
    /// Landmarks for the candidate-scan oracle (0 = exact scan).
    oracle_landmarks: usize,
    cache: Option<AdmissionGraphCache>,
    cache_hits: u64,
}

impl OnlineCp {
    /// Creates the paper's `Online_CP` (exponential cost model, per-edge
    /// threshold rule).
    #[must_use]
    pub fn new() -> Self {
        OnlineCp::default()
    }

    /// Creates an `Online_CP` variant with an explicit cost mode
    /// (ablation).
    #[must_use]
    pub fn with_mode(mode: CostMode) -> Self {
        OnlineCp {
            mode,
            ..OnlineCp::default()
        }
    }

    /// Overrides the bandwidth threshold rule (ablation).
    #[must_use]
    pub fn with_threshold_rule(mut self, rule: ThresholdRule) -> Self {
        self.rule = rule;
        self
    }

    /// Enables the landmark-oracle candidate scan: servers are ordered by
    /// an admissible lower bound on their admission weight and evaluated
    /// lazily, stopping once the bound proves no remaining server can beat
    /// the incumbent. Decisions are byte-identical to the exact scan —
    /// the bound never underestimates a winner away — but at 5k+ nodes
    /// most candidates skip their Steiner construction entirely.
    ///
    /// `landmarks = 0` disables the oracle (the default exact scan).
    #[must_use]
    pub fn with_oracle(mut self, landmarks: usize) -> Self {
        self.oracle_landmarks = landmarks;
        self
    }

    /// The configured oracle landmark count (0 = exact scan).
    #[must_use]
    pub fn oracle_landmarks(&self) -> usize {
        self.oracle_landmarks
    }

    /// The active cost mode.
    #[must_use]
    pub fn mode(&self) -> CostMode {
        self.mode
    }

    /// The active threshold rule.
    #[must_use]
    pub fn threshold_rule(&self) -> ThresholdRule {
        self.rule
    }

    /// Admission-graph cache hits: requests whose `G_k` was reused from a
    /// previous request with the same bandwidth against the same network
    /// version.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The [`Sdn::version`] the cached admission graph `G_k` was built at,
    /// or `None` before the first admission. The invariant auditor compares
    /// this against the live network right after an admission is served.
    #[must_use]
    pub fn cached_version(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.version)
    }

    /// Returns (building if needed) the admission graph for bandwidth `b`
    /// against the current residual state, plus the landmark oracle over
    /// its weighted copy when oracle mode is on.
    fn admission_graph(
        &mut self,
        sdn: &Sdn,
        b: f64,
    ) -> (&FilteredGraph, &Graph, Option<&LandmarkOracle>) {
        let version = sdn.version();
        let bandwidth_bits = b.to_bits();
        let fresh = self
            .cache
            .as_ref()
            .is_some_and(|c| c.version == version && c.bandwidth_bits == bandwidth_bits);
        if fresh {
            self.cache_hits += 1;
            telemetry::hit(telemetry::Counter::AdmissionCacheHits);
        } else {
            telemetry::hit(telemetry::Counter::AdmissionCacheRebuilds);
            let (filtered, weighted) = build_admission_graph(sdn, b, self.mode);
            // The oracle prices the same weighted graph the Steiner scan
            // runs on, so its bounds are admissible for exactly the trees
            // this cache generation will build.
            let oracle = (self.oracle_landmarks > 0).then(|| {
                let csr = CsrGraph::from_graph(&weighted);
                LandmarkOracle::build(&csr, self.oracle_landmarks, &mut DijkstraScratch::new())
            });
            self.cache = Some(AdmissionGraphCache {
                version,
                bandwidth_bits,
                filtered,
                weighted,
                oracle,
            });
        }
        let c = self.cache.as_ref().expect("cache was just filled"); // lint:allow(P1): the branch above just filled the cache
        (&c.filtered, &c.weighted, c.oracle.as_ref())
    }
}

/// Builds the admission graph `G_k` for bandwidth `b`: the alive,
/// residual-feasible subgraph and its weighted copy under the chosen cost
/// mode. Shared by `OnlineCp`'s cache and the `EmpPricing` strategy so the
/// two graphs can never drift apart.
///
/// G_k keeps links with enough residual bandwidth for one traversal (a
/// link on the send-back path needs 2·b_k; that stricter joint check
/// happens on the final allocation) and excludes failed links exactly like
/// saturated ones. A fresh network has every exponential weight at exactly
/// zero, which would leave the Steiner routine picking among ties
/// arbitrarily (and wastefully); an infinitesimal unit-cost term breaks
/// those ties toward cost-efficient trees without ever influencing a
/// loaded decision or the admission thresholds.
pub(crate) fn build_admission_graph(sdn: &Sdn, b: f64, mode: CostMode) -> (FilteredGraph, Graph) {
    let model = ExponentialCostModel::for_network(sdn);
    let linear = LinearCostModel::new();
    let filtered = induced_subgraph(
        sdn.graph(),
        |_| true,
        |e| sdn.is_link_alive(e) && sdn.residual_bandwidth(e) + sdn::CAPACITY_EPS >= b,
    );
    let g = filtered.graph();
    let c_max = g
        .edges()
        .map(|e| sdn.unit_bandwidth_cost(filtered.parent_edge(e.id)))
        .fold(sdn::COST_FLOOR, f64::max);
    let mut weighted = Graph::with_nodes(g.node_count());
    for e in g.edges() {
        let orig = filtered.parent_edge(e.id);
        let tiebreak = sdn::COST_TIEBREAK_REL * sdn.unit_bandwidth_cost(orig) / c_max;
        let w = match mode {
            CostMode::Exponential => model.edge_weight(sdn, orig) + tiebreak,
            CostMode::Linear => linear.edge_cost(sdn, orig, 1.0),
        };
        weighted
            .add_edge(e.u, e.v, w)
            .expect("filtered edges are valid"); // lint:allow(P1): copies an edge the parent graph already validated
    }
    (filtered, weighted)
}

/// One evaluated admission candidate.
pub(crate) struct Candidate {
    pub(crate) weight: f64,
    pub(crate) tree: PseudoMulticastTree,
}

/// A server that passed the cheap phase-1 checks (alive, residual
/// computing, saturation threshold) and still awaits the expensive
/// Steiner-tree evaluation. `lb` is an admissible lower bound on the
/// candidate's final admission weight (just `wv` until the oracle adds
/// its distance term).
struct Survivor {
    pos: usize,
    v: NodeId,
    wv: f64,
    lb: f64,
}

/// What evaluating one surviving server produced.
pub(crate) enum EvalOutcome {
    /// Steps 8-12 succeeded; the candidate still faces the final
    /// allocation check.
    Admissible(Candidate),
    /// The link-side admission threshold (step 9) rejected the tree.
    ThresholdBlocked,
    /// No Steiner tree connects the terminals through this server.
    Skip,
}

/// Everything the per-server Steiner evaluation (steps 8-12 of
/// Algorithm 2 plus candidate materialization) needs, bundled so the
/// exact and oracle scans share a single code path and can never drift
/// apart.
pub(crate) struct AdmissionCtx<'a> {
    pub(crate) sdn: &'a Sdn,
    pub(crate) request: &'a MulticastRequest,
    pub(crate) b: f64,
    pub(crate) demand: f64,
    pub(crate) sigma: f64,
    pub(crate) mode: CostMode,
    pub(crate) rule: ThresholdRule,
    pub(crate) filtered: &'a FilteredGraph,
    pub(crate) weighted: &'a Graph,
}

impl AdmissionCtx<'_> {
    pub(crate) fn evaluate(
        &self,
        v: NodeId,
        wv: f64,
        bank: Option<&mut steiner::TerminalSptBank>,
    ) -> EvalOutcome {
        let (sdn, request, weighted) = (self.sdn, self.request, self.weighted);
        // Step 8: Steiner tree over {s_k, v} ∪ D_k in G_k. The banked
        // variant reuses the anchor SPTs shared by every candidate and is
        // byte-identical to the fresh construction.
        let mut terminals = vec![request.source, v];
        terminals.extend(request.destinations.iter().copied());
        let tree = match bank {
            Some(bank) => steiner::kmb_with_bank(weighted, &terminals, bank),
            None => steiner::kmb(weighted, &terminals),
        };
        let Some(tree) = tree else {
            return EvalOutcome::Skip;
        };
        // Step 9: link-side admission threshold.
        let tree_weight: f64 = tree.cost();
        if self.mode == CostMode::Exponential {
            let violates = match self.rule {
                ThresholdRule::TreeSum => tree_weight >= self.sigma,
                ThresholdRule::PerEdge => tree
                    .edges()
                    .iter()
                    .any(|&e| weighted.edge(e).weight >= self.sigma),
            };
            if violates {
                return EvalOutcome::ThresholdBlocked;
            }
        }
        // Steps 10-12: LCA send-back construction.
        let Some(rooted) = tree.root_at(weighted, request.source) else {
            return EvalOutcome::Skip;
        };
        let lca = rooted.lca();
        let mut lca_args = vec![v];
        lca_args.extend(request.destinations.iter().copied());
        let u = lca.lca_of_set(&lca_args);
        let sendback = rooted.path_between(v, u);
        let sendback_weight: f64 = sendback.cost();

        let weight = tree_weight + wv + sendback_weight;

        // Materialize the pseudo-multicast tree in original edge ids.
        let ingress = rooted.path_between(request.source, v);
        let ingress_ids: Vec<EdgeId> = self.filtered.parent_edges(ingress.edges());
        let ingress_set: std::collections::BTreeSet<EdgeId> = ingress_ids.iter().copied().collect();
        let all_tree: Vec<EdgeId> = self.filtered.parent_edges(tree.edges());
        let distribution: Vec<EdgeId> = all_tree
            .iter()
            .copied()
            .filter(|e| !ingress_set.contains(e))
            .collect();
        let extra: Vec<EdgeId> = self.filtered.parent_edges(sendback.edges());

        let ingress_cost: f64 = ingress_ids
            .iter()
            .map(|&e| sdn.unit_bandwidth_cost(e) * self.b)
            .sum();
        let computing_cost = sdn.unit_computing_cost(v).expect("server") * self.demand; // lint:allow(P1): v is drawn from servers()
        let bandwidth_cost: f64 = all_tree
            .iter()
            .chain(&extra)
            .map(|&e| sdn.unit_bandwidth_cost(e) * self.b)
            .sum();
        EvalOutcome::Admissible(Candidate {
            weight,
            tree: PseudoMulticastTree {
                request: request.id,
                source: request.source,
                servers: vec![ServerUse {
                    server: v,
                    ingress_edges: ingress_ids,
                    ingress_cost,
                    computing_cost,
                }],
                distribution_edges: distribution,
                extra_traversals: extra,
                bandwidth_cost,
                computing_cost,
            },
        })
    }
}

impl OnlineAlgorithm for OnlineCp {
    fn name(&self) -> &'static str {
        match self.mode {
            CostMode::Exponential => "Online_CP",
            CostMode::Linear => "Online_CP(linear)",
        }
    }

    // lint:entry(api)
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree> {
        let b = request.bandwidth;
        let demand = request.computing_demand();
        let model = ExponentialCostModel::for_network(sdn);
        let linear = LinearCostModel::new();
        let sigma = ExponentialCostModel::threshold(sdn);

        let mode = self.mode;
        let rule = self.rule;
        let (filtered, weighted, oracle) = self.admission_graph(sdn, b);
        if weighted.edge_count() == 0 {
            telemetry::hit(telemetry::Counter::OnlineRejectedInfeasible);
            return None;
        }
        let ctx = AdmissionCtx {
            sdn,
            request,
            b,
            demand,
            sigma,
            mode,
            rule,
            filtered,
            weighted,
        };

        // Phase 1: cheap per-server checks. These always run over every
        // server, so the saturation telemetry and the threshold-blocked
        // rejection reason are identical with and without the oracle.
        let mut threshold_blocked = false;
        let mut survivors: Vec<Survivor> = Vec::new();
        for (pos, &v) in sdn.servers().iter().enumerate() {
            // Hard feasibility: the server must be up and the chain must
            // fit its residual capacity (a dead server reads as zero).
            if !sdn.is_server_alive(v)
                || sdn.residual_computing(v).unwrap_or(0.0) + sdn::CAPACITY_EPS < demand
            {
                continue;
            }
            let wv = match mode {
                CostMode::Exponential => model.server_weight(sdn, v).expect("server"), // lint:allow(P1): v is drawn from servers()
                CostMode::Linear => linear.server_cost(sdn, v, 1.0).expect("server"), // lint:allow(P1): v is drawn from servers()
            };
            // Step 7: server-side admission threshold.
            if mode == CostMode::Exponential && wv >= sigma {
                // The exponential cost saturated: utilisation pushed this
                // server's normalised weight past the sigma threshold.
                telemetry::hit(telemetry::Counter::OnlineSaturatedServers);
                threshold_blocked = true;
                continue;
            }
            survivors.push(Survivor { pos, v, wv, lb: wv });
        }

        if let Some(oracle) = oracle {
            // Oracle scan: order survivors by an admissible lower bound on
            // their final admission weight (`wv` plus the Steiner bound
            // over {s_k, v} ∪ D_k, since the send-back term is ≥ 0), then
            // evaluate lazily. The bound never exceeds the true weight, so
            // stopping once it passes the incumbent cannot change the
            // decision — only skip Steiner constructions that were going
            // to lose anyway.
            let mut terminals = vec![request.source];
            terminals.extend(request.destinations.iter().copied());
            for s in &mut survivors {
                terminals.push(s.v);
                s.lb += steiner::steiner_lower_bound(&terminals, |x, y| oracle.lower_bound(x, y));
                terminals.pop();
            }
            // One SPT bank for the whole scan: the anchor terminals'
            // Dijkstra runs are shared across every candidate instead of
            // re-run per server (the scan's dominant cost at 5k+ nodes).
            let mut bank_targets = terminals.clone();
            bank_targets.extend(survivors.iter().map(|s| s.v));
            let mut bank = steiner::TerminalSptBank::new(bank_targets);
            survivors.sort_by(|x, y| {
                x.lb.partial_cmp(&y.lb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.pos.cmp(&y.pos))
            });

            let mut had_candidates = false;
            let mut best: Option<(f64, usize, PseudoMulticastTree)> = None;
            for (idx, s) in survivors.iter().enumerate() {
                if let Some((best_w, _, _)) = &best {
                    // Strictly worse than the incumbent (with a margin so
                    // float noise can never prune an exact tie, which the
                    // position rule below might still award differently).
                    if s.lb > best_w * (1.0 + sdn::PRUNE_GUARD_REL) + sdn::PRUNE_GUARD_ABS {
                        telemetry::add(
                            telemetry::Counter::OnlineCandidatesPruned,
                            (survivors.len() - idx) as u64,
                        );
                        break;
                    }
                }
                match ctx.evaluate(s.v, s.wv, Some(&mut bank)) {
                    EvalOutcome::Admissible(c) => {
                        had_candidates = true;
                        // The final ledger check runs per candidate here;
                        // the exact scan's "sort then first-allocatable"
                        // is the same min over (weight, server position).
                        if sdn.can_allocate(&c.tree.allocation(request)) {
                            let replace = match &best {
                                None => true,
                                Some((bw, bp, _)) => {
                                    c.weight < *bw || (c.weight == *bw && s.pos < *bp)
                                }
                            };
                            if replace {
                                best = Some((c.weight, s.pos, c.tree));
                            }
                        }
                    }
                    EvalOutcome::ThresholdBlocked => threshold_blocked = true,
                    EvalOutcome::Skip => {}
                }
            }
            if let Some((_, _, tree)) = best {
                return Some(tree);
            }
            // No early-exit fired on this path (it requires an incumbent),
            // so every survivor was evaluated and the rejection reason is
            // computed from exactly the same evidence as the exact scan.
            telemetry::hit(if had_candidates {
                telemetry::Counter::OnlineRejectedCapacity
            } else if threshold_blocked {
                telemetry::Counter::OnlineRejectedThreshold
            } else {
                telemetry::Counter::OnlineRejectedInfeasible
            });
            return None;
        }

        // Exact scan (the paper's listing): evaluate every survivor in
        // server order.
        let mut candidates: Vec<Candidate> = Vec::new();
        for s in &survivors {
            match ctx.evaluate(s.v, s.wv, None) {
                EvalOutcome::Admissible(c) => candidates.push(c),
                EvalOutcome::ThresholdBlocked => threshold_blocked = true,
                EvalOutcome::Skip => {}
            }
        }

        // Try candidates cheapest-first; the send-back path may need 2·b_k
        // on some link, so the accumulated allocation is the final check.
        candidates.sort_by(|a, b| a.weight.partial_cmp(&b.weight).expect("weights are finite")); // lint:allow(P1): candidate weights are finite sums of finite unit costs
        let had_candidates = !candidates.is_empty();
        for c in candidates {
            if sdn.can_allocate(&c.tree.allocation(request)) {
                return Some(c.tree);
            }
        }
        telemetry::hit(if had_candidates {
            // Every surviving candidate failed the final ledger check.
            telemetry::Counter::OnlineRejectedCapacity
        } else if threshold_blocked {
            telemetry::Counter::OnlineRejectedThreshold
        } else {
            telemetry::Counter::OnlineRejectedInfeasible
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeId;
    use sdn::{Allocation, NfvType, RequestId, SdnBuilder, ServiceChain};

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Firewall])
    }

    /// Line with a mid-path destination requiring send-back:
    /// s -- a -- v(server), with d hanging off a.
    fn sendback_fixture() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let a = bld.add_switch();
        let v = bld.add_server(8_000.0, 1.0);
        let d = bld.add_switch();
        let e0 = bld.add_link(s, a, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(a, v, 1_000.0, 1.0).unwrap();
        let e2 = bld.add_link(a, d, 1_000.0, 1.0).unwrap();
        (bld.build().unwrap(), vec![s, a, v, d], vec![e0, e1, e2])
    }

    #[test]
    fn admits_with_sendback() {
        let (sdn, v, e) = sendback_fixture();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[3]], 100.0, chain());
        let mut algo = OnlineCp::new();
        let tree = algo.admit(&sdn, &req).expect("admissible");
        tree.validate(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![v[2]]);
        // Tree: s-a, a-v, a-d. LCA(v, d) = a => send-back a-v.
        assert_eq!(tree.extra_traversals, vec![e[1]]);
        let alloc = tree.allocation(&req);
        assert_eq!(alloc.link_load(e[1]), 200.0); // double traversal
        assert_eq!(alloc.link_load(e[0]), 100.0);
        assert_eq!(alloc.link_load(e[2]), 100.0);
    }

    #[test]
    fn sendback_capacity_is_respected() {
        let (mut sdn, v, e) = sendback_fixture();
        // Leave only 150 Mbps on the a-v link: a 100 Mbps request needs
        // 200 there (send-back), so it must be rejected.
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[1], 850.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[3]], 100.0, chain());
        assert!(OnlineCp::new().admit(&sdn, &req).is_none());
    }

    #[test]
    fn prefers_underloaded_server() {
        // Two symmetric servers; load one, Online_CP must pick the other.
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v1 = bld.add_server(1_000.0, 1.0);
        let v2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        bld.add_link(s, v1, 10_000.0, 1.0).unwrap();
        bld.add_link(s, v2, 10_000.0, 1.0).unwrap();
        bld.add_link(v1, d, 10_000.0, 1.0).unwrap();
        bld.add_link(v2, d, 10_000.0, 1.0).unwrap();
        let mut sdn = bld.build().unwrap();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_server(v1, 800.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), s, vec![d], 100.0, chain());
        let tree = OnlineCp::new().admit(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![v2]);
    }

    #[test]
    fn linear_mode_ignores_load() {
        // Same fixture: linear mode keeps picking the unit-cost-cheapest
        // server even when it is loaded.
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v1 = bld.add_server(1_000.0, 0.5); // cheaper per unit
        let v2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        bld.add_link(s, v1, 10_000.0, 1.0).unwrap();
        bld.add_link(s, v2, 10_000.0, 1.0).unwrap();
        bld.add_link(v1, d, 10_000.0, 1.0).unwrap();
        bld.add_link(v2, d, 10_000.0, 1.0).unwrap();
        let mut sdn = bld.build().unwrap();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_server(v1, 800.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), s, vec![d], 100.0, chain());
        let tree = OnlineCp::with_mode(CostMode::Linear)
            .admit(&sdn, &req)
            .unwrap();
        assert_eq!(tree.servers_used(), vec![v1]);
    }

    #[test]
    fn rejects_when_no_computing_left() {
        let (mut sdn, v, _) = sendback_fixture();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_server(v[2], 7_990.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[3]], 100.0, chain());
        assert!(OnlineCp::new().admit(&sdn, &req).is_none());
    }

    #[test]
    fn rejects_when_links_saturated() {
        let (mut sdn, v, e) = sendback_fixture();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[0], 950.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[3]], 100.0, chain());
        assert!(OnlineCp::new().admit(&sdn, &req).is_none());
    }

    #[test]
    fn server_as_tree_root_needs_no_sendback() {
        // Server on the path before the branch point: no extra traversals.
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v = bld.add_server(8_000.0, 1.0);
        let d1 = bld.add_switch();
        let d2 = bld.add_switch();
        bld.add_link(s, v, 1_000.0, 1.0).unwrap();
        bld.add_link(v, d1, 1_000.0, 1.0).unwrap();
        bld.add_link(v, d2, 1_000.0, 1.0).unwrap();
        let sdn = bld.build().unwrap();
        let req = MulticastRequest::new(RequestId(0), s, vec![d1, d2], 100.0, chain());
        let tree = OnlineCp::new().admit(&sdn, &req).unwrap();
        tree.validate(&sdn, &req).unwrap();
        assert!(tree.extra_traversals.is_empty());
    }

    #[test]
    fn admission_graph_cache_reused_across_rejections() {
        let (mut sdn, v, e) = sendback_fixture();
        // Leave too little bandwidth for any 100 Mbps request.
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[0], 950.0);
        sdn.allocate(&pre).unwrap();
        let mut algo = OnlineCp::new();
        for i in 0..5 {
            let req = MulticastRequest::new(RequestId(i), v[0], vec![v[3]], 100.0, chain());
            assert!(algo.admit(&sdn, &req).is_none());
        }
        // First rejection builds G_k; the other four reuse it (the network
        // version never moves on rejection).
        assert_eq!(algo.cache_hits(), 4);
    }

    #[test]
    fn caching_is_transparent_to_decisions() {
        // A warm cache must admit exactly what a cold one does.
        let (sdn0, v, _) = sendback_fixture();
        let reqs: Vec<MulticastRequest> = (0..12)
            .map(|i| MulticastRequest::new(RequestId(i), v[0], vec![v[3]], 100.0, chain()))
            .collect();
        let mut warm_net = sdn0.clone();
        let mut cold_net = sdn0.clone();
        let mut warm = OnlineCp::new();
        for req in &reqs {
            let warm_tree = warm.admit(&warm_net, req);
            let cold_tree = OnlineCp::new().admit(&cold_net, req);
            assert_eq!(warm_tree, cold_tree, "request {}", req.id);
            if let Some(t) = warm_tree {
                warm_net.allocate(&t.allocation(req)).unwrap();
                cold_net
                    .allocate(&cold_tree.unwrap().allocation(req))
                    .unwrap();
            }
        }
        assert_eq!(warm_net, cold_net);
    }

    #[test]
    fn oracle_scan_matches_exact_decisions() {
        // Ring of 16 nodes with chords, a server on every third node.
        // The oracle-ordered lazy scan must admit exactly the same trees
        // as the exact scan across a full allocating sequence, including
        // the requests that end up rejected.
        let mut bld = SdnBuilder::new();
        let nodes: Vec<NodeId> = (0..16)
            .map(|i| {
                if i % 3 == 0 {
                    bld.add_server(4_000.0, 1.0 + (i % 5) as f64 * 0.1)
                } else {
                    bld.add_switch()
                }
            })
            .collect();
        for i in 0..16 {
            bld.add_link(
                nodes[i],
                nodes[(i + 1) % 16],
                2_000.0,
                1.0 + (i % 4) as f64 * 0.25,
            )
            .unwrap();
        }
        for i in (0..16).step_by(4) {
            bld.add_link(nodes[i], nodes[(i + 7) % 16], 2_000.0, 1.5)
                .unwrap();
        }
        let sdn0 = bld.build().unwrap();
        let mut exact_net = sdn0.clone();
        let mut oracle_net = sdn0;
        let mut exact = OnlineCp::new();
        let mut fast = OnlineCp::new().with_oracle(4);
        assert_eq!(fast.oracle_landmarks(), 4);
        assert_eq!(exact.oracle_landmarks(), 0);
        let mut admitted = 0;
        for i in 0..40u64 {
            let src = nodes[(i as usize * 5) % 16];
            let dst = nodes[(i as usize * 11 + 3) % 16];
            if src == dst {
                continue;
            }
            let req = MulticastRequest::new(RequestId(i), src, vec![dst], 120.0, chain());
            let a = exact.admit(&exact_net, &req);
            let b = fast.admit(&oracle_net, &req);
            assert_eq!(a, b, "request {}", req.id);
            if let (Some(ta), Some(tb)) = (&a, &b) {
                exact_net.allocate(&ta.allocation(&req)).unwrap();
                oracle_net.allocate(&tb.allocation(&req)).unwrap();
                admitted += 1;
            }
        }
        assert!(admitted > 0, "fixture admits nothing; test is vacuous");
        assert_eq!(exact_net, oracle_net);
    }

    #[test]
    fn name_reflects_mode() {
        use crate::OnlineAlgorithm;
        assert_eq!(OnlineCp::new().name(), "Online_CP");
        assert_eq!(
            OnlineCp::with_mode(CostMode::Linear).name(),
            "Online_CP(linear)"
        );
        assert_eq!(OnlineCp::new().mode(), CostMode::Exponential);
    }
}
