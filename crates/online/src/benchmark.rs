//! An offline benchmark for measuring empirical competitive ratios.
//!
//! Theorem 2 bounds `Online_CP` against the optimal *offline* algorithm,
//! which knows the whole request sequence in advance. The offline optimum
//! is NP-hard, so this module provides the standard greedy proxy: with
//! full knowledge, sort the requests by how little of the network they
//! consume and pack them with the capacitated offline algorithm. The
//! resulting admission count upper-bounds what any online algorithm
//! achieved in practice on the same sequence (not a certified bound on
//! OPT — a strong practical yardstick), and
//! [`empirical_competitive_ratio`] reports `online / offline`.

use crate::{RequestOutcome, SimulationResult};
use nfv_multicast::{appro_multi, appro_multi_cap, exact_pseudo_multicast};
use sdn::{MulticastRequest, Sdn};

/// Greedy offline packing: score every request by its fresh-network
/// implementation cost (cheap requests consume the least), then admit in
/// ascending order with `Appro_Multi_Cap`, committing allocations.
///
/// Returns the same [`SimulationResult`] shape as
/// [`run_online`](crate::run_online); `outcomes` are reported in the
/// *packing* order.
pub fn offline_greedy_benchmark(
    sdn: &mut Sdn,
    requests: &[MulticastRequest],
    k: usize,
) -> SimulationResult {
    // Score on the untouched network.
    let mut scored: Vec<(f64, &MulticastRequest)> = requests
        .iter()
        .map(|r| {
            let score = appro_multi(sdn, r, k).map_or(f64::INFINITY, |t| t.total_cost());
            (score, r)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("costs are not NaN")); // lint:allow(P1): costs are finite sums of validated weights

    let mut outcomes = Vec::with_capacity(requests.len());
    let mut admitted = 0;
    let mut rejected = 0;
    let mut total_cost = 0.0;
    for (score, req) in scored {
        if !score.is_finite() {
            rejected += 1;
            outcomes.push(RequestOutcome::Rejected { id: req.id });
            continue;
        }
        match appro_multi_cap(sdn, req, k).into_tree() {
            Some(tree) => {
                sdn.allocate(&tree.allocation(req))
                    .expect("admitted tree fits"); // lint:allow(P1): the tree was planned on this exact residual state
                admitted += 1;
                total_cost += tree.total_cost();
                outcomes.push(RequestOutcome::Admitted {
                    id: req.id,
                    cost: tree.total_cost(),
                });
            }
            None => {
                rejected += 1;
                outcomes.push(RequestOutcome::Rejected { id: req.id });
            }
        }
    }

    let links = sdn.link_count();
    let mut mean_link = 0.0;
    let mut max_link: f64 = 0.0;
    for e in sdn.graph().edges() {
        let u = sdn.bandwidth_utilization(e.id);
        mean_link += u;
        max_link = max_link.max(u);
    }
    if links > 0 {
        mean_link /= links as f64;
    }
    let mut mean_server = 0.0;
    for &v in sdn.servers() {
        mean_server += sdn.computing_utilization(v).expect("server"); // lint:allow(P1): v is drawn from servers()
    }
    if !sdn.servers().is_empty() {
        mean_server /= sdn.servers().len() as f64;
    }

    SimulationResult {
        algorithm: "Offline_Greedy",
        admitted,
        rejected,
        outcomes,
        total_cost,
        mean_link_utilization: mean_link,
        max_link_utilization: max_link,
        mean_server_utilization: mean_server,
    }
}

/// Exact offline packing for *small* instances: score every request by
/// its fresh-network [`exact_pseudo_multicast`] optimum, then admit in
/// ascending order, committing each exact tree only if the residual
/// ledger still fits it.
///
/// Per-request trees are certified optima of the pseudo-multicast family,
/// but the packing order is still greedy, so the admission count is a
/// strong yardstick rather than a certified OPT. Mirrors
/// [`offline_greedy_benchmark`] with the approximation swapped for the
/// exact oracle.
///
/// # Panics
///
/// Panics if `k == 0` or any request has
/// `destinations.len() >= steiner::MAX_TERMINALS` — the exact oracle is
/// exponential in the terminal count and refuses large instances.
pub fn offline_exact_benchmark(
    sdn: &mut Sdn,
    requests: &[MulticastRequest],
    k: usize,
) -> SimulationResult {
    // Score on the untouched network.
    let mut scored: Vec<(f64, &MulticastRequest)> = requests
        .iter()
        .map(|r| {
            let score = exact_pseudo_multicast(sdn, r, k).map_or(f64::INFINITY, |t| t.total_cost());
            (score, r)
        })
        .collect();
    // Costs are finite sums of validated weights (or the +inf sentinel),
    // never NaN, so the total-order fallback is unreachable.
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut outcomes = Vec::with_capacity(requests.len());
    let mut admitted = 0;
    let mut rejected = 0;
    let mut total_cost = 0.0;
    for (score, req) in scored {
        if !score.is_finite() {
            rejected += 1;
            outcomes.push(RequestOutcome::Rejected { id: req.id });
            continue;
        }
        // The exact oracle is capacity-oblivious: re-plan on the loaded
        // network and gate on the ledger (allocate validates atomically
        // before committing, so a failed admission leaves no residue).
        let tree = exact_pseudo_multicast(sdn, req, k)
            .filter(|t| sdn.allocate(&t.allocation(req)).is_ok());
        match tree {
            Some(tree) => {
                admitted += 1;
                total_cost += tree.total_cost();
                outcomes.push(RequestOutcome::Admitted {
                    id: req.id,
                    cost: tree.total_cost(),
                });
            }
            None => {
                rejected += 1;
                outcomes.push(RequestOutcome::Rejected { id: req.id });
            }
        }
    }

    let links = sdn.link_count();
    let mut mean_link = 0.0;
    let mut max_link: f64 = 0.0;
    for e in sdn.graph().edges() {
        let u = sdn.bandwidth_utilization(e.id);
        mean_link += u;
        max_link = max_link.max(u);
    }
    if links > 0 {
        mean_link /= links as f64;
    }
    let mut mean_server = 0.0;
    for &v in sdn.servers() {
        // v is drawn from servers(), so the lookup cannot miss.
        mean_server += sdn.computing_utilization(v).unwrap_or(0.0);
    }
    if !sdn.servers().is_empty() {
        mean_server /= sdn.servers().len() as f64;
    }

    SimulationResult {
        algorithm: "Offline_Exact",
        admitted,
        rejected,
        outcomes,
        total_cost,
        mean_link_utilization: mean_link,
        max_link_utilization: max_link,
        mean_server_utilization: mean_server,
    }
}

/// Empirical competitive ratio `online_admitted / offline_admitted`.
///
/// Zero-denominator cases are reported honestly: `1.0` only for the true
/// `0 / 0` tie (both algorithms admitted nothing), and [`f64::INFINITY`]
/// when the online algorithm admitted sessions the offline benchmark
/// found no room for — an online *win*, not a tie. Callers serializing
/// the ratio must handle the non-finite case explicitly.
#[must_use]
pub fn empirical_competitive_ratio(online: &SimulationResult, offline: &SimulationResult) -> f64 {
    if offline.admitted == 0 {
        if online.admitted == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        online.admitted as f64 / offline.admitted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_online, OnlineCp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdn::{NfvType, RequestId, SdnBuilder, ServiceChain};
    use topology::{annotate, place_servers_random, AnnotationParams, Waxman};
    use workload::RequestGenerator;

    #[test]
    fn packs_cheap_requests_first() {
        // Capacity for exactly one request: the cheaper of the two must
        // win regardless of sequence order.
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v = b.add_server(2_000.0, 1.0);
        let d1 = b.add_switch();
        let d2 = b.add_switch();
        b.add_link(s, v, 120.0, 1.0).unwrap();
        b.add_link(v, d1, 120.0, 1.0).unwrap();
        b.add_link(v, d2, 120.0, 5.0).unwrap(); // expensive arm
        let mut sdn = b.build().unwrap();
        let chain = ServiceChain::new(vec![NfvType::Firewall]);
        let expensive = MulticastRequest::new(RequestId(0), s, vec![d2], 100.0, chain.clone());
        let cheap = MulticastRequest::new(RequestId(1), s, vec![d1], 100.0, chain);
        // Expensive arrives first; greedy still admits the cheap one.
        let r = offline_greedy_benchmark(&mut sdn, &[expensive, cheap], 1);
        assert_eq!(r.admitted, 1);
        assert!(matches!(
            r.outcomes[0],
            RequestOutcome::Admitted {
                id: RequestId(1),
                ..
            }
        ));
    }

    #[test]
    fn benchmark_dominates_online_cp_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = Waxman::new(40).generate(&mut rng);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        let mut gen = RequestGenerator::new(40);
        let requests = gen.generate_batch(120, &mut rng);

        let mut net = sdn.clone();
        let online = run_online(&mut net, &mut OnlineCp::new(), &requests);
        let mut net = sdn;
        let offline = offline_greedy_benchmark(&mut net, &requests, 1);
        let ratio = empirical_competitive_ratio(&online, &offline);
        assert!(
            offline.admitted + 5 >= online.admitted,
            "offline {} should not be far below online {}",
            offline.admitted,
            online.admitted
        );
        assert!(ratio > 0.0 && ratio.is_finite());
    }

    fn result_admitting(n: usize) -> SimulationResult {
        SimulationResult {
            algorithm: "x",
            admitted: n,
            rejected: 0,
            outcomes: vec![],
            total_cost: 0.0,
            mean_link_utilization: 0.0,
            max_link_utilization: 0.0,
            mean_server_utilization: 0.0,
        }
    }

    #[test]
    fn ratio_of_empty_offline_is_one() {
        // The true 0/0 tie — and only that tie — reads as 1.0.
        let empty = result_admitting(0);
        assert_eq!(empirical_competitive_ratio(&empty, &empty), 1.0);
    }

    #[test]
    fn online_win_over_empty_offline_is_infinite() {
        // Online admitted sessions the offline packing found no room for:
        // that is a win, not a tie, and must not read as ratio 1.0.
        let online = result_admitting(3);
        let offline = result_admitting(0);
        let ratio = empirical_competitive_ratio(&online, &offline);
        assert!(ratio.is_infinite() && ratio > 0.0);
        // The finite case is untouched.
        assert_eq!(
            empirical_competitive_ratio(&result_admitting(2), &result_admitting(4)),
            0.5
        );
    }

    #[test]
    fn exact_benchmark_packs_cheap_requests_first() {
        // Same single-slot fixture as the greedy test: the exact packer
        // must also admit the cheap request regardless of arrival order.
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v = b.add_server(2_000.0, 1.0);
        let d1 = b.add_switch();
        let d2 = b.add_switch();
        b.add_link(s, v, 120.0, 1.0).unwrap();
        b.add_link(v, d1, 120.0, 1.0).unwrap();
        b.add_link(v, d2, 120.0, 5.0).unwrap(); // expensive arm
        let mut sdn = b.build().unwrap();
        let chain = ServiceChain::new(vec![NfvType::Firewall]);
        let expensive = MulticastRequest::new(RequestId(0), s, vec![d2], 100.0, chain.clone());
        let cheap = MulticastRequest::new(RequestId(1), s, vec![d1], 100.0, chain);
        let r = offline_exact_benchmark(&mut sdn, &[expensive, cheap], 1);
        assert_eq!(r.algorithm, "Offline_Exact");
        assert_eq!(r.admitted, 1);
        assert!(matches!(
            r.outcomes[0],
            RequestOutcome::Admitted {
                id: RequestId(1),
                ..
            }
        ));
    }

    #[test]
    fn exact_benchmark_never_below_per_request_optimum_cost() {
        // On an uncontended network the exact packer admits everything at
        // the per-request optimum, so greedy can never beat its cost.
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v = b.add_server(8_000.0, 1.0);
        let d = b.add_switch();
        b.add_link(s, v, 10_000.0, 1.0).unwrap();
        b.add_link(v, d, 10_000.0, 1.0).unwrap();
        let sdn0 = b.build().unwrap();
        let chain = ServiceChain::new(vec![NfvType::Firewall]);
        let reqs: Vec<MulticastRequest> = (0..4)
            .map(|i| MulticastRequest::new(RequestId(i), s, vec![d], 100.0, chain.clone()))
            .collect();
        let mut net = sdn0.clone();
        let exact = offline_exact_benchmark(&mut net, &reqs, 1);
        let mut net = sdn0;
        let greedy = offline_greedy_benchmark(&mut net, &reqs, 1);
        assert_eq!(exact.admitted, 4);
        assert!(exact.total_cost <= greedy.total_cost + 1e-9);
    }
}
