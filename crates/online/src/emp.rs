//! An Even–Medina–Patt-Shamir-style competitive pricing policy.
//!
//! Even, Medina & Patt-Shamir ("Competitive Path Computation and Function
//! Placement in SDNs", 2016) route and place processing online in the
//! all-or-nothing throughput model: resources carry exponential prices in
//! their current utilization, and a request is admitted iff the *cheapest*
//! route-plus-placement costs no more than the request's benefit. The
//! price comparison — not a hard utilization threshold — is what rejects:
//! low-value sprawling requests get priced out early while high-value ones
//! keep landing, which is the mechanism behind their `O(log n)`
//! competitiveness (an Awerbuch–Azar–Plotkin descendant).
//!
//! This module adapts that rule to NFV multicast. The admission graph and
//! candidate evaluation are *shared with* [`OnlineCp`](crate::OnlineCp)
//! (same exponential weights, same Steiner + LCA send-back construction)
//! so the two policies differ in exactly one place: `Online_CP` rejects
//! when a weight crosses the σ threshold, `EMP_Online` rejects when the
//! total admission weight exceeds [`request_revenue`] — benefits and
//! prices live on the same normalized scale. Price-caused rejections are
//! recorded on [`telemetry::Counter::OnlinePriceRejections`].

use crate::online_cp::{build_admission_graph, AdmissionCtx, Candidate, EvalOutcome};
use crate::{CostMode, OnlineAlgorithm, ThresholdRule};
use nfv_multicast::PseudoMulticastTree;
use sdn::{ExponentialCostModel, MulticastRequest, Sdn};

/// The benefit (revenue) of admitting `request` on `sdn`, on the same
/// normalized scale as the exponential admission weights.
///
/// `(1 + |D_k|) · (b_k / 200) · (σ / 2)`: proportional to the group size
/// (one processing stage plus a stream per destination) and to bandwidth
/// relative to the workload generator's 200 Mbps ceiling, scaled by half
/// the admission threshold `σ = |V| − 1`. On a fresh network every
/// exponential weight is ≈ 0, so all requests clear their price; under
/// load, per-resource prices grow toward σ and small groups get priced
/// out well before `Online_CP`'s hard threshold would have fired.
#[must_use]
pub fn request_revenue(sdn: &Sdn, request: &MulticastRequest) -> f64 {
    let sigma = ExponentialCostModel::threshold(sdn);
    (1.0 + request.destinations.len() as f64) * (request.bandwidth / 200.0) * (sigma / 2.0)
}

/// The Even–Medina–Patt-Shamir-style price-vs-benefit admission policy.
#[derive(Debug, Clone, Copy)]
pub struct EmpPricing {
    benefit_scale: f64,
}

impl Default for EmpPricing {
    fn default() -> Self {
        EmpPricing { benefit_scale: 1.0 }
    }
}

impl EmpPricing {
    /// Creates the policy with the unit benefit scale.
    #[must_use]
    pub fn new() -> Self {
        EmpPricing::default()
    }

    /// Scales every request's benefit by `scale` (> 1 admits more
    /// aggressively, < 1 prices requests out earlier).
    #[must_use]
    pub fn with_benefit_scale(mut self, scale: f64) -> Self {
        self.benefit_scale = scale;
        self
    }

    /// The configured benefit scale.
    #[must_use]
    pub fn benefit_scale(&self) -> f64 {
        self.benefit_scale
    }
}

impl OnlineAlgorithm for EmpPricing {
    fn name(&self) -> &'static str {
        "EMP_Online"
    }

    // lint:entry(api)
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree> {
        let b = request.bandwidth;
        let demand = request.computing_demand();
        let model = ExponentialCostModel::for_network(sdn);
        let benefit = self.benefit_scale * request_revenue(sdn, request);

        let (filtered, weighted) = build_admission_graph(sdn, b, CostMode::Exponential);
        if weighted.edge_count() == 0 {
            telemetry::hit(telemetry::Counter::OnlineRejectedInfeasible);
            return None;
        }
        // σ = ∞ disables the threshold branch inside the shared
        // evaluation: EMP prices, it never thresholds.
        let ctx = AdmissionCtx {
            sdn,
            request,
            b,
            demand,
            sigma: f64::INFINITY,
            mode: CostMode::Exponential,
            rule: ThresholdRule::PerEdge,
            filtered: &filtered,
            weighted: &weighted,
        };

        let mut candidates: Vec<Candidate> = Vec::new();
        for &v in sdn.servers() {
            // v is drawn from servers(), so the lookups cannot miss; a
            // dead server reads as zero capacity.
            let residual = sdn.residual_computing(v).unwrap_or(0.0);
            if !sdn.is_server_alive(v) || residual + sdn::CAPACITY_EPS < demand {
                continue;
            }
            let Some(wv) = model.server_weight(sdn, v) else {
                continue;
            };
            match ctx.evaluate(v, wv, None) {
                EvalOutcome::Admissible(c) => candidates.push(c),
                // Unreachable with σ = ∞, kept for exhaustiveness.
                EvalOutcome::ThresholdBlocked => {}
                EvalOutcome::Skip => {}
            }
        }
        // Weights are finite sums of finite prices, never NaN; stable
        // sort keeps server order on exact ties.
        candidates.sort_by(|a, b| {
            a.weight
                .partial_cmp(&b.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let had_candidates = !candidates.is_empty();
        let mut priced_out = false;
        for c in candidates {
            // The EMP admission rule: pay the price only if the benefit
            // covers it. Candidates are sorted, so the first over-budget
            // weight prices out every remaining one too.
            if c.weight > benefit {
                priced_out = true;
                break;
            }
            if sdn.can_allocate(&c.tree.allocation(request)) {
                return Some(c.tree);
            }
        }
        telemetry::hit(if priced_out {
            telemetry::Counter::OnlinePriceRejections
        } else if had_candidates {
            telemetry::Counter::OnlineRejectedCapacity
        } else {
            telemetry::Counter::OnlineRejectedInfeasible
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_online;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdn::{Allocation, NfvType, RequestId, SdnBuilder, ServiceChain};
    use topology::{annotate, place_servers_random, AnnotationParams, Waxman};
    use workload::RequestGenerator;

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Firewall])
    }

    fn small_net() -> (Sdn, Vec<netgraph::NodeId>, Vec<netgraph::EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        let e0 = bld.add_link(s, v, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(v, d, 1_000.0, 1.0).unwrap();
        (bld.build().unwrap(), vec![s, v, d], vec![e0, e1])
    }

    #[test]
    fn fresh_network_admits_cheaply() {
        // Fresh network → prices ≈ 0 → every request clears its benefit.
        let (sdn, n, _) = small_net();
        let req = MulticastRequest::new(RequestId(0), n[0], vec![n[2]], 100.0, chain());
        let tree = EmpPricing::new().admit(&sdn, &req).expect("cheap admit");
        tree.validate(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![n[1]]);
    }

    #[test]
    fn prices_out_under_load() {
        // Load the only route close to saturation: the exponential price
        // crosses the benefit and EMP rejects even though capacity for
        // one more request still exists (SP/CP-without-threshold would
        // admit). A zero benefit scale makes the rejection unconditional.
        let (mut sdn, n, e) = small_net();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[0], 880.0);
        pre.add_link(e[1], 880.0);
        pre.add_server(n[1], 880.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), n[0], vec![n[2]], 100.0, chain());
        telemetry::enable();
        let before = telemetry::counter_value(telemetry::Counter::OnlinePriceRejections);
        let mut strict = EmpPricing::new().with_benefit_scale(0.0);
        assert!(strict.admit(&sdn, &req).is_none());
        let after = telemetry::counter_value(telemetry::Counter::OnlinePriceRejections);
        assert_eq!(after, before + 1);
        // A generous benefit scale admits the same request on the same
        // network: the price rule, not feasibility, was the rejector.
        let mut generous = EmpPricing::new().with_benefit_scale(1e9);
        assert!(generous.admit(&sdn, &req).is_some());
        assert_eq!(generous.benefit_scale(), 1e9);
    }

    #[test]
    fn revenue_scales_with_group_and_bandwidth() {
        let (sdn, n, _) = small_net();
        let small = MulticastRequest::new(RequestId(0), n[0], vec![n[2]], 100.0, chain());
        let wide = MulticastRequest::new(RequestId(1), n[0], vec![n[2], n[1]], 100.0, chain());
        let fat = MulticastRequest::new(RequestId(2), n[0], vec![n[2]], 200.0, chain());
        assert!(request_revenue(&sdn, &wide) > request_revenue(&sdn, &small));
        assert!(request_revenue(&sdn, &fat) > request_revenue(&sdn, &small));
    }

    #[test]
    fn pinned_seed_admissions_regression() {
        // Pins the full admission profile on a fixed random instance so
        // any behavioral drift in the pricing rule is caught. Counts
        // re-derived only on an intentional policy change.
        let mut rng = StdRng::seed_from_u64(7);
        let (g, _) = Waxman::new(40).generate(&mut rng);
        let servers = place_servers_random(&g, 0.1, &mut rng);
        let mut sdn = annotate(&g, &servers, &AnnotationParams::default(), &mut rng).unwrap();
        let mut gen = RequestGenerator::new(40);
        let requests = gen.generate_batch(120, &mut rng);
        let r = run_online(&mut sdn, &mut EmpPricing::new(), &requests);
        assert_eq!(r.admitted + r.rejected, 120);
        assert_eq!((r.admitted, r.rejected), (34, 86));
    }
}
