//! The `SP` baseline of §VI-A: load-oblivious shortest-path admission.
//!
//! For each incoming request, links and servers without enough residual
//! resources are removed; every remaining link (and candidate server)
//! gets the *same* weight. For each candidate server `v` the route is the
//! shortest path `s_k → v` plus a single-source shortest-path tree rooted
//! at `v` spanning the destinations; the cheapest (fewest-hops) candidate
//! is used. No workload awareness — the foil that Figs. 8–9 measure
//! `Online_CP` against.

use crate::OnlineAlgorithm;
use netgraph::{dijkstra_with_targets, induced_subgraph, EdgeId};
use nfv_multicast::{PseudoMulticastTree, ServerUse};
use sdn::{MulticastRequest, Sdn};

/// The `SP` online heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPathBaseline;

impl ShortestPathBaseline {
    /// Creates the baseline (stateless).
    #[must_use]
    pub fn new() -> Self {
        ShortestPathBaseline
    }
}

impl OnlineAlgorithm for ShortestPathBaseline {
    fn name(&self) -> &'static str {
        "SP"
    }

    // lint:entry(api)
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree> {
        let b = request.bandwidth;
        let demand = request.computing_demand();

        // Remove saturated and failed links; uniform weight on the rest.
        let filtered = induced_subgraph(
            sdn.graph(),
            |_| true,
            |e| sdn.is_link_alive(e) && sdn.residual_bandwidth(e) + sdn::CAPACITY_EPS >= b,
        );
        let g = filtered.graph();
        let mut uniform = netgraph::Graph::with_nodes(g.node_count());
        for e in g.edges() {
            uniform
                .add_edge(e.u, e.v, 1.0)
                .expect("filtered edges are valid"); // lint:allow(P1): copies an edge the parent graph already validated
        }

        let mut best: Option<(f64, PseudoMulticastTree)> = None;
        let spt_source = dijkstra_with_targets(&uniform, request.source, sdn.servers());
        for &v in sdn.servers() {
            // lint:allow(P1): v is drawn from servers()
            let residual = sdn.residual_computing(v).expect("server");
            if !sdn.is_server_alive(v) || residual + sdn::CAPACITY_EPS < demand {
                continue;
            }
            let Some(ingress) = spt_source.path_to(v) else {
                continue;
            };
            // Shortest-path tree rooted at the server spanning the
            // destinations (union of shortest paths — a tree because they
            // come from one Dijkstra run).
            let spt_v = dijkstra_with_targets(&uniform, v, &request.destinations);
            let mut tree_edges: Vec<EdgeId> = Vec::new();
            let mut hops = ingress.cost();
            let mut feasible = true;
            for &d in &request.destinations {
                let Some(p) = spt_v.path_to(d) else {
                    feasible = false;
                    break;
                };
                hops += p.cost();
                tree_edges.extend(p.edges().iter().copied());
            }
            if !feasible {
                continue;
            }
            tree_edges.sort_unstable();
            tree_edges.dedup();

            if best.as_ref().is_none_or(|(h, _)| hops < *h) {
                let ingress_ids = filtered.parent_edges(ingress.edges());
                let distribution = filtered.parent_edges(&tree_edges);
                let ingress_cost: f64 = ingress_ids
                    .iter()
                    .map(|&e| sdn.unit_bandwidth_cost(e) * b)
                    .sum();
                let computing_cost = sdn.unit_computing_cost(v).expect("server") * demand; // lint:allow(P1): v is drawn from servers()
                let bandwidth_cost: f64 = ingress_cost
                    + distribution
                        .iter()
                        .map(|&e| sdn.unit_bandwidth_cost(e) * b)
                        .sum::<f64>();
                best = Some((
                    hops,
                    PseudoMulticastTree {
                        request: request.id,
                        source: request.source,
                        servers: vec![ServerUse {
                            server: v,
                            ingress_edges: ingress_ids,
                            ingress_cost,
                            computing_cost,
                        }],
                        distribution_edges: distribution,
                        extra_traversals: Vec::new(),
                        bandwidth_cost,
                        computing_cost,
                    },
                ));
            }
        }

        let (_, tree) = best?;
        if sdn.can_allocate(&tree.allocation(request)) {
            Some(tree)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeId;
    use sdn::{Allocation, NfvType, RequestId, SdnBuilder, ServiceChain};

    fn chain() -> ServiceChain {
        ServiceChain::new(vec![NfvType::Nat])
    }

    /// Two parallel routes: short (2 hops via v1) and long (3 hops via v2).
    fn fixture() -> (Sdn, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v1 = bld.add_server(1_000.0, 1.0);
        let a = bld.add_switch();
        let v2 = bld.add_server(1_000.0, 1.0);
        let d = bld.add_switch();
        let e0 = bld.add_link(s, v1, 1_000.0, 1.0).unwrap();
        let e1 = bld.add_link(v1, d, 1_000.0, 1.0).unwrap();
        let e2 = bld.add_link(s, a, 1_000.0, 1.0).unwrap();
        let e3 = bld.add_link(a, v2, 1_000.0, 1.0).unwrap();
        let e4 = bld.add_link(v2, d, 1_000.0, 1.0).unwrap();
        (
            bld.build().unwrap(),
            vec![s, v1, a, v2, d],
            vec![e0, e1, e2, e3, e4],
        )
    }

    #[test]
    fn picks_fewest_hops() {
        let (sdn, v, _) = fixture();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[4]], 100.0, chain());
        let tree = ShortestPathBaseline::new().admit(&sdn, &req).unwrap();
        tree.validate(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![v[1]]);
    }

    #[test]
    fn reroutes_when_short_route_saturated() {
        let (mut sdn, v, e) = fixture();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[0], 950.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[4]], 100.0, chain());
        let tree = ShortestPathBaseline::new().admit(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![v[3]]);
    }

    #[test]
    fn load_oblivious_keeps_hammering_the_short_route() {
        // Unlike Online_CP, SP keeps choosing the short route until it is
        // *saturated*, regardless of relative load.
        let (mut sdn, v, e) = fixture();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[0], 800.0); // heavily loaded but not saturated
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[4]], 100.0, chain());
        let tree = ShortestPathBaseline::new().admit(&sdn, &req).unwrap();
        assert_eq!(tree.servers_used(), vec![v[1]]);
    }

    #[test]
    fn rejects_when_nothing_fits() {
        let (mut sdn, v, e) = fixture();
        let mut pre = Allocation::new(RequestId(9));
        pre.add_link(e[1], 950.0);
        pre.add_link(e[4], 950.0);
        sdn.allocate(&pre).unwrap();
        let req = MulticastRequest::new(RequestId(0), v[0], vec![v[4]], 100.0, chain());
        assert!(ShortestPathBaseline::new().admit(&sdn, &req).is_none());
    }

    #[test]
    fn multicast_tree_is_union_of_shortest_paths() {
        let mut bld = SdnBuilder::new();
        let s = bld.add_switch();
        let v = bld.add_server(8_000.0, 1.0);
        let m = bld.add_switch();
        let d1 = bld.add_switch();
        let d2 = bld.add_switch();
        bld.add_link(s, v, 1_000.0, 1.0).unwrap();
        bld.add_link(v, m, 1_000.0, 1.0).unwrap();
        bld.add_link(m, d1, 1_000.0, 1.0).unwrap();
        bld.add_link(m, d2, 1_000.0, 1.0).unwrap();
        let sdn = bld.build().unwrap();
        let req = MulticastRequest::new(RequestId(0), s, vec![d1, d2], 100.0, chain());
        let tree = ShortestPathBaseline::new().admit(&sdn, &req).unwrap();
        tree.validate(&sdn, &req).unwrap();
        // Shared edge v-m appears once in the distribution structure.
        assert_eq!(tree.distribution_edges.len(), 3);
    }
}
