//! `Online_CP` with multiple chain instances — an *extension* beyond the
//! paper.
//!
//! The paper proves its competitive ratio only for `K = 1` and leaves the
//! general case open (§VII). This module combines the two halves of the
//! paper mechanically: the exponential congestion prices of §V-A become
//! the unit costs of a *derived network*, and Algorithm 1's
//! combination-enumerating Steiner reduction runs on it, so an admission
//! may instantiate the chain on up to `K` servers. Admission control
//! keeps the per-edge/per-server thresholds of Algorithm 2. No
//! competitive guarantee is claimed — the ablation benches measure it
//! empirically.

use crate::OnlineAlgorithm;
use netgraph::{EdgeId, NodeId};
use nfv_multicast::{appro_multi_on, PseudoMulticastTree};
use sdn::{ExponentialCostModel, MulticastRequest, Sdn, SdnBuilder};

/// Online admission with up to `K` chain instances per request.
#[derive(Debug, Clone)]
pub struct OnlineCpMulti {
    k: usize,
}

impl OnlineCpMulti {
    /// Creates the extension with the given instance budget.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one chain instance is required");
        OnlineCpMulti { k }
    }

    /// The instance budget `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl OnlineAlgorithm for OnlineCpMulti {
    fn name(&self) -> &'static str {
        "Online_CP_Multi"
    }

    // lint:entry(api)
    fn admit(&mut self, sdn: &Sdn, request: &MulticastRequest) -> Option<PseudoMulticastTree> {
        let b = request.bandwidth;
        let demand = request.computing_demand();
        let model = ExponentialCostModel::for_network(sdn);
        let sigma = ExponentialCostModel::threshold(sdn);

        // Derived network: same switches; links that fit b_k priced at
        // their congestion weight (plus the zero-tie epsilon); servers
        // that fit the chain and pass the threshold priced so that
        // `unit_cost * demand = w_v(k)`.
        let mut bld = SdnBuilder::new();
        for _ in sdn.graph().nodes() {
            bld.add_switch();
        }
        let mut usable: Vec<NodeId> = Vec::new();
        for &v in sdn.servers() {
            // lint:allow(P1): v is drawn from servers()
            let residual = sdn.residual_computing(v).expect("server");
            if !sdn.is_server_alive(v) || residual + sdn::CAPACITY_EPS < demand {
                continue;
            }
            let wv = model.server_weight(sdn, v).expect("server"); // lint:allow(P1): v is drawn from servers()
            if wv >= sigma {
                continue;
            }
            let unit = if demand > 0.0 { wv / demand } else { 0.0 };
            bld.attach_server(
                v,
                sdn.residual_computing(v).expect("server").max(1e-9), // lint:allow(P1): v is drawn from servers()
                unit,
            )
            .expect("same node space"); // lint:allow(P1): the builder shares the parent node space
            usable.push(v);
        }
        if usable.is_empty() {
            return None;
        }
        let c_max = sdn.graph().edges().map(|e| e.weight).fold(1e-12, f64::max);
        let mut edge_map: Vec<EdgeId> = Vec::new();
        for e in sdn.graph().edges() {
            if !sdn.is_link_alive(e.id) || sdn.residual_bandwidth(e.id) + sdn::CAPACITY_EPS < b {
                continue;
            }
            let w = model.edge_weight(sdn, e.id);
            if w >= sigma {
                continue; // per-edge admission threshold, applied up front
            }
            let tiebreak = 1e-6 * e.weight / c_max;
            // appro_multi_on multiplies unit costs by b_k; divide it out
            // so the Steiner objective is exactly the congestion weight.
            bld.add_link(e.u, e.v, sdn.bandwidth_capacity(e.id), (w + tiebreak) / b)
                .expect("copied link is valid"); // lint:allow(P1): copies a link the parent network already validated
            edge_map.push(e.id);
        }
        let derived = bld.build().expect("derived network is well-formed"); // lint:allow(P1): the derived network reuses validated parameters only

        let mut tree = appro_multi_on(&derived, request, self.k, &usable)?;

        // Translate edge ids back and re-price costs in real units.
        for su in &mut tree.servers {
            for e in &mut su.ingress_edges {
                *e = edge_map[e.index()];
            }
        }
        for e in &mut tree.distribution_edges {
            *e = edge_map[e.index()];
        }
        for e in &mut tree.extra_traversals {
            *e = edge_map[e.index()];
        }
        let mut bandwidth_cost = 0.0;
        for e in tree.ingress_union() {
            bandwidth_cost += sdn.unit_bandwidth_cost(e) * b;
        }
        for &e in tree.distribution_edges.iter().chain(&tree.extra_traversals) {
            bandwidth_cost += sdn.unit_bandwidth_cost(e) * b;
        }
        tree.bandwidth_cost = bandwidth_cost;
        let mut computing_cost = 0.0;
        for su in &mut tree.servers {
            su.ingress_cost = su
                .ingress_edges
                .iter()
                .map(|&e| sdn.unit_bandwidth_cost(e) * b)
                .sum();
            su.computing_cost = sdn.unit_computing_cost(su.server).expect("server") * demand; // lint:allow(P1): su.server is drawn from servers()
            computing_cost += su.computing_cost;
        }
        tree.computing_cost = computing_cost;

        if sdn.can_allocate(&tree.allocation(request)) {
            Some(tree)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_online, OnlineCp};
    use netgraph::NodeId;
    use sdn::{NfvType, RequestId, ServiceChain};

    fn star_net() -> (Sdn, Vec<NodeId>) {
        // Source in the middle, two server-fronted destination arms.
        let mut b = SdnBuilder::new();
        let s = b.add_switch();
        let v1 = b.add_server(4_000.0, 0.05);
        let v2 = b.add_server(4_000.0, 0.05);
        let d1 = b.add_switch();
        let d2 = b.add_switch();
        b.add_link(s, v1, 1_000.0, 1.0).unwrap();
        b.add_link(s, v2, 1_000.0, 1.0).unwrap();
        b.add_link(v1, d1, 1_000.0, 5.0).unwrap();
        b.add_link(v2, d2, 1_000.0, 5.0).unwrap();
        (b.build().unwrap(), vec![s, v1, v2, d1, d2])
    }

    fn req(nodes: &[NodeId], id: u64) -> MulticastRequest {
        MulticastRequest::new(
            RequestId(id),
            nodes[0],
            vec![nodes[3], nodes[4]],
            100.0,
            ServiceChain::new(vec![NfvType::Firewall]),
        )
    }

    #[test]
    fn uses_multiple_instances_when_cheaper() {
        let (sdn, nodes) = star_net();
        let tree = OnlineCpMulti::new(2).admit(&sdn, &req(&nodes, 0)).unwrap();
        tree.validate(&sdn, &req(&nodes, 0)).unwrap();
        assert_eq!(tree.servers_used().len(), 2);
    }

    #[test]
    fn k1_matches_single_instance_structure() {
        let (sdn, nodes) = star_net();
        let tree = OnlineCpMulti::new(1).admit(&sdn, &req(&nodes, 0)).unwrap();
        assert_eq!(tree.servers_used().len(), 1);
    }

    #[test]
    fn respects_capacities_in_sequence() {
        let (mut sdn, nodes) = star_net();
        let requests: Vec<MulticastRequest> = (0..20).map(|i| req(&nodes, i)).collect();
        let r = run_online(&mut sdn, &mut OnlineCpMulti::new(2), &requests);
        assert!(r.admitted > 0);
        for e in sdn.graph().edges() {
            assert!(sdn.residual_bandwidth(e.id) >= -1e-6);
        }
    }

    #[test]
    fn never_admits_less_valid_trees_than_k1_baseline_on_star() {
        // Not a theorem — a smoke check that the extension is at least
        // competitive with Online_CP on a workload shaped for it.
        let (mut sdn, nodes) = star_net();
        let requests: Vec<MulticastRequest> = (0..20).map(|i| req(&nodes, i)).collect();
        let multi = run_online(&mut sdn, &mut OnlineCpMulti::new(2), &requests);
        sdn.reset();
        let single = run_online(&mut sdn, &mut OnlineCp::new(), &requests);
        assert!(multi.admitted + 2 >= single.admitted);
    }

    #[test]
    #[should_panic(expected = "at least one chain instance")]
    fn zero_k_panics() {
        let _ = OnlineCpMulti::new(0);
    }
}
