//! Rooted-tree utilities: parent/depth tables, tree paths, and lowest
//! common ancestors.
//!
//! Pseudo-multicast trees are derived from Steiner trees by routing
//! processed packets *back up* the tree from the processing server; both the
//! offline and online algorithms therefore need tree paths and LCAs of the
//! chosen server and the destinations.

#![allow(clippy::needless_range_loop)] // paired-index loops over parallel arrays

use crate::{EdgeId, Graph, NodeId, Path};
use std::collections::BTreeMap;

/// A tree embedded in a [`Graph`], rooted at a chosen node.
///
/// The tree is described by a set of graph edges; only nodes incident to
/// those edges (plus the root) are part of the tree. Construction verifies
/// the edge set actually forms a tree containing the root.
///
/// ```
/// use netgraph::{Graph, RootedTree};
/// # fn main() -> Result<(), netgraph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// let e1 = g.add_edge(a, b, 1.0)?;
/// let e2 = g.add_edge(b, c, 2.0)?;
/// let t = RootedTree::from_edges(&g, &[e1, e2], a).unwrap();
/// assert_eq!(t.depth(c), Some(2));
/// assert_eq!(t.lca().lca(a, c), a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    /// Local index of each tree node.
    index: BTreeMap<NodeId, usize>,
    /// Tree nodes by local index (root first is *not* guaranteed).
    nodes: Vec<NodeId>,
    /// Parent (node, edge) per local index; `None` for the root.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Hop depth per local index (root = 0).
    depth: Vec<usize>,
    /// Weighted distance from the root per local index.
    dist: Vec<f64>,
    /// Edge ids forming the tree.
    edges: Vec<EdgeId>,
    /// Total weight of the tree edges.
    total_weight: f64,
}

impl RootedTree {
    /// Builds a rooted tree from `edges` of `g`, rooted at `root`.
    ///
    /// Returns `None` if the edges do not form a single tree containing
    /// `root` (cycle, disconnected, or root not incident). A lone root with
    /// no edges is a valid single-node tree.
    #[must_use]
    pub fn from_edges(g: &Graph, edges: &[EdgeId], root: NodeId) -> Option<RootedTree> {
        // Collect incident nodes.
        let mut index: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        let intern = |n: NodeId, nodes: &mut Vec<NodeId>, index: &mut BTreeMap<NodeId, usize>| {
            *index.entry(n).or_insert_with(|| {
                nodes.push(n);
                nodes.len() - 1
            })
        };
        intern(root, &mut nodes, &mut index);
        let mut adj: Vec<Vec<(usize, EdgeId, f64)>> = vec![Vec::new()];
        for &e in edges {
            let er = g.try_edge(e)?;
            let ui = intern(er.u, &mut nodes, &mut index);
            let vi = intern(er.v, &mut nodes, &mut index);
            if adj.len() < nodes.len() {
                adj.resize(nodes.len(), Vec::new());
            }
            adj[ui].push((vi, e, er.weight));
            adj[vi].push((ui, e, er.weight));
        }
        let n = nodes.len();
        // A tree on n nodes has exactly n - 1 edges.
        if edges.len() != n - 1 {
            return None;
        }

        // BFS from the root; must reach every node without revisits.
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        let mut dist = vec![f64::INFINITY; n];
        let ri = index[&root];
        depth[ri] = 0;
        dist[ri] = 0.0;
        let mut queue = std::collections::VecDeque::from([ri]);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for &(v, e, w) in &adj[u] {
                if depth[v] == usize::MAX {
                    depth[v] = depth[u] + 1;
                    dist[v] = dist[u] + w;
                    parent[v] = Some((nodes[u], e));
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        if visited != n {
            return None; // disconnected (cycle elsewhere given the edge count)
        }

        let total_weight = edges.iter().map(|&e| g.edge(e).weight).sum();
        Some(RootedTree {
            root,
            index,
            nodes,
            parent,
            depth,
            dist,
            edges: edges.to_vec(),
            total_weight,
        })
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over tree nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The edge ids forming the tree.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Sum of tree edge weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Returns `true` if `n` is a node of the tree.
    #[must_use]
    pub fn contains(&self, n: NodeId) -> bool {
        self.index.contains_key(&n)
    }

    /// Hop depth of `n` (root = 0), or `None` if not in the tree.
    #[must_use]
    pub fn depth(&self, n: NodeId) -> Option<usize> {
        self.index.get(&n).map(|&i| self.depth[i])
    }

    /// Weighted distance from the root to `n`, or `None` if not in the tree.
    #[must_use]
    pub fn distance_from_root(&self, n: NodeId) -> Option<f64> {
        self.index.get(&n).map(|&i| self.dist[i])
    }

    /// Parent (node, edge) of `n`; `None` for the root or non-tree nodes.
    #[must_use]
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, EdgeId)> {
        self.index.get(&n).and_then(|&i| self.parent[i])
    }

    /// Returns `true` if `a` is an ancestor of `b` (or equal to it).
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the tree.
    #[must_use]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let da = self.depth(a).expect("node not in tree"); // lint:allow(P1): documented panic contract: nodes must be in the tree
        let mut cur = b;
        let mut dc = self.depth(b).expect("node not in tree"); // lint:allow(P1): documented panic contract: nodes must be in the tree
        while dc > da {
            cur = self.parent(cur).expect("non-root has a parent").0; // lint:allow(P1): dc > da >= 0, so cur is not the root
            dc -= 1;
        }
        cur == a
    }

    /// The unique tree path between `a` and `b` (through their LCA).
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the tree.
    #[must_use]
    pub fn path_between(&self, a: NodeId, b: NodeId) -> Path {
        let l = self.lca().lca(a, b);
        // Walk a -> l (forward) and b -> l (to reverse).
        let mut up_nodes = vec![a];
        let mut up_edges = Vec::new();
        let mut cur = a;
        while cur != l {
            let (p, e) = self.parent(cur).expect("non-root has a parent"); // lint:allow(P1): cur != lca, so cur is below the LCA and has a parent
            up_nodes.push(p);
            up_edges.push(e);
            cur = p;
        }
        let mut down_nodes = Vec::new();
        let mut down_edges = Vec::new();
        cur = b;
        while cur != l {
            let (p, e) = self.parent(cur).expect("non-root has a parent"); // lint:allow(P1): cur != lca, so cur is below the LCA and has a parent
            down_nodes.push(cur);
            down_edges.push(e);
            cur = p;
        }
        down_nodes.reverse();
        down_edges.reverse();
        up_nodes.extend(down_nodes);
        up_edges.extend(down_edges);
        let ia = self.index[&a];
        let ib = self.index[&b];
        let il = self.index[&l];
        let cost = (self.dist[ia] - self.dist[il]) + (self.dist[ib] - self.dist[il]);
        Path::new(up_nodes, up_edges, cost)
    }

    /// Nodes in the subtree rooted at `n` (including `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in the tree.
    #[must_use]
    pub fn subtree_nodes(&self, n: NodeId) -> Vec<NodeId> {
        assert!(self.contains(n), "node {n} not in tree");
        self.nodes
            .iter()
            .copied()
            .filter(|&m| self.is_ancestor(n, m))
            .collect()
    }

    /// Leaves of the tree (degree-1 nodes other than a lone root).
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut child_count = vec![0usize; self.nodes.len()];
        for (i, p) in self.parent.iter().enumerate() {
            let _ = i;
            if let Some((pn, _)) = p {
                child_count[self.index[pn]] += 1;
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(i, &n)| child_count[i] == 0 && n != self.root)
            .map(|(_, &n)| n)
            .collect()
    }

    /// Builds an LCA query structure (binary lifting, `O(n log n)` build,
    /// `O(log n)` per query).
    #[must_use]
    pub fn lca(&self) -> Lca<'_> {
        let n = self.nodes.len();
        let levels = usize::BITS as usize - n.leading_zeros() as usize; // ceil(log2(n))+..
        let levels = levels.max(1);
        let mut up = vec![vec![usize::MAX; n]; levels];
        for i in 0..n {
            up[0][i] = self.parent[i].map_or(usize::MAX, |(p, _)| self.index[&p]);
        }
        for l in 1..levels {
            for i in 0..n {
                let mid = up[l - 1][i];
                up[l][i] = if mid == usize::MAX {
                    usize::MAX
                } else {
                    up[l - 1][mid]
                };
            }
        }
        Lca { tree: self, up }
    }
}

/// Binary-lifting LCA oracle borrowed from a [`RootedTree`].
#[derive(Debug)]
pub struct Lca<'t> {
    tree: &'t RootedTree,
    up: Vec<Vec<usize>>,
}

impl Lca<'_> {
    /// Lowest common ancestor of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the tree.
    #[must_use]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let t = self.tree;
        let mut ia = *t.index.get(&a).expect("node not in tree"); // lint:allow(P1): documented panic contract: nodes must be in the tree
        let mut ib = *t.index.get(&b).expect("node not in tree"); // lint:allow(P1): documented panic contract: nodes must be in the tree
        if t.depth[ia] < t.depth[ib] {
            std::mem::swap(&mut ia, &mut ib);
        }
        // Lift ia to ib's depth.
        let mut diff = t.depth[ia] - t.depth[ib];
        let mut level = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                ia = self.up[level][ia];
            }
            diff >>= 1;
            level += 1;
        }
        if ia == ib {
            return t.nodes[ia];
        }
        for l in (0..self.up.len()).rev() {
            if self.up[l][ia] != self.up[l][ib]
                && self.up[l][ia] != usize::MAX
                && self.up[l][ib] != usize::MAX
            {
                ia = self.up[l][ia];
                ib = self.up[l][ib];
            }
        }
        let pa = self.up[0][ia];
        debug_assert_ne!(pa, usize::MAX);
        t.nodes[pa]
    }

    /// LCA of a non-empty set of nodes, folded pairwise:
    /// `LCA(x1, …, xn) = LCA(LCA(x1, …, x_{n-1}), xn)` (as in Algorithm 2 of
    /// the paper).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains a non-tree node.
    #[must_use]
    pub fn lca_of_set(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "lca of empty set is undefined");
        nodes[1..].iter().fold(nodes[0], |acc, &n| self.lca(acc, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Builds the tree
    /// ```text
    ///        r
    ///       / \
    ///      a   b
    ///     / \    \
    ///    c   d    e
    /// ```
    fn sample() -> (Graph, RootedTree, [NodeId; 6]) {
        let mut g = Graph::new();
        let r = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        let e = g.add_node();
        let edges = vec![
            g.add_edge(r, a, 1.0).unwrap(),
            g.add_edge(r, b, 2.0).unwrap(),
            g.add_edge(a, c, 3.0).unwrap(),
            g.add_edge(a, d, 4.0).unwrap(),
            g.add_edge(b, e, 5.0).unwrap(),
        ];
        let t = RootedTree::from_edges(&g, &edges, r).unwrap();
        (g, t, [r, a, b, c, d, e])
    }

    #[test]
    fn depths_and_distances() {
        let (_, t, [r, a, _, c, _, e]) = sample();
        assert_eq!(t.depth(r), Some(0));
        assert_eq!(t.depth(a), Some(1));
        assert_eq!(t.depth(c), Some(2));
        assert_eq!(t.distance_from_root(c), Some(4.0));
        assert_eq!(t.distance_from_root(e), Some(7.0));
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.total_weight(), 15.0);
    }

    #[test]
    fn lca_pairs() {
        let (_, t, [r, a, b, c, d, e]) = sample();
        let lca = t.lca();
        assert_eq!(lca.lca(c, d), a);
        assert_eq!(lca.lca(c, e), r);
        assert_eq!(lca.lca(a, c), a);
        assert_eq!(lca.lca(r, e), r);
        assert_eq!(lca.lca(b, b), b);
        assert_eq!(lca.lca(d, b), r);
    }

    #[test]
    fn lca_of_set_folds() {
        let (_, t, [r, a, _, c, d, e]) = sample();
        let lca = t.lca();
        assert_eq!(lca.lca_of_set(&[c, d]), a);
        assert_eq!(lca.lca_of_set(&[c, d, e]), r);
        assert_eq!(lca.lca_of_set(&[c]), c);
    }

    #[test]
    #[should_panic(expected = "lca of empty set")]
    fn lca_of_empty_set_panics() {
        let (_, t, _) = sample();
        let _ = t.lca().lca_of_set(&[]);
    }

    #[test]
    fn path_between_goes_through_lca() {
        let (_, t, [_, a, _, c, d, _]) = sample();
        let p = t.path_between(c, d);
        assert_eq!(p.nodes(), &[c, a, d]);
        assert_eq!(p.cost(), 7.0);
        let trivial = t.path_between(c, c);
        assert!(trivial.is_empty());
        assert_eq!(trivial.cost(), 0.0);
    }

    #[test]
    fn ancestor_checks() {
        let (_, t, [r, a, b, c, _, e]) = sample();
        assert!(t.is_ancestor(r, c));
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(c, c));
        assert!(!t.is_ancestor(c, a));
        assert!(!t.is_ancestor(b, c));
        assert!(t.is_ancestor(b, e));
    }

    #[test]
    fn subtrees_and_leaves() {
        let (_, t, [r, a, b, c, d, e]) = sample();
        let mut sub = t.subtree_nodes(a);
        sub.sort_unstable();
        let mut expect = vec![a, c, d];
        expect.sort_unstable();
        assert_eq!(sub, expect);
        let mut leaves = t.leaves();
        leaves.sort_unstable();
        let mut expect = vec![c, d, e];
        expect.sort_unstable();
        assert_eq!(leaves, expect);
        assert_eq!(t.subtree_nodes(r).len(), 6);
        assert_eq!(t.subtree_nodes(b), {
            let mut v = vec![b, e];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn rejects_cycles_and_disconnection() {
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        let e01 = g.add_edge(v[0], v[1], 1.0).unwrap();
        let e12 = g.add_edge(v[1], v[2], 1.0).unwrap();
        let e20 = g.add_edge(v[2], v[0], 1.0).unwrap();
        let e23 = g.add_edge(v[2], v[3], 1.0).unwrap();
        // Cycle: 3 nodes, 3 edges.
        assert!(RootedTree::from_edges(&g, &[e01, e12, e20], v[0]).is_none());
        // Root not incident to the edges.
        assert!(RootedTree::from_edges(&g, &[e12, e23], v[0]).is_none());
    }

    #[test]
    fn single_node_tree() {
        let mut g = Graph::new();
        let r = g.add_node();
        let t = RootedTree::from_edges(&g, &[], r).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(r), Some(0));
        assert!(t.leaves().is_empty());
        assert_eq!(t.lca().lca(r, r), r);
    }

    #[test]
    fn deep_chain_lca() {
        // Chain of 40 nodes exercises multi-level lifting.
        let mut g = Graph::new();
        let v: Vec<NodeId> = (0..40).map(|_| g.add_node()).collect();
        let edges: Vec<EdgeId> = (0..39)
            .map(|i| g.add_edge(v[i], v[i + 1], 1.0).unwrap())
            .collect();
        let t = RootedTree::from_edges(&g, &edges, v[0]).unwrap();
        let lca = t.lca();
        assert_eq!(lca.lca(v[39], v[20]), v[20]);
        assert_eq!(lca.lca(v[39], v[0]), v[0]);
        assert_eq!(t.depth(v[39]), Some(39));
        let p = t.path_between(v[5], v[35]);
        assert_eq!(p.cost(), 30.0);
    }
}
